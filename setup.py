"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine cannot build PEP 660 editable wheels
(no ``wheel`` distribution available offline), so the legacy
``setup.py develop`` path is kept alive via this file.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
