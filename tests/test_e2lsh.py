"""Tests for repro.baselines.e2lsh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.e2lsh import E2LSH
from repro.storage.pagefile import VectorStore


@pytest.fixture(scope="module")
def setup():
    gen = np.random.default_rng(0)
    centers = gen.standard_normal((12, 10)) * 6
    points = centers[gen.integers(12, size=1000)] + 0.4 * gen.standard_normal((1000, 10))
    index = E2LSH(points, np.random.default_rng(1), n_tables=10, n_bits=6)
    return points, index


class TestBuild:
    def test_tables_cover_every_point(self, setup):
        points, index = setup
        for table in index._tables:
            total = sum(bucket.size for bucket in table.values())
            assert total == len(points)

    def test_index_size_counts_all_tables(self, setup):
        points, index = setup
        assert index.index_size_bytes() >= index.n_tables * len(points) * 8

    def test_adaptive_bucket_width_positive(self, setup):
        assert setup[1].bucket_width > 0

    def test_rejects_bad_args(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            E2LSH(np.empty((0, 3)), gen)
        with pytest.raises(ValueError):
            E2LSH(np.ones((5, 3)), gen, n_tables=0)
        with pytest.raises(ValueError):
            E2LSH(np.ones((5, 3)), gen, bucket_width=-1.0)


class TestQuery:
    def test_self_query_collides_with_self(self, setup):
        points, index = setup
        for pid in (0, 5, 42):
            cands = index.candidates(points[pid])
            assert pid in cands.tolist()

    def test_knn_finds_near_neighbours(self, setup):
        points, index = setup
        gen = np.random.default_rng(2)
        recalls = []
        for qi in gen.choice(len(points), 10, replace=False):
            brute = np.linalg.norm(points - points[qi], axis=1)
            exact = set(np.argsort(brute)[:5].tolist())
            ids, _, _ = index.knn(points[qi], k=5)
            recalls.append(len(exact & set(ids.tolist())) / 5)
        assert float(np.mean(recalls)) >= 0.6

    def test_knn_distances_exact_and_sorted(self, setup):
        points, index = setup
        ids, dists, verified = index.knn(points[7], k=5)
        assert np.all(np.diff(dists) >= 0)
        for pid, dist in zip(ids, dists):
            assert dist == pytest.approx(np.linalg.norm(points[pid] - points[7]))
        assert verified >= len(ids)

    def test_page_accounting(self, setup):
        points, index = setup
        store = VectorStore(points, page_size=512)
        reader = store.reader()
        index_pages = [0]
        index.knn(points[0], k=5, reader=reader, index_pages=index_pages)
        assert index_pages[0] >= index.n_tables  # one probe per table
        assert reader.pages_touched > 0

    def test_rejects_bad_query(self, setup):
        _, index = setup
        with pytest.raises(ValueError):
            index.candidates(np.ones(3))
        with pytest.raises(ValueError):
            index.knn(np.ones(10), k=0)
