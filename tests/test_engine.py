"""Tests for repro.core.engine — the shared batch kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    GEMM_PANEL,
    TopK,
    batch_inner_products,
    batch_topk,
    project_batch,
    topk_ids_scores,
)


@pytest.fixture(scope="module")
def blocks():
    gen = np.random.default_rng(42)
    data = gen.standard_normal((500, 19))
    queries = gen.standard_normal((64, 19))
    return data, queries


class TestBatchInnerProducts:
    def test_values_match_reference(self, blocks):
        data, queries = blocks
        out = batch_inner_products(data, queries)
        assert out.shape == (500, 64)
        assert np.allclose(out, data @ queries.T)

    def test_columns_invariant_to_batch_width(self, blocks):
        """The bit-identity keystone: a query's scores must not depend on how
        many other queries shared its GEMM, nor where in a panel it sat."""
        data, queries = blocks
        full = batch_inner_products(data, queries)
        for width in (1, 2, 3, GEMM_PANEL, GEMM_PANEL + 1, 17):
            sub = batch_inner_products(data, queries[:width])
            assert np.array_equal(sub, full[:, :width]), f"width {width} diverged"

    def test_columns_invariant_at_hostile_shapes(self):
        """Shapes where raw variable-width GEMMs demonstrably diverge on
        OpenBLAS (e.g. 512×64 data) must stay invariant under the fixed-panel
        scheme."""
        gen = np.random.default_rng(5)
        for n, d in [(512, 64), (32, 49), (5, 64)]:
            data = gen.standard_normal((n, d))
            queries = gen.standard_normal((300, d))
            full = batch_inner_products(data, queries)
            for i in (0, 1, GEMM_PANEL - 1, GEMM_PANEL, 137, 299):
                one = batch_inner_products(data, queries[i])
                assert np.array_equal(one[:, 0], full[:, i]), (n, d, i)

    def test_single_query_padding(self, blocks):
        data, queries = blocks
        one = batch_inner_products(data, queries[0])
        assert one.shape == (500, 1)
        assert np.array_equal(one[:, 0], batch_inner_products(data, queries)[:, 0])

    def test_panel_constant(self):
        assert GEMM_PANEL >= 2


class TestProjectBatch:
    def test_rows_invariant_to_batch_size(self, blocks):
        _, queries = blocks
        matrix = np.random.default_rng(7).standard_normal((5, 19))
        full = project_batch(matrix, queries)
        assert full.shape == (64, 5)
        one = project_batch(matrix, queries[:1])
        assert np.array_equal(one[0], full[0])
        assert np.allclose(full, queries @ matrix.T)


class TestTopk:
    def test_matches_sort_reference(self):
        gen = np.random.default_rng(0)
        ips = gen.standard_normal(200)
        ids, scores = topk_ids_scores(ips, 10)
        ref = np.argsort(-ips, kind="stable")[:10]
        assert np.array_equal(ids, ref)
        assert np.array_equal(scores, ips[ref])

    def test_ties_break_by_ascending_id(self):
        ips = np.array([1.0, 2.0, 2.0, 1.0, 2.0])
        ids, _ = topk_ids_scores(ips, 3)
        assert ids.tolist() == [1, 2, 4]

    def test_k_capped_at_n(self):
        ids, scores = topk_ids_scores(np.array([3.0, 1.0]), 10)
        assert ids.tolist() == [0, 1]

    def test_batch_rows_match_single(self):
        gen = np.random.default_rng(3)
        scores = gen.standard_normal((7, 150))
        ids, out = batch_topk(scores, 9)
        assert ids.shape == (7, 9)
        for i in range(7):
            ref_ids, ref_scores = topk_ids_scores(scores[i], 9)
            assert np.array_equal(ids[i], ref_ids)
            assert np.array_equal(out[i], ref_scores)


class TestTopKHeap:
    def test_tracks_kth_and_dedupes(self):
        topk = TopK(2)
        assert topk.kth_ip == -np.inf
        topk.offer(1.0, 0)
        topk.offer(3.0, 1)
        topk.offer(3.0, 1)  # duplicate id ignored
        assert topk.full
        assert topk.kth_ip == 1.0
        topk.offer(2.0, 2)
        ids, ips = topk.result()
        assert ids.tolist() == [1, 2]
        assert ips.tolist() == [3.0, 2.0]
