"""Tests for repro.core.maintenance — background generational rebuilds.

The contract under test: the engine rebuilds generations *off* the shared
lock (only snapshot and swap hold it), replays mutations that land during a
build, staggers composite targets so at most one rebuilds at a time, and a
swap is invisible to correctness — deleted ids never resurface, inserted
ids stay findable, and results equal a synchronous compaction over the same
live set.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.baselines.exact import ExactMIPS
from repro.core.dynamic import DynamicProMIPS
from repro.core.maintenance import MaintenanceEngine, maintenance_targets
from repro.core.promips import ProMIPSParams
from repro.core.sharded import ShardedIndex

PARAMS = ProMIPSParams(m=5, kp=3, n_key=12, ksp=4)
SMALL = ProMIPSParams(m=4, kp=2, n_key=6, ksp=3)


@pytest.fixture()
def dyn(latent_small):
    data, queries = latent_small
    return data, queries, DynamicProMIPS(data[:400], PARAMS, rng=1)


class TestTargetDiscovery:
    def test_dynamic_is_its_own_target(self, dyn):
        _, _, index = dyn
        targets = maintenance_targets(index)
        assert [label for label, _ in targets] == ["index"]
        assert targets[0][1] is index

    def test_sharded_dynamic_exposes_one_target_per_shard(self, latent_small):
        data, _ = latent_small
        sharded = ShardedIndex.build(
            data[:300], inner="dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3)",
            shards=3, rng=1,
        )
        targets = maintenance_targets(sharded)
        assert [label for label, _ in targets] == ["shard0", "shard1", "shard2"]
        assert all(t is s for (_, t), s in zip(targets, sharded.shards))

    def test_immutable_methods_have_no_targets(self, latent_small):
        data, _ = latent_small
        assert maintenance_targets(ExactMIPS(data[:50])) == []
        sharded = ShardedIndex.build(data[:60], inner="exact()", shards=2)
        assert maintenance_targets(sharded) == []

    def test_engine_rejects_unmaintainable_index(self, latent_small):
        data, _ = latent_small
        with pytest.raises(ValueError, match="no maintainable components"):
            MaintenanceEngine(ExactMIPS(data[:50]))

    def test_poll_interval_clamped_above_busy_spin(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:50], SMALL, rng=1)
        engine = MaintenanceEngine(index, poll_interval_ms=0)
        assert engine.poll_interval == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            MaintenanceEngine(index, poll_interval_ms=-1.0)


class TestEngineLifecycle:
    def test_attach_defers_and_close_restores(self, dyn):
        _, _, index = dyn
        assert index.defer_maintenance is False
        engine = MaintenanceEngine(index)
        assert index.defer_maintenance is True
        engine.close()
        assert index.defer_maintenance is False

    def test_close_is_idempotent(self, dyn):
        _, _, index = dyn
        engine = MaintenanceEngine(index).start()
        engine.close()
        engine.close()
        assert engine.stats()["running"] is False

    def test_restart_after_close_retakes_deferral(self, dyn):
        _, _, index = dyn
        engine = MaintenanceEngine(index).start()
        engine.close()
        assert index.defer_maintenance is False
        engine.start()
        # Restarting must hand scheduling back to the engine, or the
        # synchronous path would race the background thread.
        assert index.defer_maintenance is True
        engine.close()

    def test_context_manager(self, dyn):
        _, _, index = dyn
        with MaintenanceEngine(index) as engine:
            assert index.defer_maintenance is True
            assert engine.run_once() is None
        assert index.defer_maintenance is False


class TestRunOnce:
    def test_noop_when_nothing_due(self, dyn):
        _, _, index = dyn
        engine = MaintenanceEngine(index)
        assert engine.run_once() is None
        assert engine.stats()["rebuilds"] == 0

    def test_rebuild_reports_and_counts(self, dyn):
        data, _, index = dyn
        engine = MaintenanceEngine(index)
        for row in data[400:490]:  # > 0.2 * 400
            index.insert(row)
        for i in range(5):
            index.delete(i)
        report = engine.run_once()
        assert report is not None
        assert report["target"] == "index" and report["reason"] == "delta"
        assert report["live_points"] == 485
        assert index.delta_size == 0 and index.tombstone_count == 0
        stats = engine.stats()
        assert stats["rebuilds"] == 1
        assert stats["reclaimed_bytes"] >= 5 * index.dim * 8
        assert stats["last_reason"] == "index:delta"
        assert stats["in_flight"] is None
        assert engine.run_once() is None  # pressure relieved

    def test_tombstone_pressure_reported_as_reason(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:100], PARAMS, rng=1)
        engine = MaintenanceEngine(index)
        for i in range(30):
            index.delete(i)
        report = engine.run_once()
        assert report["reason"] == "tombstones"
        assert index.tombstone_count == 0

    def test_staggered_one_shard_per_run(self, latent_small):
        data, _ = latent_small
        sharded = ShardedIndex.build(
            data[:300],
            inner="dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3, "
                  "rebuild_threshold=0.1)",
            shards=3, rng=1,
        )
        engine = MaintenanceEngine(sharded)
        gen = np.random.default_rng(0)
        for vec in gen.standard_normal((60, data.shape[1])):
            sharded.insert(vec)  # least-loaded routing spreads the pressure
        due_before = [s.maintenance_due() for s in sharded.shards]
        assert all(due_before)
        labels = []
        for _ in range(3):
            report = engine.run_once()
            assert report is not None
            labels.append(report["target"])
        # One shard per run, every shard exactly once: staggered rebuilds.
        assert sorted(labels) == ["shard0", "shard1", "shard2"]
        assert all(s.maintenance_due() is None for s in sharded.shards)
        assert engine.run_once() is None
        assert engine.stats()["rebuilds"] == 3

    def test_failing_target_does_not_starve_the_others(
        self, latent_small, monkeypatch
    ):
        data, _ = latent_small
        sharded = ShardedIndex.build(
            data[:300],
            inner="dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3, "
                  "rebuild_threshold=0.1)",
            shards=3, rng=1,
        )
        engine = MaintenanceEngine(sharded)
        gen = np.random.default_rng(0)
        for vec in gen.standard_normal((60, data.shape[1])):
            sharded.insert(vec)

        def boom():
            raise MemoryError("synthetic snapshot failure")

        monkeypatch.setattr(sharded.shards[0], "_sorted_id_rows", boom)
        with pytest.raises(MemoryError):
            engine.run_once()
        # The cursor moved past the failing shard: the healthy ones rebuild.
        assert engine.run_once()["target"] == "shard1"
        assert engine.run_once()["target"] == "shard2"
        assert sharded.shards[1].maintenance_due() is None

    def test_on_swap_callback_fires_per_commit(self, dyn):
        data, _, index = dyn
        swaps = []
        engine = MaintenanceEngine(index, on_swap=lambda: swaps.append(1))
        for row in data[400:490]:
            index.insert(row)
        engine.run_once()
        assert swaps == [1]

    def test_failed_snapshot_counts_error_and_does_not_wedge(
        self, dyn, monkeypatch
    ):
        data, _, index = dyn
        engine = MaintenanceEngine(index)
        for row in data[400:490]:
            index.insert(row)

        def boom():
            raise MemoryError("synthetic snapshot failure")

        monkeypatch.setattr(index, "_sorted_id_rows", boom)
        with pytest.raises(MemoryError):
            engine.run_once()
        stats = engine.stats()
        assert stats["errors"] == 1 and "snapshot failure" in stats["last_error"]
        # The in-progress guard must have been released: maintenance
        # proceeds once the failure clears.
        monkeypatch.undo()
        assert engine.run_once() is not None
        assert index.delta_size == 0

    def test_failed_build_aborts_cleanly(self, dyn, monkeypatch):
        data, _, index = dyn
        engine = MaintenanceEngine(index)
        for row in data[400:490]:
            index.insert(row)

        def boom(ticket):
            raise RuntimeError("synthetic build failure")

        monkeypatch.setattr(index, "build_generation", boom)
        with pytest.raises(RuntimeError, match="synthetic"):
            engine.run_once()
        stats = engine.stats()
        assert stats["errors"] == 1 and stats["rebuilds"] == 0
        assert stats["in_flight"] is None
        assert "synthetic" in stats["last_error"]
        # The failed generation left the current one serving and unlocked.
        monkeypatch.undo()
        assert engine.run_once() is not None
        assert index.delta_size == 0


class TestBackgroundThread:
    def test_background_rebuild_with_concurrent_traffic(self, latent_small):
        """Queries and mutations race a live engine; after quiescing, the
        swapped-in generation is compacted and deleted ids stay gone."""
        data, queries = latent_small
        index = DynamicProMIPS(
            data[:300], SMALL, rng=1,
            rebuild_threshold=0.1, compact_threshold=0.1,
        )
        lock = threading.Lock()
        doomed = list(range(40))  # deleted before any search below runs
        with lock:
            for i in doomed:
                index.delete(i)
        engine = MaintenanceEngine(index, lock, poll_interval_ms=1.0).start()
        try:
            stop = threading.Event()
            errors: list[BaseException] = []

            def client():
                qi = 0
                while not stop.is_set():
                    try:
                        with lock:
                            result = index.search(queries[qi % len(queries)], k=10)
                        assert not set(result.ids.tolist()) & set(doomed)
                        qi += 1
                    except BaseException as exc:  # surfaced after join
                        errors.append(exc)
                        return

            def mutator():
                gen = np.random.default_rng(7)
                try:
                    for vec in gen.standard_normal((120, data.shape[1])):
                        with lock:
                            index.insert(vec)
                        time.sleep(0.0005)
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(3)]
            threads.append(threading.Thread(target=mutator))
            for t in threads:
                t.start()
            threads[-1].join()
            stop.set()
            for t in threads[:-1]:
                t.join()
            assert not errors
            assert engine.quiesce(timeout=30.0)
            stats = engine.stats()
            assert stats["rebuilds"] >= 1
            assert index.maintenance_due() is None
            result = index.search(queries[0], k=20)
            assert not set(result.ids.tolist()) & set(doomed)
        finally:
            engine.close()

    def test_quiesce_without_thread_runs_inline(self, dyn):
        data, _, index = dyn
        engine = MaintenanceEngine(index)
        for row in data[400:490]:
            index.insert(row)
        assert engine.quiesce()
        assert engine.stats()["rebuilds"] == 1
