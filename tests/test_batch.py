"""Tests for repro.core.batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactMIPS
from repro.core.batch import BatchStats, search_batch
from repro.core.promips import ProMIPS, ProMIPSParams


@pytest.fixture(scope="module")
def setup(latent_small):
    data, queries = latent_small
    index = ProMIPS.build(data, ProMIPSParams(m=5, kp=3, n_key=10, ksp=4), rng=1)
    return data, queries, index


class TestSearchBatch:
    def test_matches_individual_searches(self, setup):
        data, queries, index = setup
        results, _ = search_batch(index, queries[:5], k=8)
        for q, result in zip(queries[:5], results):
            single = index.search(q, k=8)
            assert np.array_equal(result.ids, single.ids)

    def test_stats_aggregation(self, setup):
        _, queries, index = setup
        results, stats = search_batch(index, queries, k=5)
        assert isinstance(stats, BatchStats)
        assert stats.n_queries == len(queries)
        pages = [r.stats.pages for r in results]
        assert stats.mean_pages == pytest.approx(np.mean(pages))
        assert stats.p95_pages >= stats.mean_pages * 0.5
        assert stats.total_candidates == sum(r.stats.candidates for r in results)

    def test_kwargs_forwarded(self, setup):
        _, queries, index = setup
        _, low = search_batch(index, queries[:4], k=5, p=0.3)
        _, high = search_batch(index, queries[:4], k=5, p=0.9)
        assert high.total_candidates >= low.total_candidates

    def test_single_query_promoted_to_batch(self, setup):
        _, queries, index = setup
        results, stats = search_batch(index, queries[0], k=3)
        assert len(results) == 1
        assert stats.n_queries == 1

    def test_works_with_any_index(self, setup):
        data, queries, _ = setup
        exact = ExactMIPS(data)
        results, stats = search_batch(exact, queries[:3], k=4)
        assert len(results) == 3

    def test_empty_batch_returns_empty_result(self, setup):
        _, _, index = setup
        results, stats = search_batch(index, np.empty((0, 24)), k=3)
        assert results == []
        assert stats.n_queries == 0
        assert stats.mean_pages == 0.0
        assert stats.total_candidates == 0
