"""Tests for repro.index.idistance — the standard Fig. 1 pattern."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.idistance import IDistanceIndex
from repro.storage.pagefile import AccessCounter, VectorStore


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(1).standard_normal((800, 6))


@pytest.fixture(scope="module")
def index(points):
    return IDistanceIndex(points, n_partitions=5, rng=np.random.default_rng(2))


class TestBuild:
    def test_layout_is_permutation(self, index, points):
        assert sorted(index.layout_order.tolist()) == list(range(len(points)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IDistanceIndex(np.empty((0, 3)), 2, np.random.default_rng(0))

    def test_index_size_positive(self, index):
        assert index.index_size_bytes(4096) > 0


class TestRangeSearch:
    @pytest.mark.parametrize("radius", [0.5, 1.0, 2.0, 4.0])
    def test_matches_brute_force(self, index, points, radius):
        query = np.random.default_rng(radius_seed := int(radius * 10)).standard_normal(6)
        ids, dists = index.range_search(query, radius)
        brute = np.linalg.norm(points - query, axis=1)
        expected = set(np.flatnonzero(brute <= radius).tolist())
        assert set(ids.tolist()) == expected
        assert np.allclose(np.sort(dists), np.sort(brute[sorted(expected)]))

    def test_zero_radius(self, index, points):
        ids, _ = index.range_search(points[10], 0.0)
        assert 10 in ids.tolist()

    def test_rejects_negative_radius(self, index):
        with pytest.raises(ValueError):
            index.range_search(np.zeros(6), -1.0)

    def test_counts_pages(self, index, points):
        counter = AccessCounter()
        store = VectorStore(points, page_size=256, layout_order=index.layout_order)
        reader = store.reader()
        index.range_search(np.zeros(6), 2.0, tree_counter=counter, reader=reader)
        assert counter.pages > 0
        assert reader.pages_touched > 0


class TestKnn:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_brute_force(self, index, points, k):
        query = np.random.default_rng(99).standard_normal(6)
        ids, dists = index.knn(query, k)
        brute = np.linalg.norm(points - query, axis=1)
        expected = np.sort(brute)[:k]
        assert np.allclose(np.sort(dists), expected, atol=1e-9)

    def test_k_capped_at_n(self, points):
        small = IDistanceIndex(points[:10], 2, np.random.default_rng(5))
        ids, _ = small.knn(np.zeros(6), 50)
        assert len(ids) == 10

    def test_rejects_bad_k(self, index):
        with pytest.raises(ValueError):
            index.knn(np.zeros(6), 0)
