"""Tests for repro.core.projection — 2-stable random projections (Lemma 1/2)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import chi2 as scipy_chi2

from repro.core.projection import StableProjection


class TestBasics:
    def test_shapes(self):
        proj = StableProjection(10, 4, np.random.default_rng(0))
        assert proj.project(np.ones(10)).shape == (4,)
        assert proj.project(np.ones((7, 10))).shape == (7, 4)
        assert proj.matrix.shape == (4, 10)

    def test_linearity(self):
        gen = np.random.default_rng(1)
        proj = StableProjection(8, 3, gen)
        x, y = gen.standard_normal(8), gen.standard_normal(8)
        lhs = proj.project(2.0 * x - 3.0 * y)
        rhs = 2.0 * proj.project(x) - 3.0 * proj.project(y)
        assert np.allclose(lhs, rhs)

    def test_determinism_with_seed(self):
        a = StableProjection(6, 3, np.random.default_rng(42))
        b = StableProjection(6, 3, np.random.default_rng(42))
        assert np.array_equal(a.matrix, b.matrix)

    def test_rejects_bad_dims(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            StableProjection(0, 3, gen)
        with pytest.raises(ValueError):
            StableProjection(5, 0, gen)

    def test_rejects_wrong_width(self):
        proj = StableProjection(5, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            proj.project(np.ones(6))

    def test_size_bytes(self):
        proj = StableProjection(10, 4, np.random.default_rng(0))
        assert proj.size_bytes() == 4 * 10 * 8


class TestLemma2:
    """``dis²(P(o), P(q)) / dis²(o, q)`` must follow χ²(m)."""

    def test_ratio_moments(self):
        gen = np.random.default_rng(7)
        m, d, trials = 6, 40, 4000
        o = gen.standard_normal(d)
        q = gen.standard_normal(d)
        dist_sq = float(((o - q) ** 2).sum())
        ratios = np.empty(trials)
        for t in range(trials):
            proj = StableProjection(d, m, gen)
            diff = proj.project(o) - proj.project(q)
            ratios[t] = float(diff @ diff) / dist_sq
        # χ²(m) has mean m and variance 2m.
        assert ratios.mean() == pytest.approx(m, rel=0.1)
        assert ratios.var() == pytest.approx(2 * m, rel=0.2)

    def test_ratio_distribution_ks(self):
        from scipy.stats import kstest

        gen = np.random.default_rng(8)
        m, d, trials = 5, 30, 1500
        o = gen.standard_normal(d)
        q = gen.standard_normal(d)
        dist_sq = float(((o - q) ** 2).sum())
        ratios = np.empty(trials)
        for t in range(trials):
            proj = StableProjection(d, m, gen)
            diff = proj.project(o) - proj.project(q)
            ratios[t] = float(diff @ diff) / dist_sq
        stat = kstest(ratios, lambda x: scipy_chi2.cdf(x, m)).pvalue
        assert stat > 1e-4  # loose: reject only gross distribution mismatch

    def test_single_projection_preserves_expected_ip(self):
        # E[f(o)·f(q)] over random v is ⟨o, q⟩ (2-stability consequence
        # used implicitly throughout §IV).
        gen = np.random.default_rng(9)
        d, trials = 20, 30000
        o = gen.standard_normal(d)
        q = gen.standard_normal(d)
        vs = gen.standard_normal((trials, d))
        products = (vs @ o) * (vs @ q)
        assert products.mean() == pytest.approx(float(o @ q), abs=0.15 * np.linalg.norm(o) * np.linalg.norm(q))
