"""Tests for repro.serve.cache — hit/miss accounting, LRU order, generations.

The generation tests exercise the full serving contract: after an
``insert``/``delete`` on a dynamic or sharded-dynamic index, a previously
cached answer must never be served again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.cache import ResultCache
from repro.serve.server import ServingRuntime
from repro.spec import build_index

DYNAMIC_SPEC = "dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3)"
SHARDED_DYNAMIC_SPEC = (
    "sharded(inner='dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3)', shards=3)"
)


def _entry(i: int):
    return (
        ResultCache.make_key(np.full(4, float(i)), 3),
        np.arange(3) + i,
        np.linspace(1.0, 0.5, 3),
    )


class TestKeying:
    def test_key_is_exact_bytes(self):
        a = ResultCache.make_key(np.array([1.0, 2.0]), 5)
        b = ResultCache.make_key(np.array([1.0, 2.0]), 5)
        assert a == b

    def test_distinct_k_distinct_key(self):
        q = np.array([1.0, 2.0])
        assert ResultCache.make_key(q, 5) != ResultCache.make_key(q, 6)

    def test_kwargs_partition_keys(self):
        q = np.array([1.0, 2.0])
        assert ResultCache.make_key(q, 5, {"c": 0.8}) != ResultCache.make_key(q, 5)
        assert ResultCache.make_key(q, 5, {"c": 0.8}) == ResultCache.make_key(
            q, 5, {"c": 0.8}
        )

    def test_nearby_floats_do_not_collide(self):
        q1 = np.array([1.0])
        q2 = np.array([1.0 + 1e-16])  # distinct float64 bit patterns
        if q1.tobytes() != q2.tobytes():
            assert ResultCache.make_key(q1, 1) != ResultCache.make_key(q2, 1)


class TestHitMissAccounting:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        key, ids, scores = _entry(0)
        assert cache.get(key) is None
        cache.put(key, ids, scores)
        got = cache.get(key)
        assert got is not None
        np.testing.assert_array_equal(got[0], ids)
        np.testing.assert_array_equal(got[1], scores)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_cached_arrays_are_copies(self):
        cache = ResultCache(capacity=4)
        key, ids, scores = _entry(0)
        cache.put(key, ids, scores)
        ids[:] = -99  # caller mutates its arrays after the put
        got = cache.get(key)
        assert got is not None and got[0][0] == 0

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        key, ids, scores = _entry(0)
        cache.put(key, ids, scores)
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)


class TestLRUOrder:
    def test_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        k0, i0, s0 = _entry(0)
        k1, i1, s1 = _entry(1)
        k2, i2, s2 = _entry(2)
        cache.put(k0, i0, s0)
        cache.put(k1, i1, s1)
        cache.get(k0)  # refresh 0 → 1 is now least recent
        cache.put(k2, i2, s2)
        assert cache.get(k0) is not None
        assert cache.get(k1) is None  # evicted
        assert cache.get(k2) is not None
        assert cache.stats()["evictions"] == 1

    def test_eviction_order_without_touches_is_insertion_order(self):
        cache = ResultCache(capacity=3)
        keys = []
        for i in range(5):
            key, ids, scores = _entry(i)
            keys.append(key)
            cache.put(key, ids, scores)
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        for key in keys[2:]:
            assert cache.get(key) is not None

    def test_re_put_refreshes_position(self):
        cache = ResultCache(capacity=2)
        k0, i0, s0 = _entry(0)
        k1, i1, s1 = _entry(1)
        k2, i2, s2 = _entry(2)
        cache.put(k0, i0, s0)
        cache.put(k1, i1, s1)
        cache.put(k0, i0, s0)  # re-put: 0 becomes most recent
        cache.put(k2, i2, s2)
        assert cache.get(k1) is None
        assert cache.get(k0) is not None


class TestGenerationInvalidation:
    def test_bump_invalidates_without_scanning(self):
        cache = ResultCache(capacity=8)
        key, ids, scores = _entry(0)
        cache.put(key, ids, scores)
        assert cache.generation == 0
        assert cache.bump_generation() == 1
        assert cache.get(key) is None  # stale entry never served
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["entries"] == 0  # dropped lazily on touch

    def test_entries_written_after_bump_are_live(self):
        cache = ResultCache(capacity=8)
        cache.bump_generation()
        key, ids, scores = _entry(0)
        cache.put(key, ids, scores)
        assert cache.get(key) is not None

    def test_put_with_observed_generation_drops_if_advanced(self):
        # The compute-then-store race: the answer was computed under an
        # older generation, so storing it would serve a stale result as
        # fresh forever.  put() must refuse the write.
        cache = ResultCache(capacity=8)
        key, ids, scores = _entry(0)
        observed = cache.generation
        cache.bump_generation()  # mutation lands mid-compute
        cache.put(key, ids, scores, generation=observed)
        assert cache.get(key) is None
        assert cache.stats()["stale_puts"] == 1

    def test_put_with_current_generation_stores(self):
        cache = ResultCache(capacity=8)
        key, ids, scores = _entry(0)
        cache.put(key, ids, scores, generation=cache.generation)
        assert cache.get(key) is not None
        assert cache.stats()["stale_puts"] == 0


@pytest.mark.parametrize("spec", [DYNAMIC_SPEC, SHARDED_DYNAMIC_SPEC])
class TestServedInvalidation:
    """End-to-end: a mutation must invalidate cached served answers."""

    def _runtime(self, spec):
        gen = np.random.default_rng(11)
        data = gen.standard_normal((60, 8))
        index = build_index(spec, data, rng=5)
        return ServingRuntime(index, coalesce=False, cache_size=32), data

    def test_insert_invalidates_stale_top1(self, spec):
        runtime, data = self._runtime(spec)
        with runtime:
            query = data[0]
            first = runtime.search(query, k=3)
            assert not first["cached"]
            assert runtime.search(query, k=3) == {**first, "cached": True}
            # A dominating vector must appear at rank 1 immediately — if the
            # stale entry were served, it could not contain the new id.
            inserted = runtime.insert(query * 50.0)
            after = runtime.search(query, k=3)
            assert not after["cached"]
            assert after["ids"][0] == inserted["id"]

    def test_delete_invalidates_stale_winner(self, spec):
        runtime, data = self._runtime(spec)
        with runtime:
            query = data[0]
            first = runtime.search(query, k=3)
            winner = first["ids"][0]
            runtime.delete(winner)
            after = runtime.search(query, k=3)
            assert not after["cached"]
            assert winner not in after["ids"]

    def test_mutation_only_invalidates_not_disables(self, spec):
        runtime, data = self._runtime(spec)
        with runtime:
            runtime.insert(data[1] * 2.0)
            fresh = runtime.search(data[2], k=2)
            assert not fresh["cached"]
            assert runtime.search(data[2], k=2) == {**fresh, "cached": True}

    def test_mutation_racing_the_put_is_never_cached_as_fresh(self, spec):
        # Deterministic replay of the compute/mutate/store interleaving: the
        # generation bump lands after the search computed its answer but
        # before the runtime stores it.  The store must be dropped — the
        # next search recomputes instead of serving the pre-mutation answer.
        runtime, data = self._runtime(spec)
        with runtime:
            original_put = runtime.cache.put
            raced = []

            def racing_put(key, ids, scores, generation=None):
                if not raced:
                    raced.append(True)
                    runtime.cache.bump_generation()  # the mutation wins
                original_put(key, ids, scores, generation=generation)

            runtime.cache.put = racing_put
            first = runtime.search(data[0], k=3)
            assert not first["cached"]
            second = runtime.search(data[0], k=3)
            assert not second["cached"]  # stale write was refused
            assert runtime.cache.stats()["stale_puts"] == 1
            # The post-race write (same generation throughout) sticks.
            assert runtime.search(data[0], k=3)["cached"]
