"""Tests for repro.api — shared result types and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BatchResult,
    MIPSIndex,
    SearchResult,
    SearchStats,
    validate_queries,
    validate_query,
)
from repro.baselines.exact import ExactMIPS
from repro.core.promips import ProMIPS, ProMIPSParams


class TestSearchResult:
    def test_normalises_dtypes(self):
        result = SearchResult(
            ids=[3, 1], scores=[2.5, 1.5], stats=SearchStats()
        )
        assert result.ids.dtype == np.int64
        assert result.scores.dtype == np.float64
        assert len(result) == 2

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            SearchResult(ids=[1, 2], scores=[1.0], stats=SearchStats())

    def test_stats_defaults(self):
        stats = SearchStats()
        assert stats.pages == 0
        assert stats.candidates == 0
        assert stats.extras == {}


class TestValidateQuery:
    def test_accepts_lists(self):
        out = validate_query([1, 2, 3], 3)
        assert out.dtype == np.float64

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            validate_query(np.ones(4), 3)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            validate_query([1.0, np.nan], 2)
        with pytest.raises(ValueError):
            validate_query([1.0, np.inf], 2)

    def test_flattens_row_vectors(self):
        assert validate_query(np.ones((1, 3)), 3).shape == (3,)


class TestEmptyBatch:
    def test_from_results_empty_list(self):
        batch = BatchResult.from_results([])
        assert batch.ids.shape == (0, 0)
        assert batch.scores.shape == (0, 0)
        assert batch.stats == []
        assert len(batch) == 0
        assert list(batch) == []

    def test_empty_constructor(self):
        batch = BatchResult.empty()
        assert batch.ids.shape == (0, 0)
        assert batch.ids.dtype == np.int64
        assert batch.scores.dtype == np.float64

    def test_validate_queries_empty_batch(self):
        out = validate_queries(np.empty((0, 5)), 5)
        assert out.shape == (0, 5)
        assert out.dtype == np.float64
        # Dimension is taken from the index when the batch carries none.
        assert validate_queries(np.empty((0, 0)), 7).shape == (0, 7)

    def test_validate_queries_still_rejects_bad_nonempty(self):
        with pytest.raises(ValueError):
            validate_queries(np.ones((2, 3)), 5)
        with pytest.raises(ValueError):
            validate_queries(np.full((1, 5), np.nan), 5)

    def test_validate_queries_rejects_zero_column_rows(self):
        # Five malformed (zero-width) queries are an error, not an empty batch.
        with pytest.raises(ValueError):
            validate_queries(np.empty((5, 0)), 8)


class TestProtocol:
    def test_indexes_satisfy_protocol(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((100, 8))
        exact = ExactMIPS(data)
        promips = ProMIPS.build(data, ProMIPSParams(m=4, kp=2, n_key=6, ksp=2), rng=1)
        assert isinstance(exact, MIPSIndex)
        assert isinstance(promips, MIPSIndex)
