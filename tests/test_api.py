"""Tests for repro.api — shared result types and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import MIPSIndex, SearchResult, SearchStats, validate_query
from repro.baselines.exact import ExactMIPS
from repro.core.promips import ProMIPS, ProMIPSParams


class TestSearchResult:
    def test_normalises_dtypes(self):
        result = SearchResult(
            ids=[3, 1], scores=[2.5, 1.5], stats=SearchStats()
        )
        assert result.ids.dtype == np.int64
        assert result.scores.dtype == np.float64
        assert len(result) == 2

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            SearchResult(ids=[1, 2], scores=[1.0], stats=SearchStats())

    def test_stats_defaults(self):
        stats = SearchStats()
        assert stats.pages == 0
        assert stats.candidates == 0
        assert stats.extras == {}


class TestValidateQuery:
    def test_accepts_lists(self):
        out = validate_query([1, 2, 3], 3)
        assert out.dtype == np.float64

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            validate_query(np.ones(4), 3)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            validate_query([1.0, np.nan], 2)
        with pytest.raises(ValueError):
            validate_query([1.0, np.inf], 2)

    def test_flattens_row_vectors(self):
        assert validate_query(np.ones((1, 3)), 3).shape == (3,)


class TestProtocol:
    def test_indexes_satisfy_protocol(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((100, 8))
        exact = ExactMIPS(data)
        promips = ProMIPS.build(data, ProMIPSParams(m=4, kp=2, n_key=6, ksp=2), rng=1)
        assert isinstance(exact, MIPSIndex)
        assert isinstance(promips, MIPSIndex)
