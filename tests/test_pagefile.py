"""Tests for repro.storage.pagefile — the page-accounting disk simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.pagefile import (
    BYTES_PER_COMPONENT,
    AccessCounter,
    VectorReader,
    VectorStore,
)


def _store(n=100, dim=8, page_size=128, layout=None):
    vectors = np.arange(n * dim, dtype=np.float64).reshape(n, dim)
    return VectorStore(vectors, page_size=page_size, layout_order=layout)


class TestAccessCounter:
    def test_add_and_reset(self):
        counter = AccessCounter()
        counter.add()
        counter.add(4)
        assert counter.pages == 5
        counter.reset()
        assert counter.pages == 0


class TestVectorStoreLayout:
    def test_identity_layout(self):
        store = _store()
        for pid in (0, 17, 99):
            assert store.slot_of(pid) == pid

    def test_custom_layout_slots(self):
        layout = np.arange(100)[::-1].copy()
        store = _store(layout=layout)
        # layout_order[s] = point stored at slot s, so point 99 sits at slot 0.
        assert store.slot_of(99) == 0
        assert store.slot_of(0) == 99

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            _store(layout=np.zeros(100, dtype=np.int64))

    def test_rejects_wrong_length_layout(self):
        with pytest.raises(ValueError):
            _store(layout=np.arange(50))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            VectorStore(np.arange(10.0), page_size=64)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            VectorStore(np.ones((4, 4)), page_size=0)


class TestPageGeometry:
    def test_points_per_page(self):
        # 8 dims × 4 bytes = 32 bytes/point → 4 points per 128-byte page.
        store = _store()
        assert store.stride_bytes == 8 * BYTES_PER_COMPONENT
        assert store.total_pages == 100 * 32 // 128
        assert list(store.pages_of(0)) == [0]
        assert list(store.pages_of(3)) == [0]
        assert list(store.pages_of(4)) == [1]

    def test_wide_vector_spans_pages(self):
        # 64 dims × 4B = 256 bytes/point on 128-byte pages → 2 pages each,
        # the P53 regime that forces the paper to 64KB pages.
        vectors = np.ones((10, 64))
        store = VectorStore(vectors, page_size=128)
        assert list(store.pages_of(0)) == [0, 1]
        assert list(store.pages_of(1)) == [2, 3]
        assert store.total_pages == 20

    def test_size_bytes(self):
        store = _store()
        assert store.size_bytes == 100 * 32


class TestVectorReader:
    def test_get_returns_correct_vector(self):
        store = _store()
        reader = store.reader()
        assert np.array_equal(reader.get(7), store._vectors[7])

    def test_distinct_page_counting(self):
        store = _store()  # 4 points/page
        reader = store.reader()
        reader.get(0)
        reader.get(1)  # same page
        assert reader.pages_touched == 1
        reader.get(4)  # next page
        assert reader.pages_touched == 2
        reader.get(0)  # buffered
        assert reader.pages_touched == 2

    def test_get_many_counts_union_of_pages(self):
        store = _store()
        reader = store.reader()
        reader.get_many(np.array([0, 1, 2, 3, 4, 5, 6, 7]))
        assert reader.pages_touched == 2

    def test_get_many_returns_rows(self):
        store = _store()
        reader = store.reader()
        out = reader.get_many(np.array([3, 9]))
        assert np.array_equal(out, store._vectors[[3, 9]])

    def test_get_many_empty(self):
        reader = _store().reader()
        out = reader.get_many(np.array([], dtype=np.int64))
        assert out.shape == (0, 8)
        assert reader.pages_touched == 0

    def test_scan_all_touches_every_page(self):
        store = _store()
        reader = store.reader()
        reader.scan_all()
        assert reader.pages_touched == store.total_pages

    def test_readers_are_independent(self):
        store = _store()
        r1, r2 = store.reader(), store.reader()
        r1.get(0)
        assert r2.pages_touched == 0

    def test_layout_affects_locality(self):
        # Points 0..3 contiguous under identity layout → 1 page; under a
        # scattered layout they straddle 4 pages.
        ids = np.array([0, 1, 2, 3])
        contiguous = _store()
        reader = contiguous.reader()
        reader.get_many(ids)
        assert reader.pages_touched == 1

        # Build a valid permutation placing 0,1,2,3 on different pages.
        layout = np.arange(100)
        layout[[0, 1, 2, 3]] = [0, 4, 8, 12]
        layout[[4, 8, 12]] = [1, 2, 3]
        store = _store(layout=layout)
        reader = store.reader()
        reader.get_many(ids)
        assert reader.pages_touched == 4

    def test_touch_pages_manual(self):
        reader = _store().reader()
        reader.touch_pages(range(3))
        assert reader.pages_touched == 3
        reader.touch_pages([1, 2, 5])
        assert reader.pages_touched == 4

    def test_wide_vector_get_many_counts_spans(self):
        vectors = np.ones((6, 64))
        store = VectorStore(vectors, page_size=128)  # 2 pages per point
        reader = store.reader()
        reader.get_many(np.array([0, 2]))
        assert reader.pages_touched == 4

    def test_reader_type(self):
        assert isinstance(_store().reader(), VectorReader)
