"""Integration tests for the ProMIPS index (Algorithms 1 and 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.promips import ProMIPS, ProMIPSParams
from repro.eval.metrics import guarantee_success

from conftest import exact_topk_reference


@pytest.fixture(scope="module")
def built(latent_medium):
    data, queries = latent_medium
    index = ProMIPS.build(data, ProMIPSParams(c=0.9, p=0.5), rng=3)
    return data, queries, index


class TestBuild:
    def test_optimizer_selects_m(self, built):
        data, _, index = built
        assert index.m >= 2
        assert index.params.m == index.m

    def test_explicit_m_respected(self, latent_small):
        data, _ = latent_small
        index = ProMIPS.build(data, ProMIPSParams(m=7), rng=0)
        assert index.m == 7

    def test_rejects_bad_data(self):
        with pytest.raises(ValueError):
            ProMIPS.build(np.empty((0, 4)))
        with pytest.raises(ValueError):
            ProMIPS.build(np.ones(5))
        bad = np.ones((10, 3))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            ProMIPS.build(bad)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ProMIPSParams(c=1.2)
        with pytest.raises(ValueError):
            ProMIPSParams(p=0.0)
        with pytest.raises(ValueError):
            ProMIPSParams(m=-1)
        with pytest.raises(ValueError):
            ProMIPSParams(kp=0)

    def test_index_size_positive_and_small(self, built):
        data, _, index = built
        # "Lightweight": far below the raw data footprint.
        assert 0 < index.index_size_bytes() < data.nbytes

    def test_repr(self, built):
        assert "ProMIPS" in repr(built[2])


class TestSearchBasics:
    def test_returns_k_sorted_results(self, built):
        data, queries, index = built
        result = index.search(queries[0], k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.scores) <= 1e-12)
        assert len(set(result.ids.tolist())) == 10

    def test_scores_are_true_inner_products(self, built):
        data, queries, index = built
        result = index.search(queries[1], k=5)
        expected = data[result.ids] @ queries[1]
        assert np.allclose(result.scores, expected)

    def test_k_larger_than_n(self, latent_small):
        data, queries = latent_small
        index = ProMIPS.build(data[:50], ProMIPSParams(m=4, kp=2, n_key=8, ksp=2), rng=0)
        result = index.search(queries[0], k=500)
        assert len(result) == 50

    def test_k_one(self, built):
        data, queries, index = built
        result = index.search(queries[2], k=1)
        assert len(result) == 1

    def test_rejects_bad_inputs(self, built):
        _, queries, index = built
        with pytest.raises(ValueError):
            index.search(queries[0], k=0)
        with pytest.raises(ValueError):
            index.search(np.ones(3), k=1)
        with pytest.raises(ValueError):
            index.search(np.full(queries.shape[1], np.nan), k=1)

    def test_stats_populated(self, built):
        data, queries, index = built
        result = index.search(queries[3], k=10)
        stats = result.stats
        assert stats.pages > 0
        assert 0 < stats.candidates <= len(data)
        assert stats.extras["probe_radius"] >= 0
        assert stats.extras["final_radius"] >= stats.extras["probe_radius"] or (
            stats.extras["expansions"] == 0
        )
        assert stats.extras["stopped_by"] in (
            "condition_a", "condition_b", "exhausted"
        )


class TestGuarantee:
    """The headline property: P[⟨o,q⟩ ≥ c⟨o*,q⟩] ≥ p per returned rank."""

    @pytest.mark.parametrize("c,p", [(0.9, 0.5), (0.8, 0.5), (0.9, 0.7)])
    def test_success_rate_meets_p(self, built, c, p):
        data, queries, index = built
        successes = []
        for q in queries:
            _, exact_ips = exact_topk_reference(data, q, 10)
            result = index.search(q, k=10, c=c, p=p)
            successes.append(guarantee_success(result.scores, exact_ips, c))
        # Mean success over ranks/queries must clear p with slack far beyond
        # sampling noise (the guarantee is a lower bound; observed values
        # are typically much higher).
        assert float(np.mean(successes)) >= p

    def test_high_p_approaches_exact(self, latent_small):
        data, queries = latent_small
        index = ProMIPS.build(data, ProMIPSParams(c=0.9, p=0.97), rng=1)
        ratios = []
        for q in queries:
            _, exact_ips = exact_topk_reference(data, q, 5)
            result = index.search(q, k=5)
            ratios.append(float(np.mean(result.scores / exact_ips)))
        assert float(np.mean(ratios)) >= 0.98

    def test_per_query_override_changes_effort(self, built):
        data, queries, index = built
        q = queries[4]
        low = index.search(q, k=10, p=0.3)
        high = index.search(q, k=10, p=0.9)
        assert high.stats.candidates >= low.stats.candidates


class TestIncrementalSearch:
    def test_matches_quality_of_range_search(self, built):
        data, queries, index = built
        for q in queries[:6]:
            _, exact_ips = exact_topk_reference(data, q, 10)
            r1 = index.search(q, k=10)
            r2 = index.search_incremental(q, k=10)
            assert guarantee_success(r2.scores, exact_ips, 0.9) >= 0.5
            assert r2.stats.extras["stopped_by"] in (
                "condition_a", "condition_b", "exhausted"
            )

    def test_rejects_bad_k(self, built):
        _, queries, index = built
        with pytest.raises(ValueError):
            index.search_incremental(queries[0], k=-1)


class TestDeterminism:
    def test_same_build_seed_same_results(self, latent_small):
        data, queries = latent_small
        a = ProMIPS.build(data, ProMIPSParams(m=5), rng=9)
        b = ProMIPS.build(data, ProMIPSParams(m=5), rng=9)
        ra = a.search(queries[0], k=5)
        rb = b.search(queries[0], k=5)
        assert np.array_equal(ra.ids, rb.ids)
        assert ra.stats.pages == rb.stats.pages


class TestConditionAPath:
    def test_self_query_on_dominant_point(self):
        """A query equal to the max-norm point must trigger Condition A
        immediately: its self inner product is ‖oM‖² ≥ c(‖oM‖²+‖q‖²)/2."""
        gen = np.random.default_rng(5)
        data = gen.standard_normal((400, 12))
        data[7] *= 10.0  # dominant point
        index = ProMIPS.build(data, ProMIPSParams(m=4, kp=2, n_key=8, ksp=2), rng=1)
        result = index.search(data[7], k=1)
        assert result.ids[0] == 7
        assert result.stats.extras["stopped_by"] == "condition_a"
        # Condition A prunes hard: nowhere near a full scan.
        assert result.stats.candidates < 200
