"""Tests for repro.cluster.kmeans."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster.kmeans import KMeansResult, assign_to_centers, kmeans


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestKMeansBasics:
    def test_result_shapes(self):
        points = _rng().standard_normal((200, 5))
        result = kmeans(points, 4, _rng(1))
        assert result.centers.shape == (4, 5)
        assert result.labels.shape == (200,)
        assert result.radii.shape == (4,)
        assert result.n_clusters == 4
        assert result.n_iter >= 1

    def test_labels_are_nearest_centers(self):
        points = _rng(2).standard_normal((300, 4))
        result = kmeans(points, 6, _rng(3))
        expected = assign_to_centers(points, result.centers)
        assert np.array_equal(result.labels, expected)

    def test_radii_cover_members(self):
        points = _rng(4).standard_normal((250, 3))
        result = kmeans(points, 5, _rng(5))
        dist = np.linalg.norm(points - result.centers[result.labels], axis=1)
        for j in range(result.n_clusters):
            members = result.labels == j
            if members.any():
                assert dist[members].max() <= result.radii[j] + 1e-9

    def test_every_cluster_nonempty(self):
        points = _rng(6).standard_normal((100, 2))
        result = kmeans(points, 8, _rng(7))
        for j in range(result.n_clusters):
            assert (result.labels == j).sum() > 0

    def test_separated_clusters_recovered(self):
        gen = _rng(8)
        a = gen.standard_normal((50, 2)) + [0.0, 0.0]
        b = gen.standard_normal((50, 2)) + [30.0, 0.0]
        c = gen.standard_normal((50, 2)) + [0.0, 30.0]
        points = np.vstack([a, b, c])
        result = kmeans(points, 3, _rng(9))
        # Each true cluster should map to a single k-means label.
        for block in (slice(0, 50), slice(50, 100), slice(100, 150)):
            assert len(np.unique(result.labels[block])) == 1
        assert result.inertia < 800.0

    def test_k_capped_at_n(self):
        points = _rng(10).standard_normal((3, 2))
        result = kmeans(points, 10, _rng(11))
        assert result.n_clusters == 3

    def test_single_point(self):
        result = kmeans(np.array([[1.0, 2.0]]), 1, _rng(12))
        assert np.allclose(result.centers, [[1.0, 2.0]])
        assert result.inertia == pytest.approx(0.0)

    def test_identical_points(self):
        points = np.ones((40, 3))
        result = kmeans(points, 4, _rng(13))
        assert result.inertia == pytest.approx(0.0, abs=1e-18)
        assert np.allclose(result.centers, 1.0)

    def test_cluster_members_helper(self):
        points = _rng(14).standard_normal((60, 2))
        result = kmeans(points, 3, _rng(15))
        all_members = np.concatenate(
            [result.cluster_members(j) for j in range(result.n_clusters)]
        )
        assert sorted(all_members.tolist()) == list(range(60))


class TestKMeansErrors:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), 2, _rng())

    def test_rejects_bad_k(self):
        points = _rng().standard_normal((10, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0, _rng())
        with pytest.raises(ValueError):
            kmeans(points, -1, _rng())

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            kmeans(np.arange(10.0), 2, _rng())


class TestAssignToCenters:
    def test_matches_manual_argmin(self):
        gen = _rng(16)
        points = gen.standard_normal((50, 3))
        centers = gen.standard_normal((4, 3))
        labels = assign_to_centers(points, centers)
        manual = np.array(
            [np.argmin(((c - centers) ** 2).sum(axis=1)) for c in points]
        )
        assert np.array_equal(labels, manual)

    @given(
        arrays(np.float64, (20, 3), elements=st.floats(-100, 100)),
        arrays(np.float64, (5, 3), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_assigned_center_is_closest(self, points, centers):
        labels = assign_to_centers(points, centers)
        d_assigned = np.linalg.norm(points - centers[labels], axis=1)
        for j in range(centers.shape[0]):
            d_j = np.linalg.norm(points - centers[j], axis=1)
            assert np.all(d_assigned <= d_j + 1e-9)


class TestDeterminism:
    def test_same_seed_same_result(self):
        points = _rng(17).standard_normal((150, 4))
        r1 = kmeans(points, 5, np.random.default_rng(42))
        r2 = kmeans(points, 5, np.random.default_rng(42))
        assert np.array_equal(r1.labels, r2.labels)
        assert np.allclose(r1.centers, r2.centers)

    def test_result_is_dataclass(self):
        points = _rng(18).standard_normal((30, 2))
        result = kmeans(points, 2, _rng(19))
        assert isinstance(result, KMeansResult)
