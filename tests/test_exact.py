"""Tests for repro.baselines.exact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactMIPS, exact_topk


class TestExactTopk:
    def test_matches_numpy_reference(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((300, 7))
        q = gen.standard_normal(7)
        ids, ips = exact_topk(data, q, 10)
        all_ips = data @ q
        expected = np.sort(all_ips)[::-1][:10]
        assert np.allclose(ips, expected)
        assert np.all(np.diff(ips) <= 1e-12)

    def test_k_capped(self):
        data = np.eye(3)
        ids, ips = exact_topk(data, np.ones(3), 10)
        assert len(ids) == 3

    def test_deterministic_tie_break_by_id(self):
        data = np.ones((5, 2))  # all tie
        ids, _ = exact_topk(data, np.ones(2), 3)
        assert ids.tolist() == [0, 1, 2]


class TestExactMIPS:
    @pytest.fixture(scope="class")
    def built(self):
        gen = np.random.default_rng(1)
        data = gen.standard_normal((200, 6))
        return data, ExactMIPS(data, page_size=256)

    def test_matches_reference(self, built):
        data, index = built
        q = np.random.default_rng(2).standard_normal(6)
        result = index.search(q, k=7)
        expected_ips = np.sort(data @ q)[::-1][:7]
        assert np.allclose(result.scores, expected_ips)

    def test_pages_equal_full_scan(self, built):
        data, index = built
        result = index.search(data[0], k=1)
        assert result.stats.pages == index._store.total_pages
        assert result.stats.candidates == len(data)

    def test_index_size_zero(self, built):
        assert built[1].index_size_bytes() == 0

    def test_rejects_bad_inputs(self, built):
        _, index = built
        with pytest.raises(ValueError):
            index.search(np.zeros(6), k=0)
        with pytest.raises(ValueError):
            index.search(np.zeros(5), k=1)
        with pytest.raises(ValueError):
            ExactMIPS(np.empty((0, 2)))
