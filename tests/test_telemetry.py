"""Tests for repro.serve.telemetry."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.telemetry import Telemetry


class TestCounters:
    def test_starts_empty(self):
        snap = Telemetry().snapshot()
        assert snap["requests_total"] == 0
        assert snap["qps"] == 0.0
        assert snap["latency"]["count"] == 0
        assert snap["batch"] == {
            "dispatches": 0, "histogram": {}, "mean_occupancy": 0.0,
        }

    def test_requests_grouped_by_endpoint(self):
        telemetry = Telemetry()
        for _ in range(3):
            telemetry.record_request("search")
        telemetry.record_request("insert")
        snap = telemetry.snapshot()
        assert snap["requests_total"] == 4
        assert snap["requests_by_endpoint"] == {"search": 3, "insert": 1}
        assert snap["qps"] > 0
        assert telemetry.total_requests == 4

    def test_errors_tracked_separately(self):
        telemetry = Telemetry()
        telemetry.record_error("search")
        snap = telemetry.snapshot()
        assert snap["errors_by_endpoint"] == {"search": 1}
        assert snap["requests_total"] == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            Telemetry(window=0)


class TestLatency:
    def test_percentiles_match_numpy(self):
        telemetry = Telemetry()
        rng = np.random.default_rng(0)
        samples = rng.exponential(scale=0.002, size=200)
        for s in samples:
            telemetry.record_request("search", seconds=float(s))
        latency = telemetry.snapshot()["latency"]
        assert latency["count"] == 200
        assert latency["p50_ms"] == pytest.approx(
            float(np.percentile(samples, 50)) * 1e3
        )
        assert latency["p95_ms"] == pytest.approx(
            float(np.percentile(samples, 95)) * 1e3
        )
        assert latency["p99_ms"] == pytest.approx(
            float(np.percentile(samples, 99)) * 1e3
        )

    def test_window_keeps_most_recent(self):
        telemetry = Telemetry(window=4)
        for s in [1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0]:
            telemetry.record_request("search", seconds=s)
        latency = telemetry.snapshot()["latency"]
        assert latency["count"] == 4
        assert latency["p50_ms"] == pytest.approx(5000.0)


class TestBatchHistogram:
    def test_occupancy_histogram(self):
        telemetry = Telemetry()
        for size in [1, 4, 4, 8]:
            telemetry.record_batch(size)
        batch = telemetry.snapshot()["batch"]
        assert batch["dispatches"] == 4
        assert batch["histogram"] == {"1": 1, "4": 2, "8": 1}
        assert batch["mean_occupancy"] == pytest.approx((1 + 4 + 4 + 8) / 4)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            Telemetry().record_batch(0)


class TestCacheMerge:
    def test_hit_rate_derived(self):
        snap = Telemetry().snapshot(cache_stats={"hits": 3, "misses": 1})
        assert snap["cache"]["hit_rate"] == pytest.approx(0.75)

    def test_zero_lookups_is_zero_rate(self):
        snap = Telemetry().snapshot(cache_stats={"hits": 0, "misses": 0})
        assert snap["cache"]["hit_rate"] == 0.0


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        telemetry = Telemetry()
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                telemetry.record_request("search", seconds=0.001)
                telemetry.record_batch(2)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = telemetry.snapshot()
        assert snap["requests_total"] == n_threads * per_thread
        assert snap["batch"]["dispatches"] == n_threads * per_thread
