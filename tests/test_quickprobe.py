"""Tests for repro.core.quickprobe — Algorithm 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binary_codes import BinaryCodeGroups
from repro.core.quickprobe import ProbeOutcome, QuickProbe


@pytest.fixture(scope="module")
def probe_setup():
    gen = np.random.default_rng(31)
    data = gen.standard_normal((600, 20))
    matrix = gen.standard_normal((5, 20))
    projected = data @ matrix.T
    l1 = np.abs(data).sum(axis=1)
    groups = BinaryCodeGroups(projected, l1)
    return data, projected, l1, groups, QuickProbe(groups)


class TestProbe:
    def test_returns_valid_point(self, probe_setup):
        data, projected, l1, groups, qp = probe_setup
        q = np.random.default_rng(1).standard_normal(20)
        matrix_q = projected[0] * 0  # placeholder — use a member projection
        outcome = qp.probe(projected[3], float(np.abs(data[3]).sum()), c=0.9, p=0.5)
        assert isinstance(outcome, ProbeOutcome)
        assert 0 <= outcome.point_id < len(data)
        assert outcome.groups_examined >= 1

    def test_pass_consistent_with_threshold(self, probe_setup):
        data, projected, l1, groups, qp = probe_setup
        for seed in range(8):
            q_proj = np.random.default_rng(seed).standard_normal(5) * 5
            q_l1 = float(np.random.default_rng(seed + 100).uniform(1, 30))
            for p in (0.3, 0.7):
                outcome = qp.probe(q_proj, q_l1, c=0.9, p=p)
                threshold = qp.chi2.ppf(p)
                if outcome.passed:
                    assert outcome.test_value >= threshold - 1e-12
                else:
                    # Fallback carries the best value seen, which must be
                    # below the threshold (otherwise it would have passed).
                    assert outcome.test_value < threshold

    def test_fallback_when_nothing_passes(self, probe_setup):
        data, projected, l1, groups, qp = probe_setup
        # A huge query 1-norm makes Test A's denominator enormous, so no
        # group can pass; the probe must fall back gracefully.
        outcome = qp.probe(np.zeros(5), 1e9, c=0.9, p=0.9)
        assert not outcome.passed
        assert outcome.groups_examined == groups.n_groups
        assert 0 <= outcome.point_id < len(data)

    def test_tightest_radius_among_passing_groups(self, probe_setup):
        """When Test A passes, the chosen group must be the nearest (lowest
        LB) among all groups that would pass — Algorithm 2 scans ascending."""
        data, projected, l1, groups, qp = probe_setup
        q_proj = np.random.default_rng(77).standard_normal(5) * 0.1
        q_l1 = 0.05  # small denominator → many groups pass
        c, p = 0.9, 0.3
        outcome = qp.probe(q_proj, q_l1, c=c, p=p)
        if outcome.passed:
            lbs = groups.lower_bounds(q_proj)
            threshold = qp.chi2.ppf(p)
            denominators = c * (groups.min_l1 + q_l1) ** 2
            values = np.where(denominators > 0, lbs**2 / denominators, np.inf)
            passing = np.flatnonzero(values >= threshold)
            chosen_lb = lbs[
                [g for g in range(groups.n_groups)
                 if groups.min_l1_ids[g] == outcome.point_id][0]
            ]
            assert chosen_lb <= lbs[passing].min() + 1e-12

    def test_rejects_bad_parameters(self, probe_setup):
        *_, qp = probe_setup
        with pytest.raises(ValueError):
            qp.probe(np.zeros(5), 1.0, c=1.0, p=0.5)
        with pytest.raises(ValueError):
            qp.probe(np.zeros(5), 1.0, c=0.9, p=0.0)
        with pytest.raises(ValueError):
            qp.probe(np.zeros(5), -1.0, c=0.9, p=0.5)

    def test_n_groups_property(self, probe_setup):
        *_, groups, qp = probe_setup[2:]
        assert qp.n_groups == groups.n_groups
