"""Tests for repro.data — generators and the Table III registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import DATASETS, load_dataset, table3_rows
from repro.data.synthetic import (
    make_latent_factor,
    make_p53_like,
    make_sift_like,
    sample_queries,
)


class TestLatentFactor:
    def test_shapes(self):
        items, queries = make_latent_factor(500, 16, np.random.default_rng(0), n_queries=7)
        assert items.shape == (500, 16)
        assert queries.shape == (7, 16)

    def test_norms_concentrate(self):
        items, _ = make_latent_factor(2000, 24, np.random.default_rng(1))
        norms = np.linalg.norm(items, axis=1)
        # PureSVD-style: max/median stays modest (paper-regime calibration).
        assert norms.max() / np.median(norms) < 1.6

    def test_anisotropy(self):
        """The power-law spectrum must concentrate variance in few directions."""
        items, _ = make_latent_factor(3000, 32, np.random.default_rng(2))
        sv = np.linalg.svd(items - items.mean(axis=0), compute_uv=False)
        energy = np.cumsum(sv**2) / np.sum(sv**2)
        assert energy[7] > 0.5  # top quarter of dims carries most energy

    def test_deterministic(self):
        a, _ = make_latent_factor(100, 8, np.random.default_rng(5))
        b, _ = make_latent_factor(100, 8, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_latent_factor(0, 8, np.random.default_rng(0))
        with pytest.raises(ValueError):
            make_latent_factor(10, 0, np.random.default_rng(0))


class TestP53Like:
    def test_shape_and_sparsity(self):
        data = make_p53_like(400, 256, np.random.default_rng(3))
        assert data.shape == (400, 256)
        zero_frac = float((data == 0.0).mean())
        assert 0.3 < zero_frac < 0.9  # block-sparse activation

    def test_norms_concentrate(self):
        data = make_p53_like(1000, 512, np.random.default_rng(4))
        norms = np.linalg.norm(data, axis=1)
        assert norms.max() / np.median(norms) < 1.8

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_p53_like(0, 8, np.random.default_rng(0))


class TestSiftLike:
    def test_non_negative_integers(self):
        data = make_sift_like(500, 32, np.random.default_rng(5))
        assert data.min() >= 0
        assert np.array_equal(data, np.floor(data))

    def test_norms_tight(self):
        data = make_sift_like(2000, 64, np.random.default_rng(6))
        norms = np.linalg.norm(data, axis=1)
        assert norms.max() / np.median(norms) < 1.3

    def test_clustered(self):
        """Within-cluster similarity must dominate: nearest neighbours have
        much higher cosine than random pairs."""
        data = make_sift_like(800, 32, np.random.default_rng(7), n_clusters=16)
        unit = data / np.linalg.norm(data, axis=1, keepdims=True)
        sims = unit[:100] @ unit.T
        np.fill_diagonal(sims[:, :100], -1)
        best = sims.max(axis=1)
        assert best.mean() > np.median(sims) + 0.02

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_sift_like(10, -1, np.random.default_rng(0))


class TestSampleQueries:
    def test_queries_come_from_data(self):
        data = np.arange(50.0).reshape(25, 2)
        queries, ids = sample_queries(data, 5, np.random.default_rng(8))
        assert np.array_equal(queries, data[ids])
        assert len(set(ids.tolist())) == 5

    def test_rejects_oversampling(self):
        with pytest.raises(ValueError):
            sample_queries(np.ones((3, 2)), 5, np.random.default_rng(0))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            sample_queries(np.ones((3, 2)), 0, np.random.default_rng(0))


class TestRegistry:
    def test_four_datasets_registered(self):
        assert set(DATASETS) == {"netflix", "yahoo", "p53", "sift"}

    def test_paper_metadata_matches_table3(self):
        assert DATASETS["netflix"].paper_n == 17770
        assert DATASETS["netflix"].paper_d == 300
        assert DATASETS["yahoo"].paper_n == 624961
        assert DATASETS["p53"].paper_d == 5408
        assert DATASETS["sift"].paper_n == 11164866
        assert DATASETS["p53"].page_size == 65536  # 64KB pages on P53

    def test_paper_m_values(self):
        assert DATASETS["netflix"].paper_m == 6
        assert DATASETS["p53"].paper_m == 6
        assert DATASETS["yahoo"].paper_m == 8
        assert DATASETS["sift"].paper_m == 10

    def test_load_dataset_with_overrides(self):
        ds = load_dataset("netflix", n=300, dim=12, n_queries=4)
        assert ds.data.shape == (300, 12)
        assert ds.queries.shape == (4, 12)
        assert ds.n == 300 and ds.dim == 12
        assert ds.size_bytes == 300 * 12 * 4

    def test_load_dataset_deterministic(self):
        a = load_dataset("sift", n=200, dim=16, n_queries=3, seed=5)
        b = load_dataset("sift", n=200, dim=16, n_queries=3, seed=5)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.queries, b.queries)

    def test_load_rejects_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")
        with pytest.raises(ValueError):
            load_dataset("netflix", profile="huge")

    def test_table3_rows_paper_profile(self):
        rows = table3_rows(profile="paper")
        by_name = {r["dataset"]: r for r in rows}
        assert by_name["netflix"]["n"] == 17770
        # 17770 × 300 × 4B ≈ 20.3MiB... the paper reports 84.2MB because it
        # sizes with metadata; we only check internal consistency here.
        assert by_name["sift"]["size_mb"] > by_name["netflix"]["size_mb"]

    def test_table3_rows_sim_profile(self):
        rows = table3_rows(profile="sim", n_queries=2, n=400, dim=16)
        assert len(rows) == 4
        for row in rows:
            assert row["n"] == 400 and row["d"] == 16
