"""Tests for repro.baselines.alsh — L2-ALSH, Sign-ALSH, Simple-LSH."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.alsh import L2ALSH, SignALSH, simple_lsh
from repro.baselines.rangelsh import RangeLSH

from conftest import exact_topk_reference


class TestL2ALSH:
    @pytest.fixture(scope="class")
    def built(self, latent_small):
        data, queries = latent_small
        return data, queries, L2ALSH(data, rng=3)

    def test_quality_floor(self, built):
        data, queries, index = built
        ratios = []
        for q in queries:
            _, exact_ips = exact_topk_reference(data, q, 10)
            res = index.search(q, k=10)
            if len(res):
                ratios.append(float(np.mean(res.scores / exact_ips[: len(res)])))
        # First-generation ALSH: usable but visibly below ProMIPS (§IX's
        # transformation-error narrative).
        assert float(np.mean(ratios)) >= 0.6

    def test_scores_are_exact_ips(self, built):
        data, queries, index = built
        res = index.search(queries[0], k=5)
        if len(res):
            assert np.allclose(res.scores, data[res.ids] @ queries[0])

    def test_stats(self, built):
        _, queries, index = built
        res = index.search(queries[1], k=5)
        assert res.stats.pages > 0

    def test_rejects_bad_params(self, latent_small):
        data, _ = latent_small
        with pytest.raises(ValueError):
            L2ALSH(data, u=1.5)
        with pytest.raises(ValueError):
            L2ALSH(data, m=0)
        with pytest.raises(ValueError):
            L2ALSH(np.empty((0, 3)))

    def test_transform_shapes(self, built):
        data, _, index = built
        q = index._transform_query(np.ones(data.shape[1]))
        assert q.shape == (data.shape[1] + index.m,)
        assert np.all(q[-index.m:] == 0.5)


class TestSignALSH:
    @pytest.fixture(scope="class")
    def built(self, latent_small):
        data, queries = latent_small
        return data, queries, SignALSH(data, rng=3)

    def test_quality_floor(self, built):
        data, queries, index = built
        ratios = []
        for q in queries:
            _, exact_ips = exact_topk_reference(data, q, 10)
            res = index.search(q, k=10)
            ratios.append(float(np.mean(res.scores / exact_ips[: len(res)])))
        assert float(np.mean(ratios)) >= 0.8

    def test_budget_bounded(self, built):
        data, queries, index = built
        res = index.search(queries[0], k=10)
        assert res.stats.candidates <= max(
            int(index.candidate_fraction * len(data)), 120
        )

    def test_rejects_bad_params(self, latent_small):
        data, _ = latent_small
        with pytest.raises(ValueError):
            SignALSH(data, u=0.0)
        with pytest.raises(ValueError):
            SignALSH(data, m=-1)

    def test_repr(self, built):
        assert "SignALSH" in repr(built[2])


class TestSimpleLSH:
    def test_is_single_partition_rangelsh(self, latent_small):
        data, _ = latent_small
        index = simple_lsh(data, rng=1)
        assert isinstance(index, RangeLSH)
        assert index.n_parts == 1

    def test_excessive_normalization_story(self):
        """On long-tailed norms, Range-LSH's local scaling must beat
        Simple-LSH's global scaling — the NeurIPS 2018 claim the paper
        echoes in §IX."""
        gen = np.random.default_rng(9)
        base = gen.standard_normal((4000, 24))
        base /= np.linalg.norm(base, axis=1, keepdims=True)
        # Heavy norm tail: a few giants squash everyone else under a global U.
        norms = gen.lognormal(0.0, 1.0, size=4000)
        data = base * norms[:, None]
        queries = data[gen.choice(4000, 15, replace=False)]

        simple = simple_lsh(data, rng=2)
        ranged = RangeLSH(data, rng=2)
        def mean_recall(index):
            recalls = []
            for q in queries:
                exact_ids, _ = exact_topk_reference(data, q, 10)
                res = index.search(q, k=10)
                recalls.append(
                    len(set(res.ids.tolist()) & set(exact_ids.tolist())) / 10
                )
            return float(np.mean(recalls))

        assert mean_recall(ranged) >= mean_recall(simple) - 0.05
