"""Shared fixtures: small, deterministic datasets reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_latent_factor, sample_queries


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20210406)


@pytest.fixture(scope="session")
def latent_small() -> tuple[np.ndarray, np.ndarray]:
    """A 1200×24 latent-factor dataset with 12 in-dataset queries."""
    gen = np.random.default_rng(7)
    items, _ = make_latent_factor(1200, 24, gen)
    queries, _ = sample_queries(items, 12, gen)
    return items, queries


@pytest.fixture(scope="session")
def latent_medium() -> tuple[np.ndarray, np.ndarray]:
    """A 4000×32 latent-factor dataset with 24 in-dataset queries."""
    gen = np.random.default_rng(11)
    items, _ = make_latent_factor(4000, 32, gen)
    queries, _ = sample_queries(items, 24, gen)
    return items, queries


def exact_topk_reference(data: np.ndarray, query: np.ndarray, k: int):
    """Brute-force reference used throughout the tests."""
    ips = data @ query
    order = np.lexsort((np.arange(len(ips)), -ips))[:k]
    return order, ips[order]


@pytest.fixture(scope="session")
def exact_topk():
    """The brute-force oracle as a fixture, so test modules share one
    implementation of the (-score, id) ground-truth order."""
    return exact_topk_reference
