"""Cross-method metamorphic properties.

Each test states a relation between *two* runs of a search method — scale
the query, append a point, widen a probe budget, duplicate a vector — whose
outcome is known without any external oracle.  These relations hold across
methods, so a refactor that silently breaks ranking, tie-breaking, or a
budget knob fails here even when the absolute answers still look plausible.

The suite leans on ``hypothesis`` for the input-space properties (scaling
factors, adversarial datasets) and on the seeded fixtures for the
statistical ones (recall monotonicity over a fixed workload).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.sharded import ShardedIndex
from repro.eval.metrics import recall
from repro.spec import build_index

_SCALES = st.floats(1e-3, 1e3, allow_nan=False, allow_infinity=False)
_ROWS = st.floats(-20.0, 20.0, allow_nan=False, allow_infinity=False)


@pytest.fixture(scope="module")
def scale_indexes(latent_small):
    """Indexes whose ranking must be invariant under positive query scaling:
    the exact scan, its sharded composition, and SimHash (whose codes are
    computed from the normalised query)."""
    data, queries = latent_small
    return (
        queries,
        {
            "exact": build_index("exact()", data),
            "sharded-exact": build_index(
                "sharded(inner='exact()', shards=3)", data, rng=1
            ),
            "simhash": build_index("simhash(n_bits=24)", data, rng=5),
        },
    )


class TestQueryScaleInvariance:
    """``argtop-k ⟨o, αq⟩ = argtop-k ⟨o, q⟩`` for every ``α > 0``."""

    @pytest.mark.parametrize("method", ["exact", "sharded-exact", "simhash"])
    @given(alpha=_SCALES, query_row=st.integers(0, 11))
    @settings(max_examples=30, deadline=None)
    def test_topk_ids_invariant(self, scale_indexes, method, alpha, query_row):
        queries, indexes = scale_indexes
        index = indexes[method]
        query = queries[query_row]
        base = index.search(query, k=10)
        scaled = index.search(alpha * query, k=10)
        assert np.array_equal(scaled.ids, base.ids)

    @pytest.mark.parametrize("method", ["exact", "sharded-exact"])
    @given(alpha=_SCALES)
    @settings(max_examples=20, deadline=None)
    def test_scores_scale_linearly(self, scale_indexes, method, alpha):
        queries, indexes = scale_indexes
        index = indexes[method]
        base = index.search(queries[0], k=10)
        scaled = index.search(alpha * queries[0], k=10)
        assert np.allclose(scaled.scores, alpha * base.scores, rtol=1e-10)


class TestDominatedAppend:
    """Appending a vector whose inner product with the query is below the
    current k-th best cannot change the exact top-k."""

    @given(
        data=arrays(np.float64, (30, 8), elements=_ROWS),
        query=arrays(np.float64, (8,), elements=_ROWS),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_topk_unchanged(self, data, query):
        if float(query @ query) == 0.0:
            return  # cannot aim a dominated vector without a direction
        k = 5
        before = build_index("exact()", data).search(query, k=k)
        # ⟨v, q⟩ = kth − 1 < kth by construction: strictly dominated.
        kth = float(before.scores[-1])
        dominated = query * ((kth - 1.0) / float(query @ query))
        grown = np.vstack([data, dominated])
        after = build_index("exact()", grown).search(query, k=k)
        assert np.array_equal(after.ids, before.ids)
        assert np.array_equal(after.scores, before.scores)

    @given(
        data=arrays(np.float64, (30, 8), elements=_ROWS),
        query=arrays(np.float64, (8,), elements=_ROWS),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharded_exact_topk_unchanged(self, data, query):
        if float(query @ query) == 0.0:
            return
        k = 5
        before = ShardedIndex.build(data, inner="exact()", shards=3, rng=1).search(
            query, k=k
        )
        kth = float(before.scores[-1])
        dominated = query * ((kth - 1.0) / float(query @ query))
        grown = np.vstack([data, dominated])
        after = ShardedIndex.build(grown, inner="exact()", shards=3, rng=1).search(
            query, k=k
        )
        assert np.array_equal(after.ids, before.ids)
        assert np.array_equal(after.scores, before.scores)


class TestProbeBudgetMonotonicity:
    """More probe budget never hurts: recall over a seeded workload is
    monotone non-decreasing in the knob that widens the candidate set."""

    def _mean_recall(
        self, index, data, queries, oracle, k=10, **search_kwargs
    ) -> float:
        values = [
            recall(index.search(q, k=k, **search_kwargs).ids, oracle(data, q, k)[0])
            for q in queries
        ]
        return float(np.mean(values))

    def test_promips_recall_monotone_in_p(self, latent_small, exact_topk):
        data, queries = latent_small
        index = build_index(
            "promips(c=0.85, m=5, kp=3, n_key=10, ksp=4)", data, rng=7
        )
        ps = [0.1, 0.3, 0.5, 0.7, 0.9]
        recalls = [
            self._mean_recall(index, data, queries, exact_topk, p=p) for p in ps
        ]
        # Deterministic per platform; the slack only absorbs last-ulp BLAS
        # differences flipping a marginal candidate on another machine.
        for lo, hi in zip(recalls, recalls[1:]):
            assert hi >= lo - 0.05
        assert recalls[-1] >= recalls[0]
        assert recalls[-1] > 0.5

    def test_promips_candidates_grow_with_p(self, latent_small):
        data, queries = latent_small
        index = build_index(
            "promips(c=0.85, m=5, kp=3, n_key=10, ksp=4)", data, rng=7
        )
        candidates = [
            float(
                np.mean(
                    [index.search(q, k=10, p=p).stats.candidates for q in queries]
                )
            )
            for p in (0.1, 0.5, 0.9)
        ]
        assert candidates[0] < candidates[1] < candidates[2]

    def test_pq_recall_monotone_in_n_probe(self, latent_small, exact_topk):
        data, queries = latent_small
        recalls = []
        for n_probe in (1, 2, 4, 8):
            index = build_index(
                f"pq(n_coarse=8, n_centroids=16, min_local_train=32, "
                f"n_probe={n_probe})",
                data,
                rng=5,
            )
            recalls.append(self._mean_recall(index, data, queries, exact_topk))
        for lo, hi in zip(recalls, recalls[1:]):
            assert hi >= lo - 0.05
        assert recalls[-1] >= recalls[0]
        assert recalls[-1] > 0.9

    def test_simhash_recall_monotone_in_shortlist(self, latent_small, exact_topk):
        data, queries = latent_small
        recalls = []
        for shortlist in (2, 8, 32):
            index = build_index(f"simhash(n_bits=24, shortlist={shortlist})", data, rng=5)
            recalls.append(self._mean_recall(index, data, queries, exact_topk))
        for lo, hi in zip(recalls, recalls[1:]):
            assert hi >= lo - 0.05
        assert recalls[-1] >= recalls[0]


class TestDynamicMutationSoundness:
    """Interleaved insert/delete soundness for the mutable index: after any
    operation sequence, results only ever contain live ids, every returned
    score is the true inner product of the id it is attached to, and the
    compaction triggers keep both pressure sources (delta size, tombstone
    count) bounded — the degradation a delete-only workload used to
    accumulate forever."""

    SPEC = (
        "dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3, "
        "rebuild_threshold=0.2, compact_threshold=0.25)"
    )

    @given(
        ops=st.lists(st.integers(0, 99), min_size=1, max_size=40),
        seed=st.integers(0, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_interleaved_mutations_stay_sound(self, ops, seed):
        gen = np.random.default_rng(seed)
        dim = 8
        data = gen.standard_normal((30, dim))
        index = build_index(self.SPEC, data, rng=3)
        live = {i: data[i] for i in range(30)}
        vec_gen = np.random.default_rng(seed + 1000)
        query = gen.standard_normal(dim)

        for op in ops:
            if op % 3 == 0 and len(live) > 1:
                victim = sorted(live)[op % len(live)]
                index.delete(victim)
                del live[victim]
            else:
                vec = vec_gen.standard_normal(dim)
                live[index.insert(vec)] = vec
            assert index.n_live == len(live)

            result = index.search(query, k=5)
            returned = result.ids.tolist()
            assert len(returned) == min(5, len(live))
            assert set(returned) <= set(live)
            for pid, score in zip(returned, result.scores.tolist()):
                assert score == pytest.approx(
                    float(live[pid] @ query), rel=1e-9, abs=1e-9
                )
            # Bounded degradation: each mutation re-checks the thresholds,
            # so neither pressure source can exceed its ratio for long.
            base = index.indexed_points
            assert index.delta_size <= 0.2 * base + 1
            assert index.tombstone_count <= 0.25 * base + 1

        # The batch path agrees bit-for-bit in whatever state we ended in.
        queries = np.vstack([query, gen.standard_normal(dim)])
        batch = index.search_many(queries, k=5)
        for i, q in enumerate(queries):
            single = index.search(q, k=5)
            assert np.array_equal(batch[i].ids, single.ids)
            assert np.array_equal(batch[i].scores, single.scores)


class TestDuplicateTies:
    """Duplicate data vectors score identically and rank by ascending id."""

    @pytest.mark.parametrize(
        "spec", ["exact()", "sharded(inner='exact()', shards=4)"]
    )
    def test_duplicates_adjacent_and_id_ordered(self, spec):
        gen = np.random.default_rng(4)
        data = gen.standard_normal((120, 8))
        data[0] *= 40.0  # dominant direction, duplicated at scattered ids
        for dup in (17, 55, 119):
            data[dup] = data[0]
        index = build_index(spec, data, rng=2)
        result = index.search(data[0] / np.linalg.norm(data[0]), k=4)
        assert result.ids.tolist() == [0, 17, 55, 119]
        assert np.all(result.scores == result.scores[0])

    def test_every_exact_tie_group_is_id_sorted(self):
        gen = np.random.default_rng(9)
        base = gen.standard_normal((20, 6))
        data = np.vstack([base, base[::-1]])  # every vector duplicated
        index = build_index("exact()", data)
        query = gen.standard_normal(6)
        result = index.search(query, k=len(data))
        for score in np.unique(result.scores):
            group = result.ids[result.scores == score]
            assert np.array_equal(group, np.sort(group))
