"""Tests for repro.baselines.h2alsh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.h2alsh import H2ALSH

from conftest import exact_topk_reference


@pytest.fixture(scope="module")
def built(latent_medium):
    data, queries = latent_medium
    return data, queries, H2ALSH(data, rng=5, c=0.9)


class TestShellPartition:
    def test_shells_cover_dataset(self, built):
        data, _, index = built
        ids = np.concatenate([s.global_ids for s in index.shells])
        assert sorted(ids.tolist()) == list(range(len(data)))

    def test_shells_descending_max_norm(self, built):
        _, _, index = built
        maxima = [s.max_norm for s in index.shells]
        assert maxima == sorted(maxima, reverse=True)

    def test_shell_norm_ranges(self, built):
        data, _, index = built
        norms = np.linalg.norm(data, axis=1)
        for shell in index.shells:
            shell_norms = norms[shell.global_ids]
            assert shell_norms.max() <= shell.max_norm + 1e-9

    def test_min_shell_size_respected(self, built):
        _, _, index = built
        for shell in index.shells[:-1]:
            assert len(shell.global_ids) >= 16


class TestSearch:
    def test_quality(self, built):
        data, queries, index = built
        ratios = []
        for q in queries:
            _, exact_ips = exact_topk_reference(data, q, 10)
            result = index.search(q, k=10)
            ratios.append(float(np.mean(result.scores / exact_ips[: len(result.scores)])))
        assert float(np.mean(ratios)) >= 0.95

    def test_result_structure(self, built):
        data, queries, index = built
        result = index.search(queries[0], k=10)
        assert len(result) <= 10
        assert np.all(np.diff(result.scores) <= 1e-12)
        assert result.stats.pages > 0
        assert result.stats.candidates > 0

    def test_early_termination_probes_prefix(self, built):
        _, queries, index = built
        result = index.search(queries[1], k=5)
        assert 1 <= result.stats.extras["shells_probed"] <= index.n_shells

    def test_scores_are_true_inner_products(self, built):
        data, queries, index = built
        result = index.search(queries[2], k=5)
        assert np.allclose(result.scores, data[result.ids] @ queries[2])

    def test_rejects_bad_inputs(self, built):
        data, queries, index = built
        with pytest.raises(ValueError):
            index.search(queries[0], k=0)
        with pytest.raises(ValueError):
            index.search(np.ones(3), k=1)

    def test_index_size_reflects_hash_tables(self, built):
        data, _, index = built
        # Hash tables across shells: n entries of 8 bytes times n_hash — far
        # more than ProMIPS-style footprints (the paper's Fig. 4 story).
        assert index.index_size_bytes() >= len(data) * 8


class TestConstruction:
    def test_rejects_bad_params(self, latent_small):
        data, _ = latent_small
        with pytest.raises(ValueError):
            H2ALSH(data, c=1.5)
        with pytest.raises(ValueError):
            H2ALSH(data, c0=1.0)
        with pytest.raises(ValueError):
            H2ALSH(np.empty((0, 4)))

    def test_seed_reproducibility(self, latent_small):
        data, queries = latent_small
        a = H2ALSH(data, rng=3)
        b = H2ALSH(data, rng=3)
        ra, rb = a.search(queries[0], k=5), b.search(queries[0], k=5)
        assert np.array_equal(ra.ids, rb.ids)
