"""Tests for repro.core.persist — universal save/load of built indexes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.persist import inspect_index, load_index, save_index
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.spec import build_index

# One buildable spec per registered method (small, fast parameters).
METHOD_SPECS = {
    "promips": "promips(c=0.85, p=0.6, m=5, kp=3, n_key=10, ksp=4)",
    "dynamic": "dynamic(c=0.85, m=5, kp=3, n_key=10, ksp=4)",
    "h2alsh": "h2alsh(c=0.9)",
    "rangelsh": "rangelsh(c=0.9, n_parts=8)",
    "pq": "pq(n_coarse=4, n_centroids=16, min_local_train=64)",
    "exact": "exact()",
    "simhash": "simhash(n_bits=24)",
    "sharded": (
        "sharded(inner='promips(c=0.85, p=0.6, m=5, kp=3, n_key=10, ksp=4)',"
        " shards=3)"
    ),
}


@pytest.fixture(scope="module")
def saved(tmp_path_factory, latent_small):
    data, queries = latent_small
    index = ProMIPS.build(
        data, ProMIPSParams(m=5, kp=3, n_key=10, ksp=4, c=0.85, p=0.6), rng=7
    )
    path = save_index(index, tmp_path_factory.mktemp("idx") / "promips")
    return data, queries, index, path


class TestRoundtrip:
    def test_suffix_enforced(self, saved):
        *_, path = saved
        assert path.suffix == ".npz"
        assert path.exists()

    def test_identical_search_results(self, saved):
        data, queries, original, path = saved
        restored = load_index(path)
        for q in queries[:6]:
            a = original.search(q, k=10)
            b = restored.search(q, k=10)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.scores, b.scores)
            assert a.stats.pages == b.stats.pages
            assert a.stats.candidates == b.stats.candidates

    def test_params_restored(self, saved):
        *_, original, path = saved[1:]
        restored = load_index(path)
        assert restored.params == original.params
        assert restored.m == original.m

    def test_ring_geometry_restored(self, saved):
        data, _, original, path = saved
        restored = load_index(path)
        assert np.allclose(restored.ring.centers, original.ring.centers)
        assert restored.ring.epsilon == original.ring.epsilon
        assert restored.ring.C == original.ring.C
        assert restored.ring.n_subpartitions == original.ring.n_subpartitions
        assert np.array_equal(restored.ring.layout_order, original.ring.layout_order)

    def test_incremental_search_also_matches(self, saved):
        data, queries, original, path = saved
        restored = load_index(path)
        a = original.search_incremental(queries[0], k=5)
        b = restored.search_incremental(queries[0], k=5)
        assert np.array_equal(a.ids, b.ids)

    def test_rejects_future_format(self, saved, tmp_path):
        import json
        *_, path = saved
        blob = dict(np.load(path))
        meta = json.loads(bytes(blob["__meta__"].tobytes()).decode())
        meta["format_version"] = 999
        blob["__meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        bad = tmp_path / "bad.npz"
        np.savez_compressed(bad, **blob)
        with pytest.raises(ValueError):
            load_index(bad)

    def test_rejects_non_index_file(self, tmp_path):
        bad = tmp_path / "not_an_index.npz"
        np.savez_compressed(bad, xs=np.arange(3))
        with pytest.raises(ValueError):
            load_index(bad)


class TestUniversalRoundtrip:
    """Every registered method survives save/load with identical answers."""

    @pytest.fixture(scope="class")
    def workload(self, latent_small):
        data, queries = latent_small
        return data[:500], queries[:6]

    @pytest.mark.parametrize("method", sorted(METHOD_SPECS))
    def test_identical_search_and_batch(self, workload, tmp_path, method):
        data, queries = workload
        original = build_index(METHOD_SPECS[method], data, rng=5)
        path = save_index(original, tmp_path / method)
        restored = load_index(path)
        assert type(restored) is type(original)
        assert restored.spec() == original.spec()
        for q in queries:
            a = original.search(q, k=10)
            b = restored.search(q, k=10)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
            assert a.stats.pages == b.stats.pages
            assert a.stats.candidates == b.stats.candidates
        ba = original.search_many(queries, k=10)
        bb = restored.search_many(queries, k=10)
        assert np.array_equal(ba.ids, bb.ids)
        assert np.array_equal(ba.scores, bb.scores)

    def test_dynamic_state_stores_vectors_once(self, workload):
        data, _ = workload
        index = build_index(METHOD_SPECS["dynamic"], data, rng=5)
        state = index.state()
        # The inner index's data rows are a subset of `vectors`; storing
        # both would double the file's dominant payload.
        assert "promips_data" not in state
        assert state["vectors"].shape == data.shape

    def test_dynamic_roundtrip_preserves_mutations(self, workload, tmp_path):
        data, queries = workload
        index = build_index(METHOD_SPECS["dynamic"], data, rng=5)
        gen = np.random.default_rng(0)
        inserted = [index.insert(v) for v in gen.standard_normal((8, data.shape[1]))]
        index.delete(3)
        index.delete(inserted[0])
        restored = load_index(save_index(index, tmp_path / "dyn"))
        assert restored.n_live == index.n_live
        assert restored.delta_size == index.delta_size
        for q in queries:
            a, b = index.search(q, k=8), restored.search(q, k=8)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
        # The reloaded index keeps mutating from where it left off.
        new_id = restored.insert(queries[0])
        assert new_id == index._next_id
        with pytest.raises(KeyError):
            restored.delete(3)

    def test_dynamic_legacy_pre15_state_loads(self, workload):
        # 1.4 dynamic envelopes stored every vector positionally by external
        # id, had no row_external/next_id/reclaimed_bytes keys, and listed
        # deleted *delta* points in the tombstone set.  from_state must keep
        # accepting that layout (the envelope format version is unchanged).
        from repro.core.dynamic import DynamicProMIPS

        data, queries = workload
        index = build_index(METHOD_SPECS["dynamic"], data, rng=5)
        gen = np.random.default_rng(0)
        inserted = [index.insert(v) for v in gen.standard_normal((4, data.shape[1]))]
        index.delete(3)
        state = index.state()  # still positional: no compaction/orphans yet
        legacy = {
            k: v
            for k, v in state.items()
            if k not in ("row_external", "next_id", "reclaimed_bytes")
        }
        # Emulate a 1.4-style deleted delta point: tombstoned, out of delta,
        # its vector still stored positionally.
        legacy["tombstones"] = np.sort(
            np.append(state["tombstones"], inserted[1])
        ).astype(np.int64)
        legacy["delta_ids"] = np.array(
            [e for e in state["delta_ids"].tolist() if e != inserted[1]],
            dtype=np.int64,
        )
        restored = DynamicProMIPS.from_state(index.spec(), legacy)

        index.delete(inserted[1])  # the same mutation, current semantics
        assert restored.n_live == index.n_live
        assert restored.delta_size == index.delta_size
        assert restored.tombstone_count == index.tombstone_count
        assert restored._next_id == index._next_id
        for q in queries:
            a, b = index.search(q, k=8), restored.search(q, k=8)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
        assert inserted[1] not in restored.search(queries[0], k=50).ids
        with pytest.raises(KeyError):
            restored.delete(inserted[1])

    def test_inspect_index_envelope(self, workload, tmp_path):
        data, _ = workload
        index = build_index("exact(page_size=2048)", data)
        path = save_index(index, tmp_path / "idx", extra_meta={"note": "hello"})
        meta = inspect_index(path)
        assert meta["format_version"] == 2
        assert meta["method"] == "exact"
        assert meta["spec"] == {"method": "exact", "params": {"page_size": 2048}}
        assert meta["extras"] == {"note": "hello"}

    def test_unregistered_object_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_index(object(), tmp_path / "nope")


class TestLegacyFormatV1:
    def test_v1_promips_file_still_loads(self, latent_small, tmp_path):
        from dataclasses import asdict

        data, queries = latent_small
        index = ProMIPS.build(
            data[:400], ProMIPSParams(m=5, kp=3, n_key=10, ksp=4), rng=7
        )
        # Write the pre-registry, ProMIPS-only layout by hand.
        meta = {"format_version": 1, "params": asdict(index.params)}
        ring_state = {f"ring_{k}": v for k, v in index.ring.state().items()}
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            data=index._data,
            projection_matrix=index.projection.matrix,
            **ring_state,
        )
        restored = load_index(path)
        assert isinstance(restored, ProMIPS)
        assert restored.params == index.params
        for q in queries[:4]:
            a, b = index.search(q, k=5), restored.search(q, k=5)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
        assert inspect_index(path)["method"] == "promips"
