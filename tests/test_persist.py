"""Tests for repro.core.persist — save/load of a built index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.persist import load_index, save_index
from repro.core.promips import ProMIPS, ProMIPSParams


@pytest.fixture(scope="module")
def saved(tmp_path_factory, latent_small):
    data, queries = latent_small
    index = ProMIPS.build(
        data, ProMIPSParams(m=5, kp=3, n_key=10, ksp=4, c=0.85, p=0.6), rng=7
    )
    path = save_index(index, tmp_path_factory.mktemp("idx") / "promips")
    return data, queries, index, path


class TestRoundtrip:
    def test_suffix_enforced(self, saved):
        *_, path = saved
        assert path.suffix == ".npz"
        assert path.exists()

    def test_identical_search_results(self, saved):
        data, queries, original, path = saved
        restored = load_index(path)
        for q in queries[:6]:
            a = original.search(q, k=10)
            b = restored.search(q, k=10)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.scores, b.scores)
            assert a.stats.pages == b.stats.pages
            assert a.stats.candidates == b.stats.candidates

    def test_params_restored(self, saved):
        *_, original, path = saved[1:]
        restored = load_index(path)
        assert restored.params == original.params
        assert restored.m == original.m

    def test_ring_geometry_restored(self, saved):
        data, _, original, path = saved
        restored = load_index(path)
        assert np.allclose(restored.ring.centers, original.ring.centers)
        assert restored.ring.epsilon == original.ring.epsilon
        assert restored.ring.C == original.ring.C
        assert restored.ring.n_subpartitions == original.ring.n_subpartitions
        assert np.array_equal(restored.ring.layout_order, original.ring.layout_order)

    def test_incremental_search_also_matches(self, saved):
        data, queries, original, path = saved
        restored = load_index(path)
        a = original.search_incremental(queries[0], k=5)
        b = restored.search_incremental(queries[0], k=5)
        assert np.array_equal(a.ids, b.ids)

    def test_rejects_future_format(self, saved, tmp_path):
        import json
        *_, path = saved
        blob = dict(np.load(path))
        meta = json.loads(bytes(blob["meta"].tobytes()).decode())
        meta["format_version"] = 999
        blob["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        bad = tmp_path / "bad.npz"
        np.savez_compressed(bad, **blob)
        with pytest.raises(ValueError):
            load_index(bad)
