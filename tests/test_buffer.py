"""Tests for repro.storage.buffer — the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.storage.buffer import BufferPool


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert pool.access("f", 0) is False
        assert pool.access("f", 0) is True
        assert pool.hits == 1
        assert pool.misses == 1

    def test_capacity_eviction_lru(self):
        pool = BufferPool(2)
        pool.access("f", 0)
        pool.access("f", 1)
        pool.access("f", 2)  # evicts page 0
        assert pool.access("f", 0) is False  # was evicted
        assert len(pool) == 2

    def test_access_refreshes_recency(self):
        pool = BufferPool(2)
        pool.access("f", 0)
        pool.access("f", 1)
        pool.access("f", 0)  # refresh 0 → 1 is now LRU
        pool.access("f", 2)  # evicts 1
        assert pool.access("f", 0) is True
        assert pool.access("f", 1) is False

    def test_files_are_namespaced(self):
        pool = BufferPool(4)
        pool.access("a", 0)
        assert pool.access("b", 0) is False

    def test_reset_stats(self):
        pool = BufferPool(2)
        pool.access("f", 0)
        pool.access("f", 0)
        pool.reset_stats()
        assert pool.hits == 0
        assert pool.misses == 0
        # contents survive a stats reset
        assert pool.access("f", 0) is True

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)
