"""Tests for repro.index.bptree — structure, queries, cursors, accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bptree import BPlusTree
from repro.storage.pagefile import AccessCounter


def _tree_from_keys(keys, order=4):
    pairs = [(k, i) for i, k in enumerate(sorted(keys))]
    return BPlusTree.bulk_load(pairs, order=order), pairs


class TestBulkLoad:
    def test_empty_tree(self):
        tree = BPlusTree.bulk_load([], order=4)
        assert len(tree) == 0
        assert list(tree.range(-10, 10)) == []
        assert tree.search(0) == []

    def test_single_entry(self):
        tree = BPlusTree.bulk_load([(5, "a")], order=4)
        assert tree.search(5) == ["a"]
        assert tree.height == 1

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(2, 0), (1, 1)], order=4)

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(1, 0)], order=1)

    def test_items_in_key_order(self):
        keys = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        tree, pairs = _tree_from_keys(keys)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_height_grows_logarithmically(self):
        tree, _ = _tree_from_keys(range(1000), order=8)
        # 1000 entries / order 8 → 125 leaves → ceil(log8(125)) + 1 levels.
        assert 3 <= tree.height <= 4
        assert tree.n_nodes > 125

    def test_size_bytes(self):
        tree, _ = _tree_from_keys(range(100), order=8)
        assert tree.size_bytes(4096) == tree.n_nodes * 4096


class TestSearch:
    def test_point_lookup(self):
        tree, _ = _tree_from_keys(range(0, 100, 2), order=4)
        assert tree.search(40) == [20]  # value is the insertion index
        assert tree.search(41) == []

    def test_duplicate_keys(self):
        pairs = [(1, "a"), (2, "b"), (2, "c"), (2, "d"), (3, "e")]
        tree = BPlusTree.bulk_load(pairs, order=2)
        assert tree.search(2) == ["b", "c", "d"]

    def test_float_keys(self):
        pairs = [(0.5, 0), (1.25, 1), (2.75, 2)]
        tree = BPlusTree.bulk_load(pairs, order=4)
        assert tree.search(1.25) == [1]
        assert [v for _, v in tree.range(0.6, 2.8)] == [1, 2]


class TestRange:
    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=300),
        st.integers(min_value=-10, max_value=210),
        st.integers(min_value=-10, max_value=210),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_sorted_list_reference(self, keys, lo, hi):
        tree, pairs = _tree_from_keys(keys, order=4)
        expected = [(k, v) for k, v in pairs if lo <= k <= hi]
        assert list(tree.range(lo, hi)) == expected

    def test_inverted_range_is_empty(self):
        tree, _ = _tree_from_keys(range(10))
        assert list(tree.range(5, 3)) == []

    def test_full_range(self):
        tree, pairs = _tree_from_keys(range(50), order=4)
        assert list(tree.range(-100, 100)) == pairs


class TestPageAccounting:
    def test_range_counts_descent_plus_leaves(self):
        tree, _ = _tree_from_keys(range(256), order=4)
        counter = AccessCounter()
        list(tree.range(0, 255, counter=counter))
        # All 64 leaves plus the internal descent must be charged.
        assert counter.pages >= 64
        assert counter.pages <= tree.n_nodes + tree.height

    def test_narrow_range_is_cheap(self):
        tree, _ = _tree_from_keys(range(256), order=4)
        counter = AccessCounter()
        list(tree.range(10, 11, counter=counter))
        assert counter.pages <= tree.height + 2

    def test_counter_optional(self):
        tree, _ = _tree_from_keys(range(16))
        assert len(list(tree.range(0, 15))) == 16


class TestCursor:
    def test_cursor_walks_forward(self):
        tree, pairs = _tree_from_keys([1, 3, 5, 7, 9], order=2)
        cursor = tree.cursor_at(4)
        seen = []
        while cursor.valid:
            seen.append(cursor.key)
            cursor.advance()
        assert seen == [5, 7, 9]

    def test_cursor_walks_backward(self):
        tree, _ = _tree_from_keys([1, 3, 5, 7, 9], order=2)
        cursor = tree.cursor_at(6)
        assert cursor.key == 7
        cursor.retreat()
        assert cursor.key == 5
        cursor.retreat()
        assert cursor.key == 3

    def test_cursor_past_end(self):
        tree, _ = _tree_from_keys([1, 2, 3], order=2)
        cursor = tree.cursor_at(100)
        assert not cursor.valid
        # Walking back recovers the last entry.
        cursor.retreat()
        assert cursor.valid
        assert cursor.key == 3

    def test_cursor_value_access(self):
        tree = BPlusTree.bulk_load([(1, "x"), (2, "y")], order=4)
        cursor = tree.cursor_at(2)
        assert cursor.value == "y"

    def test_exhausted_cursor_raises(self):
        tree, _ = _tree_from_keys([1], order=2)
        cursor = tree.cursor_at(5)
        with pytest.raises(IndexError):
            _ = cursor.key

    def test_cursor_counts_leaf_pages(self):
        tree, _ = _tree_from_keys(range(64), order=4)
        counter = AccessCounter()
        cursor = tree.cursor_at(0, counter=counter)
        start_pages = counter.pages
        for _ in range(63):
            cursor.advance()
        # 16 leaves of 4 entries each → 15 transitions after the first.
        assert counter.pages - start_pages == 15


class TestLargeTreeInvariants:
    def test_random_workload(self):
        gen = np.random.default_rng(3)
        keys = gen.integers(0, 5000, size=4000).tolist()
        tree, pairs = _tree_from_keys(keys, order=32)
        assert len(tree) == 4000
        for lo, hi in [(0, 100), (2500, 2600), (4999, 5001), (-5, -1)]:
            expected = [(k, v) for k, v in pairs if lo <= k <= hi]
            assert list(tree.range(lo, hi)) == expected
