"""Edge-path coverage: small-dataset baselines, registry configs, and
accounting details not exercised elsewhere."""

from __future__ import annotations

import numpy as np

from repro.baselines.h2alsh import H2ALSH
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.data.datasets import load_dataset
from repro.eval.harness import default_registry
from repro.storage.buffer import BufferPool
from repro.storage.pagefile import VectorStore


class TestH2ALSHEdges:
    def test_tiny_dataset_single_shell(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((20, 6))
        index = H2ALSH(data, rng=1, min_shell_size=16)
        assert index.n_shells == 1
        result = index.search(data[0], k=5)
        assert len(result) == 5

    def test_uniform_norms_single_shell(self):
        gen = np.random.default_rng(1)
        data = gen.standard_normal((300, 8))
        data /= np.linalg.norm(data, axis=1, keepdims=True)  # all norms 1
        index = H2ALSH(data, rng=1)
        # c0=2 shells: everything fits in one norm interval.
        assert index.n_shells == 1

    def test_max_shells_cap(self):
        gen = np.random.default_rng(2)
        base = gen.standard_normal((400, 6))
        base /= np.linalg.norm(base, axis=1, keepdims=True)
        data = base * np.geomspace(1.0, 2.0**20, 400)[:, None]
        index = H2ALSH(data, rng=1, max_shells=4, min_shell_size=4)
        assert index.n_shells <= 4


class TestRegistryConfigs:
    def test_pq_scales_with_dataset(self):
        registry = default_registry()
        small = load_dataset("netflix", n=600, dim=16, n_queries=2)
        index = registry.build("PQ-Based", small, seed=1)
        # Coarse cells and codebook sizes must be clipped to sane ranges.
        assert 8 <= index.n_coarse <= 128
        result = index.search(small.queries[0], k=5)
        assert len(result) == 5

    def test_promips_params_override(self):
        from repro.eval.harness import default_registry as build_registry

        registry = build_registry(
            c=0.8, p=0.7, promips_params=ProMIPSParams(c=0.8, p=0.7, m=4)
        )
        small = load_dataset("netflix", n=500, dim=16, n_queries=2)
        index = registry.build("ProMIPS", small, seed=1)
        assert index.params.c == 0.8
        assert index.m == 4


class TestWarmCacheAccounting:
    def test_buffer_pool_reduces_disk_reads_across_queries(self):
        gen = np.random.default_rng(3)
        store = VectorStore(gen.standard_normal((64, 8)), page_size=128)
        pool = BufferPool(capacity_pages=1024)

        first = store.reader(buffer=pool)
        first.get_many(np.arange(32))
        assert first.disk_reads == first.pages_touched  # cold

        second = store.reader(buffer=pool)
        second.get_many(np.arange(32))
        assert second.pages_touched > 0
        assert second.disk_reads == 0  # fully warm

    def test_cold_reader_equivalence(self):
        gen = np.random.default_rng(4)
        store = VectorStore(gen.standard_normal((16, 8)), page_size=128)
        reader = store.reader()
        reader.get(0)
        assert reader.disk_reads == reader.pages_touched


class TestIncrementalSearchAccounting:
    def test_incremental_pages_at_least_range_search(self, latent_small):
        """Algorithm 1 re-scans growing ranges, so its page count must not
        beat Algorithm 3's single pass (the Quick-Probe motivation)."""
        data, queries = latent_small
        index = ProMIPS.build(data, ProMIPSParams(m=5, kp=3, n_key=10, ksp=4), rng=1)
        worse = 0
        for q in queries[:8]:
            quick = index.search(q, k=5).stats.pages
            incremental = index.search_incremental(q, k=5).stats.pages
            worse += int(incremental >= quick)
        assert worse >= 5  # holds for the clear majority of queries
