"""Tests for repro.eval.ground_truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.ground_truth import GroundTruth

from conftest import exact_topk_reference


class TestGroundTruth:
    @pytest.fixture(scope="class")
    def setup(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((700, 9))
        queries = gen.standard_normal((12, 9))
        return data, queries, GroundTruth(data, queries, k_max=50)

    def test_matches_brute_force(self, setup):
        data, queries, gt = setup
        for qi in range(len(queries)):
            for k in (1, 10, 50):
                ids, ips = gt.topk(qi, k)
                ref_ids, ref_ips = exact_topk_reference(data, queries[qi], k)
                assert np.allclose(ips, ref_ips)
                assert np.array_equal(ids, ref_ids)

    def test_blocked_equals_unblocked(self):
        gen = np.random.default_rng(1)
        data = gen.standard_normal((500, 5))
        queries = gen.standard_normal((4, 5))
        small_block = GroundTruth(data, queries, k_max=20, block=64)
        big_block = GroundTruth(data, queries, k_max=20, block=10**6)
        for qi in range(4):
            a_ids, a_ips = small_block.topk(qi, 20)
            b_ids, b_ips = big_block.topk(qi, 20)
            assert np.array_equal(a_ids, b_ids)
            assert np.allclose(a_ips, b_ips)

    def test_prefix_consistency(self, setup):
        _, _, gt = setup
        ids50, _ = gt.topk(0, 50)
        ids10, _ = gt.topk(0, 10)
        assert np.array_equal(ids50[:10], ids10)

    def test_k_max_capped_at_n(self):
        gen = np.random.default_rng(2)
        gt = GroundTruth(gen.standard_normal((8, 3)), gen.standard_normal((2, 3)), k_max=100)
        assert gt.k_max == 8

    def test_rejects_bad_requests(self, setup):
        _, _, gt = setup
        with pytest.raises(IndexError):
            gt.topk(99, 5)
        with pytest.raises(ValueError):
            gt.topk(0, 0)
        with pytest.raises(ValueError):
            gt.topk(0, 51)

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            GroundTruth(np.ones((5, 3)), np.ones((2, 4)))
