"""Tests for repro.core.conditions — Theorems 1/2 and the compensation radius."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.conditions import (
    compensation_radius,
    condition_a_holds,
    condition_b_holds,
    guarantee_denominator,
)
from repro.stats.chi2 import ChiSquare


class TestConditionA:
    def test_fires_exactly_at_formula_one(self):
        # ‖oM‖² + ‖q‖² − 2·ip/c ≤ 0  ⇔  ip ≥ c(‖oM‖²+‖q‖²)/2
        max_norm_sq, q_norm_sq, c = 9.0, 4.0, 0.9
        threshold = 0.5 * c * (max_norm_sq + q_norm_sq)
        assert condition_a_holds(max_norm_sq, q_norm_sq, threshold + 1e-9, c)
        assert not condition_a_holds(max_norm_sq, q_norm_sq, threshold - 1e-6, c)

    def test_theorem1_guarantee_on_real_data(self):
        """Whenever Condition A holds for a candidate's ip, that candidate is
        itself a c-AMIP answer (the constructive content of Theorem 1)."""
        gen = np.random.default_rng(0)
        data = gen.standard_normal((500, 8))
        norms_sq = (data**2).sum(axis=1)
        max_norm_sq = norms_sq.max()
        c = 0.8
        for _ in range(50):
            q = gen.standard_normal(8)
            ips = data @ q
            best = ips.max()
            q_norm_sq = float(q @ q)
            for ip in ips[gen.choice(500, 30)]:
                if condition_a_holds(max_norm_sq, q_norm_sq, float(ip), c):
                    assert ip >= c * best - 1e-9

    def test_no_candidate_never_fires(self):
        assert not condition_a_holds(1.0, 1.0, -math.inf, 0.9)

    def test_rejects_bad_c(self):
        for c in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                condition_a_holds(1.0, 1.0, 1.0, c)


class TestDenominator:
    def test_formula(self):
        assert guarantee_denominator(9.0, 4.0, 2.0, 0.8) == pytest.approx(
            9.0 + 4.0 - 2.0 * 2.0 / 0.8
        )

    def test_infinite_without_candidate(self):
        assert math.isinf(guarantee_denominator(9.0, 4.0, -math.inf, 0.9))

    def test_negative_when_condition_a_would_fire(self):
        assert guarantee_denominator(1.0, 1.0, 10.0, 0.9) < 0

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            guarantee_denominator(1.0, 1.0, 1.0, 1.5)


class TestConditionB:
    def test_matches_cdf_threshold(self):
        chi2 = ChiSquare(6)
        denom = 10.0
        p = 0.5
        boundary = chi2.ppf(p) * denom
        assert condition_b_holds(boundary * 1.001, denom, chi2, p)
        assert not condition_b_holds(boundary * 0.999, denom, chi2, p)

    def test_true_when_denominator_non_positive(self):
        chi2 = ChiSquare(4)
        assert condition_b_holds(0.0, -1.0, chi2, 0.5)
        assert condition_b_holds(0.0, 0.0, chi2, 0.5)

    def test_false_with_infinite_denominator(self):
        chi2 = ChiSquare(4)
        assert not condition_b_holds(1e9, math.inf, chi2, 0.5)

    def test_monotone_in_p(self):
        chi2 = ChiSquare(5)
        # Larger p demands a larger projected distance before stopping.
        dist_sq, denom = 20.0, 6.0
        fired = [condition_b_holds(dist_sq, denom, chi2, p) for p in (0.3, 0.5, 0.7, 0.9)]
        # Once False at some p, it must stay False for larger p.
        seen_false = False
        for f in fired:
            if not f:
                seen_false = True
            if seen_false:
                assert not f

    def test_rejects_bad_arguments(self):
        chi2 = ChiSquare(5)
        with pytest.raises(ValueError):
            condition_b_holds(1.0, 1.0, chi2, 0.0)
        with pytest.raises(ValueError):
            condition_b_holds(-1.0, 1.0, chi2, 0.5)


class TestCompensationRadius:
    def test_formula(self):
        chi2 = ChiSquare(6)
        denom = 8.0
        r = compensation_radius(denom, chi2, 0.5)
        assert r == pytest.approx(math.sqrt(chi2.ppf(0.5) * denom))

    def test_zero_for_non_positive_denominator(self):
        chi2 = ChiSquare(6)
        assert compensation_radius(-1.0, chi2, 0.5) == 0.0
        assert compensation_radius(0.0, chi2, 0.5) == 0.0

    def test_satisfies_condition_b_at_radius(self):
        chi2 = ChiSquare(7)
        denom = 12.0
        for p in (0.3, 0.5, 0.9):
            r = compensation_radius(denom, chi2, p)
            assert condition_b_holds(r * r * (1 + 1e-9), denom, chi2, p)

    def test_grows_with_p(self):
        chi2 = ChiSquare(5)
        radii = [compensation_radius(5.0, chi2, p) for p in (0.3, 0.5, 0.7, 0.9)]
        assert radii == sorted(radii)

    def test_rejects_infinite_denominator(self):
        with pytest.raises(ValueError):
            compensation_radius(math.inf, ChiSquare(4), 0.5)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            compensation_radius(1.0, ChiSquare(4), 1.0)
