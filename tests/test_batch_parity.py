"""Batch/single parity: ``search_many(Q, k)`` must be *bit-identical* to
looping ``search(q, k)`` for every index with a native batch path.

This is the contract the engine's shape-stable GEMMs exist to uphold (see
``repro.core.engine``): not approximately equal — ``np.array_equal`` on ids
and scores, and matching per-query page/candidate accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BatchResult, SearchStats
from repro.baselines.exact import ExactMIPS
from repro.baselines.h2alsh import H2ALSH
from repro.baselines.pq import PQBasedMIPS
from repro.baselines.rangelsh import RangeLSH
from repro.baselines.simhash import SimHashMIPS
from repro.core.batch import has_native_batch, search_batch, search_many
from repro.core.dynamic import DynamicProMIPS
from repro.core.promips import ProMIPS, ProMIPSParams


def assert_batch_matches_loop(index, queries, k, **kwargs):
    batch = index.search_many(queries, k=k, **kwargs)
    assert len(batch) == len(queries)
    for i, query in enumerate(queries):
        single = index.search(query, k=k, **kwargs)
        assert np.array_equal(single.ids, batch[i].ids), f"ids differ at query {i}"
        assert np.array_equal(single.scores, batch[i].scores), (
            f"scores differ at query {i}"
        )
        assert single.stats.pages == batch.stats[i].pages
        assert single.stats.candidates == batch.stats[i].candidates


@pytest.fixture(scope="module")
def workload(latent_small):
    data, queries = latent_small
    return data, queries[:8]


@pytest.fixture(scope="module")
def native_indexes(workload):
    data, _ = workload
    return {
        "promips": ProMIPS.build(
            data, ProMIPSParams(m=5, kp=3, n_key=10, ksp=4), rng=1
        ),
        "exact": ExactMIPS(data),
        "pq": PQBasedMIPS(
            data, rng=3, n_coarse=12, n_centroids=32, min_local_train=64
        ),
        "simhash": SimHashMIPS(data, rng=3),
    }


class TestNativeParity:
    @pytest.mark.parametrize("name", ["promips", "exact", "pq", "simhash"])
    def test_bit_identical_to_loop(self, native_indexes, workload, name):
        _, queries = workload
        index = native_indexes[name]
        assert has_native_batch(index)
        assert_batch_matches_loop(index, queries, k=7)

    @pytest.mark.parametrize("name", ["promips", "exact", "pq", "simhash"])
    def test_single_row_batch(self, native_indexes, workload, name):
        _, queries = workload
        assert_batch_matches_loop(native_indexes[name], queries[:1], k=5)

    @pytest.mark.parametrize("name", ["promips", "exact", "pq", "simhash"])
    def test_duplicate_queries_get_identical_rows(
        self, native_indexes, workload, name
    ):
        _, queries = workload
        dup = np.vstack([queries[0], queries[0], queries[1]])
        batch = native_indexes[name].search_many(dup, k=6)
        assert np.array_equal(batch.ids[0], batch.ids[1])
        assert np.array_equal(batch.scores[0], batch.scores[1])

    @pytest.mark.parametrize("name", ["promips", "exact", "pq", "simhash"])
    def test_k_larger_than_n(self, workload, name):
        data, queries = workload
        small = data[:6]
        builders = {
            "promips": lambda: ProMIPS.build(
                small, ProMIPSParams(m=3, kp=2, n_key=4, ksp=2), rng=1
            ),
            "exact": lambda: ExactMIPS(small),
            "pq": lambda: PQBasedMIPS(
                small, rng=3, n_coarse=2, n_centroids=4, min_local_train=1000
            ),
            "simhash": lambda: SimHashMIPS(small, rng=3),
        }
        index = builders[name]()
        batch = index.search_many(queries[:3], k=50)
        assert batch.ids.shape[1] == 6
        assert_batch_matches_loop(index, queries[:3], k=50)

    def test_wide_batches_on_hostile_shapes(self):
        """Regression: raw variable-width GEMMs diverge from the single-query
        product on shapes like 512×64 once the batch grows past the BLAS
        kernel switch-over; the engine's fixed panels must not."""
        gen = np.random.default_rng(17)
        data = gen.standard_normal((512, 64))
        queries = gen.standard_normal((300, 64))
        exact = ExactMIPS(data)
        batch = exact.search_many(queries, k=5)
        for i in range(0, 300, 23):
            single = exact.search(queries[i], k=5)
            assert np.array_equal(single.ids, batch[i].ids)
            assert np.array_equal(single.scores, batch[i].scores)

        simhash = SimHashMIPS(gen.standard_normal((900, 48)), rng=3)
        q48 = gen.standard_normal((300, 48))
        sbatch = simhash.search_many(q48, k=5)
        for i in range(0, 300, 23):
            single = simhash.search(q48[i], k=5)
            assert np.array_equal(single.ids, sbatch[i].ids)
            assert np.array_equal(single.scores, sbatch[i].scores)

    def test_promips_forwards_c_and_p(self, native_indexes, workload):
        _, queries = workload
        assert_batch_matches_loop(
            native_indexes["promips"], queries[:4], k=5, c=0.8, p=0.7
        )

    def test_rejects_bad_batches(self, native_indexes):
        index = native_indexes["exact"]
        with pytest.raises(ValueError):
            index.search_many(np.ones((2, 24)), k=0)
        with pytest.raises(ValueError):
            index.search_many(np.ones((2, 10)), k=3)

    def test_empty_batch_is_uniformly_empty(self, native_indexes):
        for name, index in native_indexes.items():
            batch = index.search_many(np.empty((0, index.dim)), k=3)
            assert batch.ids.shape == (0, 0), name
            assert batch.scores.shape == (0, 0), name
            assert batch.stats == [], name


class TestFallbackParity:
    def test_h2alsh_fallback(self, workload):
        data, queries = workload
        index = H2ALSH(data[:600], rng=3)
        assert not has_native_batch(index)
        assert_batch_matches_loop(index, queries[:3], k=5)

    def test_rangelsh_fallback(self, workload):
        data, queries = workload
        index = RangeLSH(data, rng=3)
        assert not has_native_batch(index)
        assert_batch_matches_loop(index, queries[:4], k=5)

    def test_dynamic_is_native_and_bit_identical(self, workload):
        # Dynamic grew a native batch path (one-GEMM delta scan + vectorized
        # tombstone-masked merge); parity must survive every mutable state:
        # delta-only, tombstones-only, and both at once.
        data, queries = workload
        index = DynamicProMIPS(
            data[:500], ProMIPSParams(m=5, kp=3, n_key=10, ksp=4), rng=1
        )
        assert has_native_batch(index)
        index.insert(data[900])
        assert_batch_matches_loop(index, queries[:3], k=5)
        index.delete(7)
        index.delete(300)
        assert_batch_matches_loop(index, queries[:3], k=5)
        for row in data[901:905]:
            index.insert(row)
        assert_batch_matches_loop(index, queries[:4], k=6)

    def test_threaded_fanout_matches_sequential(self, workload):
        data, queries = workload
        index = RangeLSH(data, rng=3)
        seq, _ = search_batch(index, queries, k=5)
        par, _ = search_batch(index, queries, k=5, n_threads=4)
        for a, b in zip(seq, par):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)


class TestBatchResult:
    def test_from_results_pads_ragged_rows(self):
        from repro.api import SearchResult

        long = SearchResult(ids=[3, 1, 2], scores=[9.0, 8.0, 7.0], stats=SearchStats())
        short = SearchResult(ids=[5], scores=[4.0], stats=SearchStats())
        batch = BatchResult.from_results([long, short])
        assert batch.ids.shape == (2, 3)
        assert batch.ids[1, 1] == BatchResult.PAD_ID
        assert np.isneginf(batch.scores[1, 1])
        # Indexing strips the padding again.
        assert len(batch[1]) == 1
        assert batch[1].ids.tolist() == [5]

    def test_iteration_yields_search_results(self):
        from repro.api import SearchResult

        results = [
            SearchResult(ids=[i], scores=[float(i)], stats=SearchStats())
            for i in range(3)
        ]
        batch = BatchResult.from_results(results)
        assert [r.ids[0] for r in batch] == [0, 1, 2]

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            BatchResult(
                ids=np.zeros((2, 3)), scores=np.zeros((2, 2)),
                stats=[SearchStats(), SearchStats()],
            )
        with pytest.raises(ValueError):
            BatchResult(
                ids=np.zeros((2, 3)), scores=np.zeros((2, 3)), stats=[SearchStats()]
            )

    def test_search_many_helper_routes_native_and_fallback(self, workload):
        data, queries = workload
        exact = ExactMIPS(data)
        lsh = RangeLSH(data, rng=3)
        assert isinstance(search_many(exact, queries, k=3), BatchResult)
        assert isinstance(search_many(lsh, queries[:2], k=3), BatchResult)
