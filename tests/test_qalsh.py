"""Tests for repro.baselines.qalsh — the query-aware LSH substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.qalsh import (
    QALSH,
    derive_qalsh_params,
    qalsh_collision_probability,
)
from repro.storage.pagefile import VectorStore


class TestCollisionProbability:
    def test_decreases_with_distance(self):
        w = 2.7
        probs = [qalsh_collision_probability(w, x) for x in (0.5, 1.0, 2.0, 4.0)]
        assert probs == sorted(probs, reverse=True)

    def test_bounds(self):
        assert qalsh_collision_probability(2.7, 1e-9) <= 1.0
        assert qalsh_collision_probability(2.7, 0.0) == 1.0
        assert qalsh_collision_probability(2.7, 1e9) == pytest.approx(0.0, abs=1e-6)


class TestDeriveParams:
    def test_sane_defaults(self):
        params = derive_qalsh_params(10000)
        assert params.c == 2.0
        assert params.w > 0
        assert 4 <= params.n_hash <= 120
        assert 1 <= params.threshold <= params.n_hash

    def test_p1_exceeds_p2(self):
        params = derive_qalsh_params(5000, c=2.0)
        p1 = qalsh_collision_probability(params.w, 1.0)
        p2 = qalsh_collision_probability(params.w, params.c)
        assert p1 > p2

    def test_beta_defaults_to_100_over_n(self):
        assert derive_qalsh_params(400).beta == pytest.approx(0.25)
        assert derive_qalsh_params(50).beta == 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            derive_qalsh_params(0)
        with pytest.raises(ValueError):
            derive_qalsh_params(100, c=1.0)


class TestQALSHSearch:
    @pytest.fixture(scope="class")
    def setup(self):
        gen = np.random.default_rng(17)
        # Clustered Euclidean data: QALSH must find near neighbours.
        centers = gen.standard_normal((10, 12)) * 8
        points = centers[gen.integers(10, size=1200)] + gen.standard_normal((1200, 12))
        index = QALSH(points, np.random.default_rng(18))
        return points, index

    def test_finds_near_neighbours(self, setup):
        points, index = setup
        gen = np.random.default_rng(19)
        recalls = []
        for qi in gen.choice(len(points), 15, replace=False):
            q = points[qi]
            brute = np.linalg.norm(points - q, axis=1)
            exact = set(np.argsort(brute)[:10].tolist())
            ids, dists, _ = index.search(q, k=10)
            recalls.append(len(exact & set(ids.tolist())) / 10)
        assert float(np.mean(recalls)) >= 0.6

    def test_returned_distances_are_exact(self, setup):
        points, index = setup
        q = points[3]
        ids, dists, _ = index.search(q, k=5)
        for pid, dist in zip(ids, dists):
            assert dist == pytest.approx(float(np.linalg.norm(points[pid] - q)), abs=1e-9)

    def test_distances_sorted(self, setup):
        points, index = setup
        _, dists, _ = index.search(points[0], k=8)
        assert np.all(np.diff(dists) >= 0)

    def test_respects_budget_roughly(self, setup):
        points, index = setup
        _, _, verified = index.search(points[5], k=5)
        budget = int(index.params.beta * index.n) + 5 - 1
        # One extra round may overshoot, but not unboundedly.
        assert verified <= budget + index.n // 2

    def test_page_accounting(self, setup):
        points, index = setup
        store = VectorStore(points, page_size=512)
        reader = store.reader()
        index_pages = [0]
        index.search(points[0], k=5, reader=reader, index_pages=index_pages)
        assert index_pages[0] >= index.params.n_hash * index.tree_height
        assert reader.pages_touched > 0

    def test_index_size(self, setup):
        points, index = setup
        expected_tables = index.params.n_hash * len(points) * 8
        assert index.index_size_bytes() >= expected_tables

    def test_rejects_bad_inputs(self, setup):
        _, index = setup
        with pytest.raises(ValueError):
            index.search(np.zeros(12), k=0)
        with pytest.raises(ValueError):
            index.search(np.zeros(5), k=1)
        with pytest.raises(ValueError):
            QALSH(np.empty((0, 3)), np.random.default_rng(0))

    def test_k_capped_at_n(self):
        gen = np.random.default_rng(20)
        points = gen.standard_normal((30, 6))
        index = QALSH(points, gen)
        ids, _, _ = index.search(points[0], k=100)
        assert len(ids) <= 30
