"""Tests for repro.baselines.transforms — QNF and Simple-LSH reductions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.transforms import (
    qnf_distance_to_ip,
    qnf_transform_data,
    qnf_transform_query,
    simple_lsh_transform_data,
    simple_lsh_transform_query,
)


class TestQNF:
    def test_transformed_points_have_norm_m(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((50, 6))
        transformed, max_norm = qnf_transform_data(data)
        norms = np.linalg.norm(transformed, axis=1)
        assert np.allclose(norms, max_norm)

    def test_query_has_norm_m_and_zero_tail(self):
        q = np.array([3.0, 4.0])
        qt = qnf_transform_query(q, 10.0)
        assert qt[-1] == 0.0
        assert np.linalg.norm(qt) == pytest.approx(10.0)

    def test_distance_identity(self):
        """dis²(õ, q̃) = 2M² − 2(M/‖q‖)·⟨o, q⟩ — the exactness of QNF."""
        gen = np.random.default_rng(1)
        data = gen.standard_normal((30, 5))
        q = gen.standard_normal(5)
        transformed, max_norm = qnf_transform_data(data)
        qt = qnf_transform_query(q, max_norm)
        q_norm = np.linalg.norm(q)
        for i in range(30):
            dist_sq = float(((transformed[i] - qt) ** 2).sum())
            expected = 2 * max_norm**2 - 2 * (max_norm / q_norm) * float(data[i] @ q)
            assert dist_sq == pytest.approx(expected, rel=1e-9)

    def test_nn_order_is_mip_order(self):
        gen = np.random.default_rng(2)
        data = gen.standard_normal((100, 4))
        q = gen.standard_normal(4)
        transformed, max_norm = qnf_transform_data(data)
        qt = qnf_transform_query(q, max_norm)
        dists = np.linalg.norm(transformed - qt, axis=1)
        ips = data @ q
        assert np.array_equal(np.argsort(dists), np.argsort(-ips))

    @given(
        arrays(np.float64, (10, 4), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=60, deadline=None)
    def test_inversion_roundtrip(self, data):
        q = np.array([1.0, -2.0, 0.5, 3.0])
        transformed, max_norm = qnf_transform_data(data)
        qt = qnf_transform_query(q, max_norm)
        q_norm = float(np.linalg.norm(q))
        for i in range(len(data)):
            dist_sq = float(((transformed[i] - qt) ** 2).sum())
            ip = qnf_distance_to_ip(dist_sq, max_norm, q_norm)
            assert ip == pytest.approx(float(data[i] @ q), abs=1e-6 * max(1.0, max_norm**2))

    def test_rejects_max_norm_below_data(self):
        data = np.ones((3, 2)) * 10
        with pytest.raises(ValueError):
            qnf_transform_data(data, max_norm=1.0)

    def test_zero_query(self):
        qt = qnf_transform_query(np.zeros(3), 5.0)
        assert np.allclose(qt, 0.0)

    def test_zero_dataset(self):
        transformed, max_norm = qnf_transform_data(np.zeros((4, 3)))
        assert transformed.shape == (4, 4)
        assert np.all(np.isfinite(transformed))


class TestSimpleLSH:
    def test_unit_norms(self):
        gen = np.random.default_rng(3)
        data = gen.standard_normal((40, 5))
        transformed, scale = simple_lsh_transform_data(data)
        assert np.allclose(np.linalg.norm(transformed, axis=1), 1.0)
        assert scale == pytest.approx(np.linalg.norm(data, axis=1).max())

    def test_query_unit_norm(self):
        qt = simple_lsh_transform_query(np.array([3.0, 4.0]))
        assert np.linalg.norm(qt) == pytest.approx(1.0)
        assert qt[-1] == 0.0

    def test_cosine_identity(self):
        """cos(x̃, q̃) = ⟨x, q⟩ / (U·‖q‖) — MCS order is MIP order."""
        gen = np.random.default_rng(4)
        data = gen.standard_normal((25, 6))
        q = gen.standard_normal(6)
        transformed, scale = simple_lsh_transform_data(data)
        qt = simple_lsh_transform_query(q)
        q_norm = np.linalg.norm(q)
        for i in range(25):
            cos = float(transformed[i] @ qt)
            assert cos == pytest.approx(float(data[i] @ q) / (scale * q_norm), rel=1e-9)

    def test_local_scale_reduces_cap_compression(self):
        """Smaller (local) U spreads points further from the pole — the
        Range-LSH rationale for norm-ranged subsets."""
        gen = np.random.default_rng(5)
        small = gen.standard_normal((20, 4)) * 0.1
        t_global, _ = simple_lsh_transform_data(small, scale=100.0)
        t_local, _ = simple_lsh_transform_data(small)
        # Under the huge global scale, the appended coordinate hogs the norm.
        assert t_global[:, -1].min() > t_local[:, -1].min()

    def test_rejects_scale_below_data(self):
        with pytest.raises(ValueError):
            simple_lsh_transform_data(np.ones((3, 2)) * 10, scale=0.5)
