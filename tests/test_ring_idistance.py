"""Tests for repro.index.ring_idistance — the paper's §VI partition pattern."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.ring_idistance import RingIDistance
from repro.storage.pagefile import AccessCounter, VectorStore


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(21).standard_normal((1500, 5))


@pytest.fixture(scope="module")
def ring(points):
    return RingIDistance(
        points, kp=4, n_key=12, ksp=4, rng=np.random.default_rng(22)
    )


class TestBuild:
    def test_layout_is_permutation(self, ring, points):
        assert sorted(ring.layout_order.tolist()) == list(range(len(points)))

    def test_subpartitions_cover_all_points(self, ring, points):
        members = np.concatenate([sp.member_ids for sp in ring.subpartitions])
        assert sorted(members.tolist()) == list(range(len(points)))

    def test_subpartition_radii_cover_members(self, ring, points):
        for sp in ring.subpartitions:
            dists = np.linalg.norm(points[sp.member_ids] - sp.pivot, axis=1)
            assert dists.max() <= sp.radius + 1e-9

    def test_keys_follow_formula6(self, ring, points):
        # Every member's key must equal ⌊i·C + dis(p, O_i)/ε⌋ for its
        # partition i — reconstruct from the stored geometry.
        for sp in ring.subpartitions[:20]:
            part = sp.key // ring.C
            ring_idx = sp.key - part * ring.C
            dists = np.linalg.norm(points[sp.member_ids] - ring.centers[part], axis=1)
            assert np.all((dists / ring.epsilon).astype(int) == ring_idx)

    def test_epsilon_override(self, points):
        custom = RingIDistance(
            points, kp=3, n_key=10, ksp=3, rng=np.random.default_rng(1), epsilon=0.5
        )
        assert custom.epsilon == 0.5

    def test_rejects_bad_epsilon(self, points):
        with pytest.raises(ValueError):
            RingIDistance(points, 3, 10, 3, np.random.default_rng(1), epsilon=-1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RingIDistance(np.empty((0, 4)), 3, 10, 3, np.random.default_rng(1))

    def test_rejects_bad_nkey(self, points):
        with pytest.raises(ValueError):
            RingIDistance(points, 3, 0, 3, np.random.default_rng(1))

    def test_selectivity_in_unit_interval(self, ring):
        assert 0.0 < ring.selectivity() < 1.0

    def test_index_size_positive(self, ring):
        assert ring.index_size_bytes(4096) > 0


class TestRangeSearch:
    @pytest.mark.parametrize("radius", [0.4, 1.0, 2.5, 5.0])
    def test_matches_brute_force(self, ring, points, radius):
        query = np.random.default_rng(int(radius * 7)).standard_normal(5)
        ids, dists = ring.range_search(query, radius)
        brute = np.linalg.norm(points - query, axis=1)
        expected = set(np.flatnonzero(brute <= radius).tolist())
        assert set(ids.tolist()) == expected

    def test_results_sorted_by_distance(self, ring):
        query = np.random.default_rng(5).standard_normal(5)
        _, dists = ring.range_search(query, 3.0)
        assert np.all(np.diff(dists) >= 0)

    def test_annulus_excludes_inner_ball(self, ring, points):
        query = np.random.default_rng(6).standard_normal(5)
        ids, dists = ring.range_search(query, 3.0, min_radius=1.5)
        brute = np.linalg.norm(points - query, axis=1)
        expected = set(np.flatnonzero((brute <= 3.0) & (brute > 1.5)).tolist())
        assert set(ids.tolist()) == expected
        assert np.all(dists > 1.5)

    def test_rejects_negative_radius(self, ring):
        with pytest.raises(ValueError):
            ring.range_search(np.zeros(5), -0.1)

    def test_counts_tree_and_data_pages(self, ring, points):
        counter = AccessCounter()
        store = VectorStore(points, page_size=256, layout_order=ring.layout_order)
        reader = store.reader()
        ring.range_search(np.zeros(5), 2.0, tree_counter=counter, reader=reader)
        assert counter.pages > 0
        assert reader.pages_touched > 0

    def test_subpartition_layout_gives_sequential_reads(self, ring, points):
        """Points of one sub-partition must occupy contiguous slots, the
        §VI property that turns candidate fetches into sequential I/O."""
        slot_of = np.empty(len(points), dtype=int)
        slot_of[ring.layout_order] = np.arange(len(points))
        for sp in ring.subpartitions[:30]:
            slots = np.sort(slot_of[sp.member_ids])
            assert np.array_equal(slots, np.arange(slots[0], slots[0] + len(slots)))


class TestKnnIterate:
    def test_yields_in_nondecreasing_distance_order(self, ring):
        query = np.random.default_rng(8).standard_normal(5)
        dists = [d for _, d in zip_take(ring.knn_iterate(query), 200)]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))

    def test_first_yield_is_nearest(self, ring, points):
        query = np.random.default_rng(9).standard_normal(5)
        pid, dist = next(iter(ring.knn_iterate(query)))
        brute = np.linalg.norm(points - query, axis=1)
        assert dist == pytest.approx(brute.min(), abs=1e-9)

    def test_exhausts_whole_dataset(self, points):
        small = RingIDistance(
            points[:120], kp=3, n_key=6, ksp=3, rng=np.random.default_rng(3)
        )
        query = np.random.default_rng(10).standard_normal(5)
        seen = [pid for pid, _ in small.knn_iterate(query)]
        assert sorted(seen) == list(range(120))


def zip_take(iterator, n):
    out = []
    for item in iterator:
        out.append(item)
        if len(out) >= n:
            break
    return out
