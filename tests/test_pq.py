"""Tests for repro.baselines.pq — PQ, OPQ, and the PQ-based MIPS baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pq import PQBasedMIPS, ProductQuantizer, train_opq_rotation

from conftest import exact_topk_reference


class TestProductQuantizer:
    @pytest.fixture(scope="class")
    def fitted(self):
        gen = np.random.default_rng(0)
        train = gen.standard_normal((800, 16))
        pq = ProductQuantizer(16, 4, 32).fit(train, np.random.default_rng(1))
        return train, pq

    def test_encode_shape_and_range(self, fitted):
        train, pq = fitted
        codes = pq.encode(train[:50])
        assert codes.shape == (50, 4)
        assert codes.max() < 32

    def test_decode_reduces_error_vs_mean(self, fitted):
        train, pq = fitted
        recon = pq.decode(pq.encode(train))
        pq_err = float(((train - recon) ** 2).sum())
        mean_err = float(((train - train.mean(axis=0)) ** 2).sum())
        assert pq_err < mean_err

    def test_adc_matches_decoded_distances(self, fitted):
        """ADC distance = exact distance to the decoded (reconstructed)
        point — an identity, not an approximation."""
        train, pq = fitted
        q = np.random.default_rng(2).standard_normal(16)
        codes = pq.encode(train[:20])
        tables = pq.adc_tables(q)
        adc = pq.adc_distances(codes, tables)
        recon = pq.decode(codes)
        exact = ((recon - q) ** 2).sum(axis=1)
        assert np.allclose(adc, exact, rtol=1e-9)

    def test_centroid_cap_at_train_size(self):
        gen = np.random.default_rng(3)
        pq = ProductQuantizer(8, 2, 256).fit(gen.standard_normal((10, 8)), gen)
        assert all(cb.shape[0] <= 10 for cb in pq.codebooks)

    def test_subspace_cap_at_dim(self):
        pq = ProductQuantizer(3, 16, 8)
        assert pq.n_subspaces == 3

    def test_requires_fit(self):
        pq = ProductQuantizer(8, 2, 4)
        with pytest.raises(RuntimeError):
            pq.encode(np.ones((2, 8)))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ProductQuantizer(0, 2, 4)
        with pytest.raises(ValueError):
            ProductQuantizer(8, 0, 4)
        pq = ProductQuantizer(8, 2, 4)
        with pytest.raises(ValueError):
            pq.fit(np.ones((5, 7)), np.random.default_rng(0))

    def test_size_bytes(self, fitted):
        _, pq = fitted
        assert pq.size_bytes() == sum(cb.size * 4 for cb in pq.codebooks)


class TestOPQ:
    def test_rotation_is_orthogonal(self):
        gen = np.random.default_rng(4)
        train = gen.standard_normal((300, 12))
        rotation = train_opq_rotation(train, 4, 16, gen, n_iter=2)
        assert np.allclose(rotation @ rotation.T, np.eye(12), atol=1e-9)

    def test_rotation_reduces_quantization_error(self):
        gen = np.random.default_rng(5)
        # Correlated data where axis-aligned subspaces are a bad split.
        base = gen.standard_normal((500, 3))
        mix = gen.standard_normal((3, 12))
        train = base @ mix + 0.05 * gen.standard_normal((500, 12))

        def quant_error(rotation):
            rotated = train @ rotation
            pq = ProductQuantizer(12, 4, 16).fit(rotated, np.random.default_rng(6))
            recon = pq.decode(pq.encode(rotated))
            return float(((rotated - recon) ** 2).sum())

        err_identity = quant_error(np.eye(12))
        err_opq = quant_error(train_opq_rotation(train, 4, 16, gen, n_iter=4))
        assert err_opq <= err_identity * 1.05  # never meaningfully worse

    def test_zero_iterations_returns_identity(self):
        gen = np.random.default_rng(7)
        rotation = train_opq_rotation(gen.standard_normal((50, 6)), 2, 4, gen, n_iter=0)
        assert np.allclose(rotation, np.eye(6))


class TestPQBasedMIPS:
    @pytest.fixture(scope="class")
    def built(self, latent_medium):
        data, queries = latent_medium
        index = PQBasedMIPS(
            data, rng=8, n_coarse=24, n_centroids=32, min_local_train=150,
            n_subspaces=8,
        )
        return data, queries, index

    def test_quality(self, built):
        data, queries, index = built
        ratios = []
        for q in queries:
            _, exact_ips = exact_topk_reference(data, q, 10)
            result = index.search(q, k=10)
            ratios.append(float(np.mean(result.scores / exact_ips[: len(result.scores)])))
        assert float(np.mean(ratios)) >= 0.95

    def test_cells_partition_dataset(self, built):
        data, _, index = built
        ids = np.concatenate([c.member_ids for c in index.cells])
        assert sorted(ids.tolist()) == list(range(len(data)))

    def test_probes_at_most_n_probe_cells(self, built):
        _, queries, index = built
        result = index.search(queries[0], k=5)
        assert result.stats.extras["cells_probed"] <= index.n_probe

    def test_rerank_uses_exact_scores(self, built):
        data, queries, index = built
        result = index.search(queries[1], k=5)
        assert np.allclose(result.scores, data[result.ids] @ queries[1])

    def test_index_size_includes_rotations(self, built):
        data, _, index = built
        local_cells = [c for c in index.cells if c.pq is not index._global_pq]
        if local_cells:
            rotation_bytes = sum(c.rotation.size * 4 for c in local_cells)
            assert index.index_size_bytes() > rotation_bytes

    def test_rejects_bad_inputs(self, built):
        _, queries, index = built
        with pytest.raises(ValueError):
            index.search(queries[0], k=0)
        with pytest.raises(ValueError):
            PQBasedMIPS(np.empty((0, 3)))

    def test_small_dataset_fallback(self):
        gen = np.random.default_rng(9)
        data = gen.standard_normal((60, 8))
        index = PQBasedMIPS(data, rng=10, n_coarse=4, n_centroids=8, n_probe=2)
        result = index.search(data[0], k=5)
        assert len(result) == 5
