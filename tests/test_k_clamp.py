"""Uniform ``k`` handling across every registered method.

The serving layer treats all methods interchangeably, so ``k`` must behave
identically everywhere.  Two regimes:

* **over-asked** (``k > n``): clamp to the number of (live) points, return
  that many results from both ``search`` and ``search_many``, never pad
  with sentinel ids, and never raise.  This is the shared regression guard
  the sharded merge relies on — a shard is exactly a "1-shard/edge-size
  dataset" from its inner index's point of view.
* **invalid** (``k <= 0``, non-integral): raise the *same*
  ``ValueError`` from every method and both entry points, via the shared
  :func:`repro.api.validate_k`.  Before that helper, ``k=2.5`` silently
  truncated in some methods and raised obscure numpy ``TypeError``s in
  others — exactly the non-uniformity an HTTP front-end cannot paper over.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BatchResult, validate_k
from repro.spec import build_index, registered_methods

# One cheaply-buildable spec per registered method, viable down to n=1.
EDGE_SPECS = {
    "promips": "promips(c=0.85, p=0.6, m=4, kp=2, n_key=6, ksp=3)",
    "dynamic": "dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3)",
    "h2alsh": "h2alsh(c=0.9)",
    "rangelsh": "rangelsh(c=0.9, n_parts=4)",
    "pq": "pq(n_coarse=2, n_centroids=4, min_local_train=2)",
    "exact": "exact()",
    "simhash": "simhash(n_bits=24)",
    "sharded": "sharded(inner='exact()', shards=3)",
}


def test_edge_specs_cover_every_method():
    assert set(EDGE_SPECS) == set(registered_methods())


@pytest.mark.parametrize("n", [1, 3, 40])
@pytest.mark.parametrize("method", sorted(EDGE_SPECS))
def test_k_exceeding_n_clamps_uniformly(method, n):
    gen = np.random.default_rng(3)
    data = gen.standard_normal((n, 16))
    queries = gen.standard_normal((3, 16))
    index = build_index(EDGE_SPECS[method], data, rng=5)

    k = n + 60
    single = index.search(queries[0], k=k)
    assert len(single) == n

    batch = index.search_many(queries, k=k)
    assert batch.ids.shape == (3, n)
    assert not np.any(batch.ids == BatchResult.PAD_ID)
    assert np.all(np.isfinite(batch.scores))
    # Row 0 of the batch is the single answer (the engine's parity promise
    # holds at the clamped width too).
    assert np.array_equal(batch.ids[0], single.ids)
    assert np.array_equal(batch.scores[0], single.scores)


@pytest.mark.parametrize("method", sorted(EDGE_SPECS))
def test_k_equal_to_n_is_the_full_ranking(method):
    gen = np.random.default_rng(4)
    data = gen.standard_normal((12, 16))
    query = gen.standard_normal(16)
    index = build_index(EDGE_SPECS[method], data, rng=5)
    result = index.search(query, k=12)
    assert len(result) == 12
    assert sorted(result.ids.tolist()) == list(range(12))
    # Scores are descending (ties allowed).
    assert np.all(np.diff(result.scores) <= 0)


def test_dynamic_clamps_to_live_points_not_stored_points():
    gen = np.random.default_rng(5)
    data = gen.standard_normal((10, 16))
    index = build_index(EDGE_SPECS["dynamic"], data, rng=5)
    index.delete(2)
    index.delete(7)
    result = index.search(gen.standard_normal(16), k=50)
    assert len(result) == 8
    assert not {2, 7} & set(result.ids.tolist())


def test_sharded_dynamic_clamps_to_live_points():
    gen = np.random.default_rng(6)
    data = gen.standard_normal((12, 16))
    index = build_index(
        "sharded(inner='dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3)', shards=3)",
        data,
        rng=5,
    )
    index.delete(0)
    index.delete(11)
    batch = index.search_many(data[:2], k=99)
    assert batch.ids.shape == (2, 10)
    assert not np.any(batch.ids == BatchResult.PAD_ID)


class TestInvalidK:
    """k <= 0 and non-integral k raise the same ValueError everywhere."""

    @pytest.fixture(scope="class")
    def built(self):
        gen = np.random.default_rng(7)
        data = gen.standard_normal((24, 16))
        return {
            name: build_index(spec, data, rng=5)
            for name, spec in EDGE_SPECS.items()
        }, gen.standard_normal((2, 16))

    @pytest.mark.parametrize("bad_k", [0, -1, 2.5, float("nan"), "3", None])
    @pytest.mark.parametrize("method", sorted(EDGE_SPECS))
    def test_search_raises_uniformly(self, built, method, bad_k):
        indexes, queries = built
        with pytest.raises(ValueError, match="k must be a positive integer"):
            indexes[method].search(queries[0], k=bad_k)

    @pytest.mark.parametrize("bad_k", [0, -1, 2.5])
    @pytest.mark.parametrize("method", sorted(EDGE_SPECS))
    def test_search_many_raises_uniformly(self, built, method, bad_k):
        indexes, queries = built
        with pytest.raises(ValueError, match="k must be a positive integer"):
            indexes[method].search_many(queries, k=bad_k)

    def test_integral_floats_accepted(self, built):
        # JSON clients deliver 5.0 for 5; every method must treat them alike.
        indexes, queries = built
        for method, index in indexes.items():
            result = index.search(queries[0], k=3.0)
            assert len(result) == 3, method

    def test_validate_k_normalises(self):
        assert validate_k(5) == 5
        assert validate_k(np.int64(5)) == 5
        assert validate_k(5.0) == 5
        assert isinstance(validate_k(np.int64(5)), int)

    def test_validate_k_rejects_bool(self):
        with pytest.raises(ValueError, match="k must be a positive integer"):
            validate_k(True)
