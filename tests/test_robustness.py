"""Robustness / failure-injection tests: degenerate datasets and adversarial
inputs across every method.

A production search library must not crash (or silently mis-answer) on
all-zero vectors, duplicate points, constant datasets, single points, or
negative-only inner products — shapes that all occur in real MF/feature
pipelines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactMIPS
from repro.baselines.h2alsh import H2ALSH
from repro.baselines.pq import PQBasedMIPS
from repro.baselines.rangelsh import RangeLSH
from repro.core.promips import ProMIPS, ProMIPSParams

SMALL_PARAMS = ProMIPSParams(m=4, kp=2, n_key=6, ksp=2)


def _build_all(data):
    return {
        "exact": ExactMIPS(data),
        "promips": ProMIPS.build(data, SMALL_PARAMS, rng=1),
        "h2alsh": H2ALSH(data, rng=1),
        "rangelsh": RangeLSH(data, rng=1),
        "pq": PQBasedMIPS(data, rng=1, n_coarse=4, n_centroids=8, n_probe=4,
                          opq_iters=1, min_local_train=30),
    }


class TestDegenerateDatasets:
    def test_dataset_with_zero_vectors(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((200, 8))
        data[::7] = 0.0
        for name, index in _build_all(data).items():
            result = index.search(data[1], k=5)
            assert len(result) == 5, name
            assert np.all(np.isfinite(result.scores)), name

    def test_duplicate_points(self):
        gen = np.random.default_rng(1)
        base = gen.standard_normal((40, 6))
        data = np.vstack([base, base, base])  # every point ×3
        for name, index in _build_all(data).items():
            result = index.search(base[0], k=6)
            assert len(set(result.ids.tolist())) == len(result.ids), name

    def test_constant_dataset(self):
        data = np.ones((100, 5))
        for name, index in _build_all(data).items():
            result = index.search(np.ones(5), k=3)
            assert len(result) == 3, name
            assert np.allclose(result.scores, 5.0), name

    def test_single_point_dataset(self):
        data = np.array([[1.0, 2.0, 3.0]])
        exact = ExactMIPS(data)
        promips = ProMIPS.build(data, ProMIPSParams(m=2, kp=1, n_key=2, ksp=1), rng=0)
        for index in (exact, promips):
            result = index.search(np.array([1.0, 1.0, 1.0]), k=5)
            assert len(result) == 1
            assert result.ids[0] == 0

    def test_two_point_dataset(self):
        data = np.array([[1.0, 0.0], [0.0, 1.0]])
        promips = ProMIPS.build(data, ProMIPSParams(m=2, kp=1, n_key=2, ksp=1), rng=0)
        result = promips.search(np.array([2.0, 0.1]), k=2)
        assert set(result.ids.tolist()) == {0, 1}
        assert result.scores[0] >= result.scores[1]

    def test_negative_inner_products_only(self):
        """A query pointing away from every data point still gets answers
        (the best of a bad lot), with correct descending order."""
        gen = np.random.default_rng(2)
        data = np.abs(gen.standard_normal((150, 6)))  # positive orthant
        query = -np.ones(6)  # all inner products negative
        for name, index in _build_all(data).items():
            result = index.search(query, k=5)
            assert len(result) == 5, name
            assert np.all(result.scores <= 0), name
            assert np.all(np.diff(result.scores) <= 1e-12), name

    def test_tiny_scale_dataset(self):
        gen = np.random.default_rng(3)
        data = gen.standard_normal((100, 4)) * 1e-8
        promips = ProMIPS.build(data, SMALL_PARAMS, rng=1)
        result = promips.search(data[0], k=3)
        assert np.all(np.isfinite(result.scores))

    def test_huge_scale_dataset(self):
        gen = np.random.default_rng(4)
        data = gen.standard_normal((100, 4)) * 1e8
        promips = ProMIPS.build(data, SMALL_PARAMS, rng=1)
        result = promips.search(data[0], k=3, p=0.9)
        assert np.all(np.isfinite(result.scores))
        exact_best = float((data @ data[0]).max())
        # The guarantee arithmetic must survive 1e16-scale magnitudes.
        assert result.scores[0] >= 0.9 * exact_best


class TestAdversarialQueries:
    @pytest.fixture(scope="class")
    def world(self, latent_small):
        data, _ = latent_small
        return data, _build_all(data)

    def test_zero_query(self, world):
        data, indexes = world
        for name, index in indexes.items():
            result = index.search(np.zeros(data.shape[1]), k=3)
            assert len(result) == 3, name
            assert np.allclose(result.scores, 0.0), name

    def test_orthogonal_heavy_query(self, world):
        """A very large query must not overflow the condition arithmetic."""
        data, indexes = world
        query = np.full(data.shape[1], 1e6)
        for name, index in indexes.items():
            result = index.search(query, k=3)
            assert np.all(np.isfinite(result.scores)), name

    def test_query_equal_to_max_norm_point(self, world):
        data, indexes = world
        heavy = int(np.argmax(np.linalg.norm(data, axis=1)))
        for name, index in indexes.items():
            result = index.search(data[heavy], k=1)
            # Self-match is the exact MIP for the max-norm point.
            assert result.ids[0] == heavy, name

    def test_nan_query_rejected_everywhere(self, world):
        data, indexes = world
        bad = np.full(data.shape[1], np.nan)
        for name, index in indexes.items():
            with pytest.raises(ValueError):
                index.search(bad, k=1)
