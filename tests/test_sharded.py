"""Tests for repro.core.sharded — the sharded serving layer.

The headline property is *shard-count invariance*: with an exact inner
method, a :class:`ShardedIndex` must return bit-identical ids and scores to
the unsharded exact index for every shard count and assignment scheme,
including counts that do not divide ``n``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.persist import inspect_index, load_index, save_index
from repro.core.sharded import ShardedIndex, _assign_members
from repro.spec import IndexSpec, build_index, registered_methods

SHARD_COUNTS = [1, 2, 4, 7]
ASSIGNMENTS = ["contiguous", "hash"]

PROMIPS_INNER = "promips(c=0.85, p=0.6, m=5, kp=3, n_key=10, ksp=4)"
DYNAMIC_INNER = "dynamic(c=0.85, m=5, kp=3, n_key=10, ksp=4)"


@pytest.fixture(scope="module")
def workload(latent_small):
    data, queries = latent_small
    # 1013 is prime, so no shard count in SHARD_COUNTS divides it — every
    # invariance run also exercises uneven partition sizes.
    return np.ascontiguousarray(data[:1013]), queries


@pytest.fixture(scope="module")
def exact_reference(workload):
    data, queries = workload
    index = build_index("exact()", data)
    return index, index.search_many(queries, k=10)


class TestShardCountInvariance:
    @pytest.mark.parametrize("assignment", ASSIGNMENTS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_batch_bit_identical_to_unsharded_exact(
        self, workload, exact_reference, shards, assignment
    ):
        data, queries = workload
        _, reference = exact_reference
        sharded = ShardedIndex.build(
            data, inner="exact()", shards=shards, assignment=assignment, rng=3
        )
        batch = sharded.search_many(queries, k=10)
        assert np.array_equal(batch.ids, reference.ids)
        assert np.array_equal(batch.scores, reference.scores)

    def test_single_search_matches_batch_row(self, workload, exact_reference):
        data, queries = workload
        _, reference = exact_reference
        sharded = ShardedIndex.build(data, inner="exact()", shards=4, rng=3)
        for qi, query in enumerate(queries[:4]):
            result = sharded.search(query, k=10)
            assert np.array_equal(result.ids, reference.ids[qi])
            assert np.array_equal(result.scores, reference.scores[qi])

    def test_tie_break_by_global_id_across_shards(self):
        """Duplicate rows landing in different shards tie-break globally."""
        gen = np.random.default_rng(0)
        data = gen.standard_normal((200, 8))
        data[3] *= 50.0  # dominant norm, so the pair is the top-2 for itself
        data[150] = data[3]  # same vector, different contiguous shards
        query = data[3] / np.linalg.norm(data[3])
        sharded = ShardedIndex.build(data, inner="exact()", shards=4, rng=1)
        result = sharded.search(query, k=2)
        assert result.ids.tolist() == [3, 150]
        assert result.scores[0] == result.scores[1]

    def test_approximate_inner_batch_matches_looped_search(self, workload):
        """The bit-identity of batch vs loop survives sharding for ProMIPS."""
        data, queries = workload
        sharded = ShardedIndex.build(data, inner=PROMIPS_INNER, shards=3, rng=5)
        batch = sharded.search_many(queries, k=10)
        for qi, query in enumerate(queries):
            single = sharded.search(query, k=10)
            assert np.array_equal(batch[qi].ids, single.ids)
            assert np.array_equal(batch[qi].scores, single.scores)


class TestIdRemapping:
    @pytest.mark.parametrize("assignment", ASSIGNMENTS)
    def test_members_partition_the_id_space(self, assignment):
        members = _assign_members(1013, 7, assignment)
        joined = np.concatenate(members)
        assert np.array_equal(np.sort(joined), np.arange(1013))
        for m in members:
            assert np.array_equal(m, np.sort(m))  # ascending → tie-break safe

    def test_non_divisible_contiguous_sizes_balanced(self):
        members = _assign_members(1013, 7, "contiguous")
        sizes = [m.size for m in members]
        assert sum(sizes) == 1013
        assert max(sizes) - min(sizes) <= 1

    def test_returned_ids_are_global(self, workload):
        data, queries = workload
        sharded = ShardedIndex.build(data, inner="exact()", shards=7, rng=3)
        batch = sharded.search_many(queries, k=25)
        # Shard-local ids top out near n/7; global remapping must reach ids
        # from the tail shard too.
        assert batch.ids.max() > 1013 * 6 // 7

    def test_more_shards_than_points(self):
        data = np.random.default_rng(1).standard_normal((3, 8))
        sharded = ShardedIndex.build(data, inner="exact()", shards=8, rng=2)
        assert sharded.n_shards <= 3
        reference = build_index("exact()", data)
        result = sharded.search(data[0], k=3)
        expected = reference.search(data[0], k=3)
        assert np.array_equal(result.ids, expected.ids)
        # Single-row shards can hit a different BLAS kernel than a 3-row
        # scan, so scores here are allclose rather than bit-identical (the
        # realistic workloads in TestShardCountInvariance stay exact).
        assert np.allclose(result.scores, expected.scores)

    def test_invalid_configs_rejected(self, workload):
        data, _ = workload
        with pytest.raises(ValueError):
            ShardedIndex.build(data, shards=0)
        with pytest.raises(ValueError):
            ShardedIndex.build(data, assignment="roundrobin")
        with pytest.raises(ValueError):
            ShardedIndex.build(data, inner="sharded(inner='exact()')")


class TestEdges:
    def test_k_exceeding_n_clamps(self):
        data = np.random.default_rng(2).standard_normal((5, 8))
        sharded = ShardedIndex.build(data, inner="exact()", shards=3, rng=1)
        batch = sharded.search_many(data[:2], k=20)
        assert batch.ids.shape == (2, 5)
        assert not np.any(batch.ids == batch.PAD_ID)

    def test_empty_batch(self, workload):
        data, _ = workload
        sharded = ShardedIndex.build(data[:50], inner="exact()", shards=2, rng=1)
        batch = sharded.search_many(np.empty((0, data.shape[1])), k=5)
        assert batch.ids.shape == (0, 0)

    def test_k_must_be_positive(self, workload):
        data, queries = workload
        sharded = ShardedIndex.build(data[:50], inner="exact()", shards=2, rng=1)
        with pytest.raises(ValueError):
            sharded.search(queries[0], k=0)
        with pytest.raises(ValueError):
            sharded.search_many(queries, k=-1)

    def test_per_shard_timings_recorded(self, workload):
        data, queries = workload
        sharded = ShardedIndex.build(data, inner="exact()", shards=4, rng=1)
        assert sharded.last_shard_seconds is None
        sharded.search_many(queries, k=5)
        assert len(sharded.last_shard_seconds) == sharded.n_shards
        assert all(t >= 0.0 for t in sharded.last_shard_seconds)

    def test_thread_pool_fanout_matches_sequential(self, workload):
        data, queries = workload
        sharded = ShardedIndex.build(data, inner="exact()", shards=4, rng=1)
        pooled = sharded.search_many(queries, k=10, n_threads=4)
        sequential = sharded.search_many(queries, k=10, n_threads=1)
        assert np.array_equal(pooled.ids, sequential.ids)
        assert np.array_equal(pooled.scores, sequential.scores)

    def test_orchestrator_forwards_n_threads_to_native_path(self, workload):
        from repro.core.batch import search_many

        data, queries = workload
        sharded = ShardedIndex.build(data, inner="exact()", shards=4, rng=1)
        batch = search_many(sharded, queries, k=10, n_threads=2)
        direct = sharded.search_many(queries, k=10)
        assert np.array_equal(batch.ids, direct.ids)
        assert np.array_equal(batch.scores, direct.scores)

    def test_registered_and_spec_round_trip(self, workload):
        data, _ = workload
        assert "sharded" in registered_methods()
        sharded = build_index(
            "sharded(inner='exact()', shards=4, assignment='hash')", data[:100], rng=1
        )
        assert isinstance(sharded, ShardedIndex)
        spec = sharded.spec()
        assert IndexSpec.parse(str(spec)) == spec
        assert spec.params["assignment"] == "hash"


class TestPersistence:
    def test_round_trip_exact_inner(self, workload, tmp_path):
        data, queries = workload
        sharded = ShardedIndex.build(data, inner="exact()", shards=4, rng=3)
        path = save_index(sharded, tmp_path / "sharded_exact")
        restored = load_index(path)
        assert isinstance(restored, ShardedIndex)
        assert restored.spec() == sharded.spec()
        a = sharded.search_many(queries, k=10)
        b = restored.search_many(queries, k=10)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.scores, b.scores)

    def test_round_trip_promips_inner(self, workload, tmp_path):
        data, queries = workload
        sharded = ShardedIndex.build(data, inner=PROMIPS_INNER, shards=3, rng=5)
        path = save_index(sharded, tmp_path / "sharded_promips")
        restored = load_index(path)
        assert restored.n_shards == 3
        for query in queries[:5]:
            a = sharded.search(query, k=10)
            b = restored.search(query, k=10)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
            assert a.stats.pages == b.stats.pages

    def test_envelope_names_the_composite(self, workload, tmp_path):
        data, _ = workload
        sharded = ShardedIndex.build(data[:100], inner="exact()", shards=2, rng=1)
        path = save_index(sharded, tmp_path / "idx")
        meta = inspect_index(path)
        assert meta["method"] == "sharded"
        assert meta["spec"]["params"]["shards"] == 2

    def test_round_trip_preserves_mutations(self, workload, tmp_path):
        data, queries = workload
        sharded = ShardedIndex.build(data[:300], inner=DYNAMIC_INNER, shards=3, rng=5)
        gen = np.random.default_rng(0)
        inserted = [sharded.insert(v) for v in gen.standard_normal((6, data.shape[1]))]
        sharded.delete(7)
        sharded.delete(inserted[1])
        restored = load_index(save_index(sharded, tmp_path / "dyn"))
        assert restored.n_live == sharded.n_live
        for query in queries[:4]:
            a = sharded.search(query, k=8)
            b = restored.search(query, k=8)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
        # Reloaded index continues the global id sequence.
        assert restored.insert(queries[0]) == sharded._next_id
        with pytest.raises(KeyError):
            restored.delete(7)


class TestDynamicRouting:
    @pytest.fixture()
    def dynamic_sharded(self, workload):
        data, _ = workload
        return np.ascontiguousarray(data[:300]), ShardedIndex.build(
            data[:300], inner=DYNAMIC_INNER, shards=3, rng=5
        )

    def test_insert_returns_sequential_global_ids(self, dynamic_sharded):
        data, sharded = dynamic_sharded
        gen = np.random.default_rng(1)
        ids = [sharded.insert(v) for v in gen.standard_normal((5, data.shape[1]))]
        assert ids == [300, 301, 302, 303, 304]
        assert sharded.n_live == 305

    def test_insert_routes_to_least_loaded_shard(self, dynamic_sharded):
        data, sharded = dynamic_sharded
        gen = np.random.default_rng(2)
        before = [sharded._live_count(s) for s in sharded.shards]
        # Inserting (max-min)*n_shards points must level the loads.
        for v in gen.standard_normal((3 * (max(before) - min(before) + 2), data.shape[1])):
            sharded.insert(v)
        after = [sharded._live_count(s) for s in sharded.shards]
        assert max(after) - min(after) <= 1

    def test_inserted_point_is_found(self, dynamic_sharded):
        data, sharded = dynamic_sharded
        spike = np.full(data.shape[1], 10.0)
        gid = sharded.insert(spike)
        result = sharded.search(spike, k=1)
        assert result.ids.tolist() == [gid]

    def test_delete_routes_to_owning_shard(self, dynamic_sharded):
        data, sharded = dynamic_sharded
        query = data[42]
        before = sharded.search(query, k=10)
        target = int(before.ids[0])
        sharded.delete(target)
        after = sharded.search(query, k=10)
        assert target not in after.ids
        # Deleting only removes: the surviving 9 stay in order.
        survivors = [gid for gid in before.ids.tolist() if gid != target]
        assert after.ids[:9].tolist() == survivors
        assert sharded.n_live == 299

    def test_delete_results_consistent_with_live_set(self, dynamic_sharded):
        data, sharded = dynamic_sharded
        deleted = {5, 123, 250}
        for gid in deleted:
            sharded.delete(gid)
        live = np.array([i for i in range(300) if i not in deleted])
        query = data[7] * 0.5
        result = sharded.search(query, k=5)
        returned = set(result.ids.tolist())
        assert not returned & deleted
        assert returned <= set(live.tolist())
        # Returned scores are the true inner products of the returned ids.
        assert np.allclose(result.scores, data[result.ids] @ query)
        # The inner method is approximate, so compare against brute force
        # by recall rather than exact equality.
        expected_scores = data[live] @ query
        order = np.lexsort((live, -expected_scores))[:5]
        exact_top = set(live[order].tolist())
        assert len(returned & exact_top) >= 3

    def test_draining_a_shard_raises_with_shard_context(self):
        data = np.random.default_rng(8).standard_normal((6, 16))
        sharded = ShardedIndex.build(
            data, inner="dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3)",
            shards=3, rng=1,
        )
        sharded.delete(0)  # shard 0 holds global ids {0, 1}
        with pytest.raises(ValueError, match="shard 0"):
            sharded.delete(1)
        # The failed delete left the point live and searchable.
        assert sharded.n_live == 5
        assert 1 in sharded.search(data[1], k=5).ids

    def test_delete_unknown_or_deleted_raises(self, dynamic_sharded):
        _, sharded = dynamic_sharded
        with pytest.raises(KeyError):
            sharded.delete(9999)
        sharded.delete(10)
        with pytest.raises(KeyError):
            sharded.delete(10)

    def test_double_delete_error_names_the_global_id(self, dynamic_sharded):
        data, sharded = dynamic_sharded
        gid = sharded.insert(np.random.default_rng(3).standard_normal(data.shape[1]))
        sharded.delete(gid)
        # The inner shard knows this point by a small local id; the error
        # must name the caller's global id instead.
        with pytest.raises(KeyError, match=str(gid)):
            sharded.delete(gid)

    def test_immutable_inner_rejects_updates(self, workload):
        data, _ = workload
        sharded = ShardedIndex.build(data[:100], inner="exact()", shards=2, rng=1)
        with pytest.raises(TypeError):
            sharded.insert(data[0])
        with pytest.raises(TypeError):
            sharded.delete(0)
