"""Tests for repro.baselines.rangelsh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rangelsh import RangeLSH

from conftest import exact_topk_reference


@pytest.fixture(scope="module")
def built(latent_medium):
    data, queries = latent_medium
    return data, queries, RangeLSH(data, rng=5, c=0.9)


class TestSubsets:
    def test_subsets_partition_dataset(self, built):
        data, _, index = built
        ids = np.concatenate(index._subset_ids)
        assert sorted(ids.tolist()) == list(range(len(data)))

    def test_subsets_are_norm_rank_ranges(self, built):
        data, _, index = built
        norms = np.linalg.norm(data, axis=1)
        # Every norm in subset j must be >= every norm in subset j+1 (up to
        # ties at the boundary).
        for a, b in zip(index._subset_ids, index._subset_ids[1:]):
            assert norms[a].min() >= norms[b].max() - 1e-9

    def test_local_max_norms_recorded(self, built):
        data, _, index = built
        norms = np.linalg.norm(data, axis=1)
        for j, ids in enumerate(index._subset_ids):
            assert index._subset_max_norm[j] == pytest.approx(norms[ids].max())

    def test_default_part_count(self, built):
        _, _, index = built
        assert index.n_parts == 32


class TestSearch:
    def test_quality(self, built):
        data, queries, index = built
        ratios, recalls = [], []
        for q in queries:
            exact_ids, exact_ips = exact_topk_reference(data, q, 10)
            result = index.search(q, k=10)
            ratios.append(float(np.mean(result.scores / exact_ips[: len(result.scores)])))
            recalls.append(
                len(set(result.ids.tolist()) & set(exact_ids.tolist())) / 10
            )
        assert float(np.mean(ratios)) >= 0.93
        assert float(np.mean(recalls)) >= 0.6

    def test_budget_respected(self, built):
        data, queries, index = built
        result = index.search(queries[0], k=10)
        budget = max(int(index.candidate_fraction * len(data)), 40)
        # The last probed bucket may overshoot by its own size; bound loosely.
        assert result.stats.candidates <= budget + len(data) // index.n_parts + 1

    def test_stats_structure(self, built):
        _, queries, index = built
        result = index.search(queries[1], k=5)
        assert result.stats.pages > 0
        assert result.stats.extras["buckets_probed"] >= 1
        assert 1 <= result.stats.extras["subsets_probed"] <= index.n_parts

    def test_scores_sorted_and_exact(self, built):
        data, queries, index = built
        result = index.search(queries[2], k=8)
        assert np.all(np.diff(result.scores) <= 1e-12)
        assert np.allclose(result.scores, data[result.ids] @ queries[2])

    def test_rejects_bad_inputs(self, built):
        _, queries, index = built
        with pytest.raises(ValueError):
            index.search(queries[0], k=0)
        with pytest.raises(ValueError):
            index.search(np.ones(2), k=1)


class TestConstruction:
    def test_index_is_tiny(self, built):
        data, _, index = built
        # 16-bit codes: ~2 bytes/point plus hyperplanes.
        assert index.index_size_bytes() < len(data) * 8

    def test_rejects_bad_params(self, latent_small):
        data, _ = latent_small
        with pytest.raises(ValueError):
            RangeLSH(data, c=0.0)
        with pytest.raises(ValueError):
            RangeLSH(data, n_parts=0)
        with pytest.raises(ValueError):
            RangeLSH(data, candidate_fraction=0.0)
        with pytest.raises(ValueError):
            RangeLSH(np.empty((0, 4)))

    def test_fewer_points_than_parts(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((10, 4))
        index = RangeLSH(data, rng=1, n_parts=32)
        assert index.n_parts <= 10
        result = index.search(data[0], k=3)
        assert len(result) == 3
