"""Cross-cutting property-based tests: the theory of §IV–§V exercised on
randomly generated instances (hypothesis).

These complement the per-module tests by checking the *composed* invariants
that the correctness of ProMIPS actually rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.binary_codes import BinaryCodeGroups
from repro.core.conditions import (
    compensation_radius,
    condition_a_holds,
    condition_b_holds,
    guarantee_denominator,
)
from repro.core.projection import StableProjection
from repro.stats.chi2 import ChiSquare

_finite = st.floats(-50.0, 50.0)


class TestTheorem1Property:
    """Condition A certifies a c-AMIP answer on arbitrary instances."""

    @given(
        arrays(np.float64, (40, 6), elements=_finite),
        arrays(np.float64, (6,), elements=_finite),
        st.floats(0.05, 0.95),
    )
    @settings(max_examples=80, deadline=None)
    def test_condition_a_certificate(self, data, query, c):
        norms_sq = np.einsum("ij,ij->i", data, data)
        max_norm_sq = float(norms_sq.max())
        q_norm_sq = float(query @ query)
        ips = data @ query
        best = float(ips.max())
        for ip in ips[:10]:
            if condition_a_holds(max_norm_sq, q_norm_sq, float(ip), c):
                assert ip >= c * best - 1e-7 * (1.0 + abs(best))


class TestConditionBConsistency:
    """Condition B ⇔ the compensation radius, on arbitrary inputs."""

    @given(
        st.integers(2, 12),
        st.floats(0.05, 0.95),
        st.floats(0.01, 1000.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_radius_is_the_condition_boundary(self, m, p, denom):
        chi2 = ChiSquare(m)
        radius = compensation_radius(denom, chi2, p)
        assert condition_b_holds(radius**2 * (1 + 1e-9), denom, chi2, p)
        if radius > 0:
            assert not condition_b_holds(radius**2 * (1 - 1e-6), denom, chi2, p)

    @given(st.integers(2, 12), st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_denominator_monotone_in_ip(self, m, c):
        ips = [-5.0, 0.0, 1.0, 10.0]
        denoms = [guarantee_denominator(9.0, 4.0, ip, c) for ip in ips]
        assert denoms == sorted(denoms, reverse=True)


class TestProjectionContractsGroups:
    """Theorem 3 composed through real projections: the group lower bound
    never exceeds the true projected distance, whatever the data."""

    @given(
        arrays(np.float64, (25, 10), elements=_finite),
        st.integers(0, 24),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_bound_composition(self, data, query_row, seed):
        rng = np.random.default_rng(seed)
        projection = StableProjection(10, 4, rng)
        projected = projection.project(data)
        l1 = np.abs(data).sum(axis=1)
        groups = BinaryCodeGroups(projected, l1)
        q_proj = projected[query_row]
        lbs = groups.lower_bounds(q_proj)
        dists = np.linalg.norm(projected - q_proj[None, :], axis=1)
        for g in range(groups.n_groups):
            members = groups.group(g).member_ids
            assert np.all(dists[members] >= lbs[g] - 1e-9)


class TestEndToEndGuaranteeProperty:
    """ProMIPS on random latent-ish instances: the fraction of successful
    ranks clears p with margin (statistical property of the whole system)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_guarantee_on_random_instance(self, seed):
        from repro.core.promips import ProMIPS, ProMIPSParams
        from repro.eval.metrics import guarantee_success

        gen = np.random.default_rng(seed)
        base = gen.standard_normal((1500, 20))
        base /= np.linalg.norm(base, axis=1, keepdims=True)
        data = base * gen.lognormal(0.0, 0.1, size=(1500, 1))
        index = ProMIPS.build(data, ProMIPSParams(c=0.8, p=0.5), rng=seed + 10)

        successes = []
        for qi in gen.choice(1500, 15, replace=False):
            q = data[qi]
            exact = np.sort(data @ q)[::-1][:5]
            res = index.search(q, k=5)
            successes.append(guarantee_success(res.scores, exact, 0.8))
        assert float(np.mean(successes)) >= 0.5
