"""Tests for repro.eval.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval.metrics import (
    guarantee_success,
    latency_summary,
    overall_ratio,
    p50,
    p95,
    p99,
    percentile,
    recall,
)


class TestOverallRatio:
    def test_perfect_answer(self):
        exact = np.array([10.0, 8.0, 6.0])
        assert overall_ratio(exact, exact) == pytest.approx(1.0)

    def test_partial_quality(self):
        returned = np.array([9.0, 8.0, 3.0])
        exact = np.array([10.0, 8.0, 6.0])
        assert overall_ratio(returned, exact) == pytest.approx((0.9 + 1.0 + 0.5) / 3)

    def test_missing_answers_count_zero(self):
        returned = np.array([10.0])
        exact = np.array([10.0, 8.0])
        assert overall_ratio(returned, exact) == pytest.approx(0.5)

    def test_clipped_to_unit(self):
        # Numerical ties can put a returned score microscopically above the
        # exact one; the ratio must not exceed 1.
        returned = np.array([10.0 + 1e-12])
        exact = np.array([10.0])
        assert overall_ratio(returned, exact) <= 1.0

    def test_zero_exact_score(self):
        assert overall_ratio(np.array([0.0]), np.array([0.0])) == pytest.approx(1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            overall_ratio(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            overall_ratio(np.array([1.0]), np.array([]))

    @given(
        arrays(np.float64, 5, elements=st.floats(0.1, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, exact_raw):
        exact = np.sort(exact_raw)[::-1]
        returned = exact * 0.9
        value = overall_ratio(returned, exact)
        assert 0.0 <= value <= 1.0


class TestRecall:
    def test_full_recall(self):
        assert recall(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0

    def test_partial_recall(self):
        assert recall(np.array([1, 9, 8]), np.array([1, 2, 3])) == pytest.approx(1 / 3)

    def test_empty_returned(self):
        assert recall(np.array([]), np.array([1, 2])) == 0.0

    def test_rejects_empty_exact(self):
        with pytest.raises(ValueError):
            recall(np.array([1]), np.array([]))


class TestGuaranteeSuccess:
    def test_all_meet_guarantee(self):
        exact = np.array([10.0, 8.0])
        returned = np.array([9.5, 7.3])
        assert guarantee_success(returned, exact, 0.9) == 1.0

    def test_partial(self):
        exact = np.array([10.0, 8.0])
        returned = np.array([9.5, 5.0])
        assert guarantee_success(returned, exact, 0.9) == pytest.approx(0.5)

    def test_empty_returned_scores(self):
        assert guarantee_success(np.array([]), np.array([1.0]), 0.9) == 0.0

    def test_boundary_inclusive(self):
        exact = np.array([10.0])
        assert guarantee_success(np.array([9.0]), exact, 0.9) == 1.0

    def test_rejects_empty_exact(self):
        with pytest.raises(ValueError):
            guarantee_success(np.array([1.0]), np.array([]), 0.9)


class TestPercentile:
    """The shared helpers must agree exactly with numpy's default method."""

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_interpolates_between_order_statistics(self):
        # rank = (4-1) * 0.5 = 1.5 → halfway between the 2nd and 3rd value.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 100) == 3.0
        assert percentile([3.0, 1.0, 2.0], 0) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    @given(
        arrays(np.float64, st.integers(1, 40), elements=st.floats(-1e6, 1e6)),
        st.floats(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_percentile(self, values, q):
        ours = percentile(values, q)
        theirs = float(np.percentile(values, q))
        assert ours == pytest.approx(theirs, rel=1e-12, abs=1e-9)

    def test_named_shortcuts_match_numpy(self):
        rng = np.random.default_rng(0)
        sample = rng.exponential(scale=3.0, size=257)
        assert p50(sample) == pytest.approx(float(np.percentile(sample, 50)))
        assert p95(sample) == pytest.approx(float(np.percentile(sample, 95)))
        assert p99(sample) == pytest.approx(float(np.percentile(sample, 99)))


class TestLatencySummary:
    def test_empty_sample_is_zeros(self):
        assert latency_summary([]) == {
            "count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_converts_seconds_to_ms(self):
        summary = latency_summary([0.001, 0.002, 0.003])
        assert summary["count"] == 3
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["p99_ms"] == pytest.approx(
            float(np.percentile([1.0, 2.0, 3.0], 99))
        )
