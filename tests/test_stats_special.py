"""Tests for repro.stats.special — the from-scratch special functions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import special as scipy_special

from repro.stats.special import (
    erf,
    log_gamma,
    regularized_lower_gamma,
    std_normal_cdf,
)


class TestLogGamma:
    @pytest.mark.parametrize("x", [0.1, 0.5, 1.0, 1.5, 2.0, 5.0, 10.5, 100.0, 1000.0])
    def test_matches_scipy(self, x):
        assert log_gamma(x) == pytest.approx(scipy_special.gammaln(x), rel=1e-12)

    def test_integer_factorials(self):
        # Γ(n) = (n-1)!
        assert log_gamma(5.0) == pytest.approx(math.log(24.0), rel=1e-12)
        assert log_gamma(11.0) == pytest.approx(math.log(3628800.0), rel=1e-12)

    def test_half_integer(self):
        # Γ(1/2) = √π
        assert log_gamma(0.5) == pytest.approx(0.5 * math.log(math.pi), rel=1e-12)

    @pytest.mark.parametrize("x", [0.0, -1.0, -0.5])
    def test_rejects_non_positive(self, x):
        with pytest.raises(ValueError):
            log_gamma(x)

    @given(st.floats(min_value=0.01, max_value=500.0))
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy_property(self, x):
        assert log_gamma(x) == pytest.approx(scipy_special.gammaln(x), rel=1e-9)


class TestRegularizedLowerGamma:
    @pytest.mark.parametrize(
        "a,x",
        [(0.5, 0.1), (0.5, 2.0), (1.0, 1.0), (2.5, 0.5), (3.0, 10.0),
         (10.0, 5.0), (10.0, 30.0), (50.0, 50.0), (0.1, 0.001)],
    )
    def test_matches_scipy(self, a, x):
        assert regularized_lower_gamma(a, x) == pytest.approx(
            scipy_special.gammainc(a, x), abs=1e-12, rel=1e-10
        )

    def test_boundary_values(self):
        assert regularized_lower_gamma(3.0, 0.0) == 0.0
        assert regularized_lower_gamma(3.0, math.inf) == 1.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            regularized_lower_gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_lower_gamma(-1.0, 1.0)
        with pytest.raises(ValueError):
            regularized_lower_gamma(1.0, -0.1)

    @given(
        st.floats(min_value=0.05, max_value=200.0),
        st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_in_unit_interval_and_matches_scipy(self, a, x):
        value = regularized_lower_gamma(a, x)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(scipy_special.gammainc(a, x), abs=1e-9)

    @given(st.floats(min_value=0.5, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_x(self, a):
        xs = [0.0, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0]
        values = [regularized_lower_gamma(a, x) for x in xs]
        assert values == sorted(values)


class TestErf:
    @pytest.mark.parametrize("x", [-3.0, -1.0, -0.5, 0.0, 0.5, 1.0, 3.0])
    def test_matches_scipy(self, x):
        assert erf(x) == pytest.approx(scipy_special.erf(x), abs=1e-10)

    def test_odd_symmetry(self):
        for x in (0.3, 1.7, 2.5):
            assert erf(-x) == pytest.approx(-erf(x), abs=1e-14)


class TestStdNormalCdf:
    def test_center_and_tails(self):
        assert std_normal_cdf(0.0) == pytest.approx(0.5, abs=1e-14)
        assert std_normal_cdf(10.0) == pytest.approx(1.0, abs=1e-12)
        assert std_normal_cdf(-10.0) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("x", [-2.0, -0.7, 0.3, 1.9])
    def test_matches_scipy(self, x):
        from scipy.stats import norm

        assert std_normal_cdf(x) == pytest.approx(norm.cdf(x), abs=1e-10)
