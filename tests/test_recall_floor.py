"""Recall regression guard: seeded per-method floors.

Every registered method is built with a fixed seed on the shared
``latent_small`` workload and its mean recall@10 is asserted against a
recorded floor.  The floors sit ~0.08 below the values measured when they
were recorded (listed alongside), so a refactor that silently degrades
answer quality — a broken probe schedule, a lost candidate, a wrong
tie-break — fails loudly, while last-ulp BLAS differences across platforms
do not.

When a *deliberate* quality change moves a method, re-measure and update the
floor in the same commit, with the new measured value in the comment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.metrics import recall
from repro.spec import build_index, registered_methods

K = 10
BUILD_SEED = 11

# method -> (spec, floor); measured mean recall@10 at recording time in the
# trailing comment.  Approximate methods get the wider margin.
FLOORS = {
    "promips": (
        "promips(c=0.9, p=0.5, m=5, kp=3, n_key=10, ksp=4)",
        0.78,  # measured 0.8667
    ),
    "dynamic": (
        "dynamic(c=0.9, p=0.5, m=5, kp=3, n_key=10, ksp=4)",
        0.78,  # measured 0.8667
    ),
    "h2alsh": ("h2alsh(c=0.9)", 0.87),  # measured 0.9500
    "rangelsh": ("rangelsh(c=0.9, n_parts=8)", 0.81),  # measured 0.8917
    "pq": (
        "pq(n_coarse=8, n_centroids=16, min_local_train=32)",
        0.92,  # measured 1.0000
    ),
    "exact": ("exact()", 1.0),  # exact by construction: no margin
    "simhash": ("simhash(n_bits=32)", 0.91),  # measured 0.9917
    "sharded": (
        "sharded(inner='promips(c=0.9, p=0.5, m=5, kp=3, n_key=10, ksp=4)',"
        " shards=3)",
        0.87,  # measured 0.9500
    ),
}


@pytest.fixture(scope="module")
def workload(latent_small, exact_topk):
    data, queries = latent_small
    exact_ids = [exact_topk(data, q, K)[0] for q in queries]
    return data, queries, exact_ids


def test_every_registered_method_has_a_floor():
    """A new method must record a floor before it ships."""
    assert set(FLOORS) == set(registered_methods())


@pytest.mark.parametrize("method", sorted(FLOORS))
def test_recall_floor(workload, method):
    data, queries, exact_ids = workload
    spec, floor = FLOORS[method]
    index = build_index(spec, data, rng=BUILD_SEED)
    recalls = [
        recall(index.search(q, k=K).ids, exact_ids[qi])
        for qi, q in enumerate(queries)
    ]
    mean_recall = float(np.mean(recalls))
    assert mean_recall >= floor, (
        f"{method} mean recall@{K} regressed to {mean_recall:.4f} "
        f"(recorded floor {floor}); if this change is intentional, "
        f"re-measure and update FLOORS"
    )


def test_sharded_exact_recall_is_perfect(workload):
    """Sharding an exact method must not cost a single hit."""
    data, queries, exact_ids = workload
    index = build_index("sharded(inner='exact()', shards=4)", data, rng=BUILD_SEED)
    for qi, q in enumerate(queries):
        assert recall(index.search(q, k=K).ids, exact_ids[qi]) == 1.0
