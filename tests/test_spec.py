"""Tests for repro.spec — IndexSpec, the method registry, and build_index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactMIPS
from repro.baselines.h2alsh import H2ALSH
from repro.baselines.pq import PQBasedMIPS
from repro.baselines.rangelsh import RangeLSH
from repro.baselines.simhash import SimHashMIPS
from repro.core.dynamic import DynamicProMIPS
from repro.core.promips import ProMIPS
from repro.core.rng import resolve_rng
from repro.spec import (
    IndexSpec,
    build_index,
    get_method,
    register_method,
    registered_methods,
)

# Small-but-real build parameters per method, exercised across the tests.
SPEC_STRINGS = {
    "promips": "promips(c=0.85, p=0.6, m=5, kp=3, n_key=10, ksp=4)",
    "dynamic": "dynamic(c=0.85, m=5, kp=3, n_key=10, ksp=4, rebuild_threshold=0.5)",
    "h2alsh": "h2alsh(c=0.9)",
    "rangelsh": "rangelsh(c=0.9, n_parts=8)",
    "pq": "pq(n_coarse=4, n_centroids=16, min_local_train=64)",
    "exact": "exact()",
    "simhash": "simhash(n_bits=24)",
}


@pytest.fixture(scope="module")
def small_data(latent_small):
    data, _ = latent_small
    return data[:500]


class TestParse:
    def test_name_only(self):
        assert IndexSpec.parse("exact") == IndexSpec("exact")
        assert IndexSpec.parse("exact()") == IndexSpec("exact", {})

    def test_typed_values(self):
        spec = IndexSpec.parse(
            "promips(c=0.9, m=None, kp=3, label='x', flag=True)"
        )
        assert spec.params == {
            "c": 0.9, "m": None, "kp": 3, "label": "x", "flag": True,
        }

    def test_whitespace_tolerant(self):
        assert IndexSpec.parse("  promips ( c = 0.9 ,p=0.5 ) ") == IndexSpec(
            "promips", {"c": 0.9, "p": 0.5}
        )

    def test_string_values_with_commas(self):
        spec = IndexSpec.parse("exact(note='a, b')")
        assert spec.params["note"] == "a, b"

    @pytest.mark.parametrize("bad", [
        "promips(0.9)",          # positional
        "promips(c=print(1))",   # not a literal
        "promips(**kw)",         # double-star
        "promips(c=0.9",         # unbalanced
        "1promips(c=0.9)",       # bad name
        "",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises((ValueError, TypeError)):
            IndexSpec.parse(bad)

    def test_round_trip_through_str(self):
        for text in SPEC_STRINGS.values():
            spec = IndexSpec.parse(text)
            assert IndexSpec.parse(str(spec)) == spec

    def test_coerce_forms(self):
        spec = IndexSpec("exact", {"page_size": 4096})
        assert IndexSpec.coerce(spec) is spec
        assert IndexSpec.coerce("exact(page_size=4096)") == spec
        assert IndexSpec.coerce(spec.to_dict()) == spec
        with pytest.raises(TypeError):
            IndexSpec.coerce(42)

    def test_with_params(self):
        spec = IndexSpec.parse("promips(c=0.9)").with_params(p=0.5, c=0.8)
        assert spec.params == {"c": 0.8, "p": 0.5}

    def test_numpy_scalars_normalised(self):
        spec = IndexSpec("pq", {"n_coarse": np.int64(8), "f": np.float64(0.5)})
        assert type(spec.params["n_coarse"]) is int
        assert type(spec.params["f"]) is float

    def test_rejects_non_literal_values(self):
        with pytest.raises(TypeError):
            IndexSpec("exact", {"x": object()})


class TestRegistry:
    def test_all_methods_registered(self):
        assert registered_methods() == [
            "dynamic", "exact", "h2alsh", "pq", "promips", "rangelsh",
            "sharded", "simhash",
        ]

    @pytest.mark.parametrize("alias,cls", [
        ("ProMIPS", ProMIPS),
        ("promips", ProMIPS),
        ("H2-ALSH", H2ALSH),
        ("h2alsh", H2ALSH),
        ("Range-LSH", RangeLSH),
        ("PQ-Based", PQBasedMIPS),
        ("pq", PQBasedMIPS),
        ("Exact", ExactMIPS),
        ("SimHash", SimHashMIPS),
        ("Dynamic", DynamicProMIPS),
    ])
    def test_aliases_resolve(self, alias, cls):
        assert get_method(alias) is cls

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            get_method("faiss")

    def test_method_name_attribute(self):
        assert ProMIPS.method_name == "promips"
        assert H2ALSH.method_name == "h2alsh"

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError):
            @register_method("promips")
            class Imposter:
                pass


class TestBuildIndex:
    @pytest.mark.parametrize("method", sorted(SPEC_STRINGS))
    def test_buildable_from_string(self, small_data, method):
        index = build_index(SPEC_STRINGS[method], small_data, rng=3)
        result = index.search(small_data[0], k=5)
        assert len(result.ids) == 5
        assert index.spec().method == method

    def test_spec_round_trips_current_config(self, small_data):
        for method, text in SPEC_STRINGS.items():
            index = build_index(text, small_data, rng=3)
            spec = index.spec()
            assert IndexSpec.parse(str(spec)) == spec, method

    def test_alias_and_case_insensitive(self, small_data):
        index = build_index("Exact", small_data)
        assert isinstance(index, ExactMIPS)

    def test_unknown_parameter_is_value_error(self, small_data):
        with pytest.raises(ValueError, match="promips"):
            build_index("promips(warp_speed=9)", small_data)

    def test_seed_matches_explicit_generator(self, small_data):
        a = build_index(SPEC_STRINGS["promips"], small_data, rng=11)
        b = build_index(
            SPEC_STRINGS["promips"], small_data, rng=np.random.default_rng(11)
        )
        q = small_data[7]
        ra, rb = a.search(q, k=8), b.search(q, k=8)
        assert np.array_equal(ra.ids, rb.ids)
        assert np.array_equal(ra.scores, rb.scores)


class TestResolveRng:
    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_seed_and_none(self):
        a = resolve_rng(5).standard_normal(3)
        b = resolve_rng(5).standard_normal(3)
        assert np.array_equal(a, b)
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            resolve_rng(0.5)


class TestHarnessRegistrySpecs:
    def test_default_registry_exposes_specs(self):
        from repro.data.datasets import load_dataset
        from repro.eval.harness import default_registry

        dataset = load_dataset("netflix", n=400, dim=12, n_queries=2)
        registry = default_registry(include_extras=True)
        for name in registry.names():
            spec = registry.spec_for(name, dataset)
            assert isinstance(spec, IndexSpec), name
            if spec.method == "sharded":
                # Composite: the page size lives in the inner method's spec.
                inner = IndexSpec.parse(spec.params["inner"])
                assert inner.params.get("page_size") == dataset.page_size, name
            else:
                assert spec.params.get("page_size") == dataset.page_size, name

    def test_inline_spec_builds(self):
        from repro.data.datasets import load_dataset
        from repro.eval.harness import default_registry

        dataset = load_dataset("netflix", n=400, dim=12, n_queries=2)
        registry = default_registry()
        index = registry.build("exact(page_size=1024)", dataset, seed=1)
        assert isinstance(index, ExactMIPS)
        assert index.page_size == 1024
        # Bare canonical names resolve too, not just paren-form specs.
        assert isinstance(registry.build("exact", dataset, seed=1), ExactMIPS)
        with pytest.raises(KeyError):
            registry.build("faiss", dataset, seed=1)

    def test_legacy_builder_still_works(self):
        from repro.data.datasets import load_dataset
        from repro.eval.harness import MethodRegistry

        dataset = load_dataset("netflix", n=400, dim=12, n_queries=2)
        registry = MethodRegistry()
        sentinel = object()
        registry.register("custom", lambda ds, seed: sentinel)
        assert registry.build("custom", dataset) is sentinel
        assert registry.spec_for("custom", dataset) is None
