"""End-to-end tests for the HTTP serving runtime.

The acceptance bar: a served ``/search`` answer is **bit-identical** to
calling ``index.search`` directly, for every registered method, through all
three paths a request can take — cache-cold (full search), cache-warm
(generation-checked LRU hit), and coalesced (batched through the
micro-batcher with concurrent neighbours).  JSON is safe transport for that
claim: ``json.dumps`` emits ``repr``-style shortest round-trip floats, so a
float64 score crosses the wire without loss.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.persist import save_index
from repro.serve import ServingRuntime, build_runtime, make_server
from repro.spec import build_index, registered_methods

from test_k_clamp import EDGE_SPECS

DIM = 10


class Client:
    """Minimal stdlib JSON client used by tests (and mirrored in the example)."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def get(self, path: str):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def post(self, path: str, payload=None, raw: bytes | None = None):
        body = raw if raw is not None else json.dumps(payload or {}).encode()
        request = urllib.request.Request(
            self.base + path, data=body,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())


@pytest.fixture()
def serve():
    """Factory fixture: spin up a server for a runtime, tear it down after."""
    started = []

    def start(runtime: ServingRuntime) -> Client:
        server = make_server(runtime)
        # A tight poll interval keeps server.shutdown() (which waits one
        # poll) from dominating the suite's teardown time.
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
        )
        thread.start()
        started.append((server, runtime, thread))
        return Client(server.server_address[1])

    yield start
    for server, runtime, thread in started:
        server.shutdown()
        server.server_close()
        runtime.close()
        thread.join(timeout=5)


def _build(method: str, n: int = 80, seed: int = 9):
    gen = np.random.default_rng(seed)
    data = gen.standard_normal((n, DIM))
    queries = gen.standard_normal((12, DIM))
    return build_index(EDGE_SPECS[method], data, rng=5), data, queries


def test_edge_specs_still_cover_every_method():
    # The parity sweep below quantifies over EDGE_SPECS; this guard makes a
    # newly registered method fail loudly instead of silently going untested.
    assert set(EDGE_SPECS) == set(registered_methods())


@pytest.mark.parametrize("method", sorted(EDGE_SPECS))
class TestServedParity:
    """Served answers == direct index.search, bit for bit, on every path."""

    def test_cold_warm_and_coalesced(self, serve, method):
        index, data, queries = _build(method)
        client = serve(ServingRuntime(index, max_wait_ms=5.0, cache_size=64))
        k = 5
        direct = {i: index.search(q, k=k) for i, q in enumerate(queries)}

        # Cache-cold: every query straight through the coalescer.
        for i, q in enumerate(queries):
            code, served = client.post("/search", {"query": q.tolist(), "k": k})
            assert code == 200 and served["cached"] is False
            assert served["ids"] == direct[i].ids.tolist()
            assert served["scores"] == direct[i].scores.tolist()

        # Cache-warm: identical bytes → identical payload, flagged cached.
        for i, q in enumerate(queries):
            code, served = client.post("/search", {"query": q.tolist(), "k": k})
            assert code == 200 and served["cached"] is True
            assert served["ids"] == direct[i].ids.tolist()
            assert served["scores"] == direct[i].scores.tolist()

        # Coalesced: concurrent cold queries (fresh cache) share ticks.
        runtime = ServingRuntime(index, max_wait_ms=20.0, cache_size=0)
        concurrent = serve(runtime)
        with ThreadPoolExecutor(max_workers=len(queries)) as pool:
            answers = list(pool.map(
                lambda q: concurrent.post("/search", {"query": q.tolist(), "k": k}),
                queries,
            ))
        for i, (code, served) in enumerate(answers):
            assert code == 200
            assert served["ids"] == direct[i].ids.tolist()
            assert served["scores"] == direct[i].scores.tolist()
        # The telemetry proves at least some requests actually coalesced.
        assert runtime.telemetry.snapshot()["batch"]["dispatches"] >= 1

    def test_search_batch_matches_search_many(self, serve, method):
        index, data, queries = _build(method)
        client = serve(ServingRuntime(index, cache_size=0))
        k = 4
        code, served = client.post(
            "/search_batch", {"queries": queries.tolist(), "k": k}
        )
        assert code == 200 and served["n_queries"] == len(queries)
        batch = index.search_many(queries, k=k)
        for i, row in enumerate(batch):
            assert served["ids"][i] == row.ids.tolist()
            assert served["scores"][i] == row.scores.tolist()


class TestEnvelopeBoot:
    """The server boots from a persisted .npz envelope, bit-identically."""

    @pytest.mark.parametrize("method", ["promips", "dynamic", "sharded"])
    def test_served_from_envelope_matches_builder(self, serve, tmp_path, method):
        index, data, queries = _build(method)
        path = save_index(index, tmp_path / "idx.npz")
        runtime = build_runtime(index_path=path, max_wait_ms=1.0)
        client = serve(runtime)
        for q in queries[:4]:
            code, served = client.post("/search", {"query": q.tolist(), "k": 3})
            direct = index.search(q, k=3)
            assert code == 200
            assert served["ids"] == direct.ids.tolist()
            assert served["scores"] == direct.scores.tolist()

    def test_build_runtime_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            build_runtime()
        with pytest.raises(ValueError, match="exactly one"):
            build_runtime(spec="exact()", index_path=tmp_path / "idx.npz",
                          data=np.ones((4, 2)))
        with pytest.raises(ValueError, match="requires data"):
            build_runtime(spec="exact()")


class TestMutationEndpoints:
    def _dynamic_client(self, serve, spec=EDGE_SPECS["dynamic"]):
        gen = np.random.default_rng(13)
        data = gen.standard_normal((50, DIM))
        index = build_index(spec, data, rng=5)
        return serve(ServingRuntime(index, max_wait_ms=1.0)), data

    def test_insert_visible_and_cache_invalidated(self, serve):
        client, data = self._dynamic_client(serve)
        q = data[0].tolist()
        code, cold = client.post("/search", {"query": q, "k": 3})
        assert code == 200 and cold["cached"] is False
        code, warm = client.post("/search", {"query": q, "k": 3})
        assert code == 200 and warm["cached"] is True
        code, inserted = client.post(
            "/insert", {"vector": (np.asarray(q) * 40.0).tolist()}
        )
        assert code == 200 and inserted["generation"] == 1
        code, after = client.post("/search", {"query": q, "k": 3})
        assert code == 200 and after["cached"] is False
        assert after["ids"][0] == inserted["id"]

    def test_delete_unknown_id_is_404(self, serve):
        client, _ = self._dynamic_client(serve)
        code, payload = client.post("/delete", {"id": 12345})
        assert code == 404 and "12345" in payload["error"]

    def test_delete_removes_point(self, serve):
        client, data = self._dynamic_client(serve)
        q = data[0].tolist()
        code, before = client.post("/search", {"query": q, "k": 2})
        winner = before["ids"][0]
        code, deleted = client.post("/delete", {"id": winner})
        assert code == 200 and deleted == {"deleted": winner, "generation": 1}
        code, after = client.post("/search", {"query": q, "k": 2})
        assert winner not in after["ids"]

    def test_immutable_method_rejects_mutations(self, serve):
        index, data, _ = _build("exact")
        client = serve(ServingRuntime(index))
        code, payload = client.post("/insert", {"vector": data[0].tolist()})
        assert code == 400 and "does not support insert" in payload["error"]
        code, payload = client.post("/delete", {"id": 0})
        assert code == 400 and "does not support delete" in payload["error"]

    def test_sharded_dynamic_mutations(self, serve):
        client, data = self._dynamic_client(
            serve, spec=("sharded(inner='dynamic(c=0.85, m=4, kp=2, n_key=6, "
                         "ksp=3)', shards=3)")
        )
        code, inserted = client.post(
            "/insert", {"vector": (data[0] * 40.0).tolist()}
        )
        assert code == 200
        code, served = client.post("/search", {"query": data[0].tolist(), "k": 1})
        assert served["ids"] == [inserted["id"]]


class TestBackgroundMaintenance:
    """Serving + the background maintenance engine: rebuilds happen off the
    request path, deleted ids never resurface, and /stats reports them."""

    MAINT_SPEC = (
        "dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3, "
        "rebuild_threshold=0.1, compact_threshold=0.1)"
    )

    def test_stats_report_maintenance_state(self, serve):
        index, _, _ = _build("exact")
        client = serve(ServingRuntime(index))
        code, stats = client.get("/stats")
        assert code == 200 and stats["maintenance"] == {"enabled": False}

        dyn_index, _, _ = _build("dynamic")
        runtime = ServingRuntime(dyn_index)
        client = serve(runtime)
        assert runtime.maintenance is not None
        code, health = client.get("/healthz")
        assert code == 200 and health["maintenance"] is True
        code, stats = client.get("/stats")
        maint = stats["maintenance"]
        assert maint["enabled"] is True and maint["running"] is True
        assert maint["targets"] == 1 and maint["rebuilds"] == 0

    def test_background_compaction_under_serving(self, serve):
        gen = np.random.default_rng(21)
        data = gen.standard_normal((80, DIM))
        index = build_index(self.MAINT_SPEC, data, rng=5)
        runtime = ServingRuntime(index, max_wait_ms=1.0, maintenance_poll_ms=1.0)
        client = serve(runtime)
        q = data[0].tolist()
        code, cold = client.post("/search", {"query": q, "k": 20})
        assert code == 200 and cold["cached"] is False
        code, warm = client.post("/search", {"query": q, "k": 20})
        assert code == 200 and warm["cached"] is True

        doomed = cold["ids"][:12]  # 12 > 0.1 * 80 -> compaction due
        for point_id in doomed:
            code, _ = client.post("/delete", {"id": point_id})
            assert code == 200
        assert runtime.maintenance.quiesce(timeout=30.0)

        maint = client.get("/stats")[1]["maintenance"]
        assert maint["rebuilds"] >= 1
        assert maint["reclaimed_bytes"] > 0
        assert maint["in_flight"] is None
        # Quiesced means the pressure is back under the configured ratio —
        # tombstones that landed after the compaction fired may remain.
        assert index.maintenance_due() is None
        assert index.tombstone_count <= 0.1 * index.indexed_points

        # The cache generation moved (mutations + swap): a fresh answer,
        # and none of the deleted ids in it.
        code, after = client.post("/search", {"query": q, "k": 20})
        assert code == 200 and after["cached"] is False
        assert not set(after["ids"]) & set(doomed)
        code, rewarm = client.post("/search", {"query": q, "k": 20})
        assert code == 200 and rewarm["cached"] is True
        assert rewarm["ids"] == after["ids"]

    def test_sharded_dynamic_maintenance_staggers_per_shard(self, serve):
        gen = np.random.default_rng(22)
        data = gen.standard_normal((90, DIM))
        spec = (
            "sharded(inner='dynamic(c=0.85, m=4, kp=2, n_key=6, ksp=3, "
            "rebuild_threshold=0.1)', shards=3)"
        )
        index = build_index(spec, data, rng=5)
        runtime = ServingRuntime(index, max_wait_ms=1.0, maintenance_poll_ms=1.0)
        client = serve(runtime)
        assert runtime.maintenance is not None
        assert runtime.maintenance.stats()["targets"] == 3
        inserted = []
        for vec in gen.standard_normal((30, DIM)):
            code, payload = client.post("/insert", {"vector": vec.tolist()})
            assert code == 200
            inserted.append(payload["id"])
        assert runtime.maintenance.quiesce(timeout=30.0)
        assert all(
            shard.maintenance_due() is None for shard in index.shards
        )
        code, served = client.post(
            "/search", {"query": data[1].tolist(), "k": 5}
        )
        assert code == 200 and len(served["ids"]) == 5

    def test_failed_runtime_construction_leaks_no_engine(self):
        # An invalid coalescer config must not leave a live maintenance
        # thread (or a deferred index) behind an unconstructed runtime.
        index, _, _ = _build("dynamic")
        with pytest.raises(ValueError, match="max_batch"):
            ServingRuntime(index, max_batch=0)
        assert index.defer_maintenance is False
        assert not any(
            t.name == "repro-maintenance" for t in threading.enumerate()
        )

    def test_maintenance_disabled_falls_back_to_synchronous(self, serve):
        gen = np.random.default_rng(23)
        data = gen.standard_normal((60, DIM))
        index = build_index(self.MAINT_SPEC, data, rng=5)
        runtime = ServingRuntime(index, maintenance=False)
        client = serve(runtime)
        assert runtime.maintenance is None
        assert index.defer_maintenance is False
        for point_id in range(8):  # 8 > 0.1 * 60: compacts inside /delete
            code, _ = client.post("/delete", {"id": point_id})
            assert code == 200
        assert index.rebuilds >= 1
        assert index.tombstone_count <= 0.1 * index.indexed_points
        code, served = client.post(
            "/search", {"query": data[20].tolist(), "k": 10}
        )
        assert code == 200
        assert not set(served["ids"]) & set(range(8))


class TestInspectionEndpoints:
    def test_healthz(self, serve):
        index, _, _ = _build("promips")
        client = serve(ServingRuntime(index))
        code, health = client.get("/healthz")
        assert code == 200
        assert health["status"] == "ok"
        assert health["method"] == "promips"
        assert health["dim"] == DIM and health["n_live"] == 80
        assert health["coalescing"] is True

    def test_stats_reflect_traffic(self, serve):
        index, data, queries = _build("exact")
        client = serve(ServingRuntime(index, max_wait_ms=1.0))
        q = queries[0].tolist()
        client.post("/search", {"query": q, "k": 2})
        client.post("/search", {"query": q, "k": 2})
        code, stats = client.get("/stats")
        assert code == 200
        assert stats["requests_by_endpoint"]["search"] == 2
        assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1
        assert stats["cache"]["hit_rate"] == pytest.approx(0.5)
        assert stats["latency"]["count"] == 2
        assert stats["latency"]["p50_ms"] >= 0.0
        assert stats["qps"] > 0
        assert stats["index"]["method"] == "exact"

    def test_search_params_forwarded(self, serve):
        index, data, queries = _build("promips")
        client = serve(ServingRuntime(index, max_wait_ms=1.0, cache_size=0))
        q = queries[0]
        code, served = client.post(
            "/search", {"query": q.tolist(), "k": 3, "params": {"c": 0.5}}
        )
        assert code == 200
        direct = index.search(q, k=3, c=0.5)
        assert served["ids"] == direct.ids.tolist()
        assert served["scores"] == direct.scores.tolist()


class TestHTTPErrors:
    @pytest.fixture()
    def client(self, serve):
        index, _, _ = _build("exact")
        return serve(ServingRuntime(index))

    def test_unknown_path_404(self, client):
        code, payload = client.get("/nope")
        assert code == 404 and "unknown path" in payload["error"]
        code, payload = client.post("/nope", {})
        assert code == 404

    def test_malformed_json_400(self, client):
        code, payload = client.post("/search", raw=b"{not json")
        assert code == 400 and "not valid JSON" in payload["error"]

    def test_non_object_body_400(self, client):
        code, payload = client.post("/search", raw=b"[1, 2, 3]")
        assert code == 400 and "JSON object" in payload["error"]

    def test_missing_field_400(self, client):
        code, payload = client.post("/search", {"k": 3})
        assert code == 400 and "query" in payload["error"]

    def test_bad_k_400(self, client):
        q = [0.0] * DIM
        for bad in (0, -4, 2.5, "many"):
            code, payload = client.post("/search", {"query": q, "k": bad})
            assert code == 400
            assert "k must be a positive integer" in payload["error"]

    def test_wrong_dimension_400(self, client):
        code, payload = client.post("/search", {"query": [1.0, 2.0], "k": 1})
        assert code == 400 and "dimension" in payload["error"]

    def test_non_finite_query_400(self, client):
        q = [float("nan")] * DIM
        code, payload = client.post("/search", {"query": q, "k": 1})
        assert code == 400 and "non-finite" in payload["error"]

    def test_bad_params_object_400(self, client):
        q = [0.0] * DIM
        code, payload = client.post("/search", {"query": q, "params": [1]})
        assert code == 400 and "params" in payload["error"]

    def test_errors_counted_in_stats(self, client):
        client.post("/search", {"k": 3})
        code, stats = client.get("/stats")
        assert stats["errors_by_endpoint"]["search"] >= 1


class TestIntegralFloatK:
    def test_json_float_k_accepted(self, serve):
        # JSON clients routinely produce 5.0; validate_k normalises it.
        index, _, queries = _build("exact")
        client = serve(ServingRuntime(index, max_wait_ms=1.0))
        code, served = client.post(
            "/search", {"query": queries[0].tolist(), "k": 5.0}
        )
        assert code == 200 and len(served["ids"]) == 5
