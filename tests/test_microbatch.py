"""Tests for repro.serve.microbatch — coalescing correctness and hygiene."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve.microbatch import MicroBatcher
from repro.serve.telemetry import Telemetry
from repro.spec import build_index


@pytest.fixture(scope="module")
def exact_setup():
    gen = np.random.default_rng(21)
    data = gen.standard_normal((400, 12))
    index = build_index("exact()", data, rng=5)
    queries = gen.standard_normal((64, 12))
    return index, queries


class TestCoalescedCorrectness:
    def test_concurrent_submits_match_direct_search(self, exact_setup):
        index, queries = exact_setup
        with MicroBatcher(index, max_batch=16, max_wait_ms=5.0) as batcher:
            with ThreadPoolExecutor(max_workers=16) as pool:
                futures = list(
                    pool.map(lambda q: batcher.submit(q, k=5), queries[:16])
                )
            for q, future in zip(queries[:16], futures):
                served = future.result(timeout=10)
                direct = index.search(q, k=5)
                np.testing.assert_array_equal(served.ids, direct.ids)
                np.testing.assert_array_equal(served.scores, direct.scores)

    def test_requests_actually_coalesce(self, exact_setup):
        index, queries = exact_setup
        telemetry = Telemetry()
        # A long tick plus a burst larger than one GEMV guarantees occupancy.
        with MicroBatcher(
            index, max_batch=32, max_wait_ms=200.0, telemetry=telemetry
        ) as batcher:
            futures = [batcher.submit(q, k=3) for q in queries[:12]]
            for future in futures:
                future.result(timeout=10)
        batch = telemetry.snapshot()["batch"]
        assert batch["dispatches"] < 12  # strictly fewer dispatches than requests
        assert batch["mean_occupancy"] > 1.0
        occupancies = [r.result().stats.extras["coalesced"] for r in futures]
        assert max(occupancies) > 1

    def test_max_batch_bounds_occupancy(self, exact_setup):
        index, queries = exact_setup
        telemetry = Telemetry()
        with MicroBatcher(
            index, max_batch=4, max_wait_ms=200.0, telemetry=telemetry
        ) as batcher:
            futures = [batcher.submit(q, k=2) for q in queries[:10]]
            for future in futures:
                future.result(timeout=10)
        histogram = telemetry.snapshot()["batch"]["histogram"]
        assert all(int(size) <= 4 for size in histogram)

    def test_per_request_k_trimmed_from_max(self, exact_setup):
        index, queries = exact_setup
        with MicroBatcher(index, max_batch=8, max_wait_ms=200.0) as batcher:
            small = batcher.submit(queries[0], k=2)
            large = batcher.submit(queries[1], k=9)
            small_result = small.result(timeout=10)
            large_result = large.result(timeout=10)
        assert len(small_result) == 2
        assert len(large_result) == 9
        # Trimming from the batched k_max is exact for the exact scan.
        direct = index.search(queries[0], k=2)
        np.testing.assert_array_equal(small_result.ids, direct.ids)
        np.testing.assert_array_equal(small_result.scores, direct.scores)

    def test_distinct_kwargs_do_not_share_a_batch(self):
        gen = np.random.default_rng(3)
        data = gen.standard_normal((200, 10))
        index = build_index(
            "promips(c=0.85, p=0.6, m=4, kp=2, n_key=6, ksp=3)", data, rng=5
        )
        q = gen.standard_normal(10)
        with MicroBatcher(index, max_batch=8, max_wait_ms=200.0) as batcher:
            plain = batcher.submit(q, k=3)
            override = batcher.submit(q, k=3, c=0.5)
            plain_result = plain.result(timeout=10)
            override_result = override.result(timeout=10)
        np.testing.assert_array_equal(
            plain_result.ids, index.search(q, k=3).ids
        )
        np.testing.assert_array_equal(
            override_result.ids, index.search(q, k=3, c=0.5).ids
        )

    def test_works_for_every_tick_size(self, exact_setup):
        index, queries = exact_setup
        # max_wait_ms=0: each request dispatches as soon as the dispatcher
        # sees it — results must still be exact.
        with MicroBatcher(index, max_batch=8, max_wait_ms=0.0) as batcher:
            for q in queries[:5]:
                served = batcher.search(q, k=4)
                np.testing.assert_array_equal(served.ids, index.search(q, k=4).ids)


class TestValidation:
    def test_bad_query_fails_fast_in_caller(self, exact_setup):
        index, _ = exact_setup
        with MicroBatcher(index) as batcher:
            with pytest.raises(ValueError, match="dimension"):
                batcher.submit(np.ones(99), k=1)
            with pytest.raises(ValueError, match="k must be a positive integer"):
                batcher.submit(np.ones(12), k=0)
            with pytest.raises(ValueError, match="non-finite"):
                batcher.submit(np.full(12, np.nan), k=1)

    def test_bad_request_never_poisons_neighbours(self, exact_setup):
        index, queries = exact_setup
        with MicroBatcher(index, max_batch=8, max_wait_ms=100.0) as batcher:
            good = batcher.submit(queries[0], k=3)
            with pytest.raises(ValueError):
                batcher.submit(np.ones(5), k=3)  # wrong dim, rejected at submit
            result = good.result(timeout=10)
        np.testing.assert_array_equal(result.ids, index.search(queries[0], k=3).ids)

    def test_rejects_bad_config(self, exact_setup):
        index, _ = exact_setup
        with pytest.raises(ValueError):
            MicroBatcher(index, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(index, max_wait_ms=-1.0)

    def test_unhashable_kwargs_rejected_at_submit(self, exact_setup):
        # The dispatcher groups requests by a hashed kwargs key; an
        # unhashable value must fail in the caller's thread, not kill the
        # dispatcher (which would hang every later request forever).
        index, queries = exact_setup
        with MicroBatcher(index, max_wait_ms=1.0) as batcher:
            with pytest.raises(ValueError, match="hashable"):
                batcher.submit(queries[0], k=2, c=[0.8, 0.9])
            # The batcher is still alive and serving.
            assert len(batcher.search(queries[0], k=2)) == 2


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_submits(self, exact_setup):
        index, queries = exact_setup
        batcher = MicroBatcher(index, max_wait_ms=1.0)
        batcher.search(queries[0], k=1)
        batcher.close()
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(queries[0], k=1)

    def test_pending_requests_answered_on_close(self, exact_setup):
        index, queries = exact_setup
        batcher = MicroBatcher(index, max_batch=64, max_wait_ms=10_000.0)
        futures = [batcher.submit(q, k=2) for q in queries[:4]]
        # The tick would hold for 10s waiting for company; close() must
        # flush the queue instead of abandoning it.
        start = time.monotonic()
        batcher.close()
        for future in futures:
            assert len(future.result(timeout=1)) == 2
        assert time.monotonic() - start < 5.0

    def test_dispatch_errors_propagate_to_waiters(self, exact_setup):
        _, queries = exact_setup

        class Exploding:
            dim = 12

            def search_many(self, queries, k=1, **kwargs):
                raise RuntimeError("storage offline")

        with MicroBatcher(Exploding(), max_batch=4, max_wait_ms=50.0) as batcher:
            futures = [batcher.submit(q, k=1) for q in queries[:3]]
            for future in futures:
                with pytest.raises(RuntimeError, match="storage offline"):
                    future.result(timeout=10)

    def test_dispatcher_survives_failures_outside_search_many(self, exact_setup):
        # A malformed batch blows up in *result assembly*, not in
        # search_many itself; the dispatcher's catch-all must fail the
        # affected futures and keep serving later requests.
        index, queries = exact_setup

        class Flaky:
            dim = 12

            def __init__(self):
                self.bad = True

            def search_many(self, batch_queries, k=1, **kwargs):
                if self.bad:
                    return None  # indexing None raises after the call
                return index.search_many(batch_queries, k=k, **kwargs)

        flaky = Flaky()
        with MicroBatcher(flaky, max_batch=4, max_wait_ms=10.0) as batcher:
            with pytest.raises(TypeError):
                batcher.search(queries[0], k=2)
            flaky.bad = False
            recovered = batcher.search(queries[0], k=2)
        np.testing.assert_array_equal(
            recovered.ids, index.search(queries[0], k=2).ids
        )

    def test_shared_index_lock_is_honoured(self, exact_setup):
        index, queries = exact_setup
        lock = threading.Lock()
        with MicroBatcher(index, max_wait_ms=0.0, index_lock=lock) as batcher:
            with lock:
                future = batcher.submit(queries[0], k=1)
                time.sleep(0.05)
                assert not future.done()  # dispatcher blocked on our lock
            assert len(future.result(timeout=10)) == 1
