"""Tests for repro.stats.chi2 — the chi-square CDF and inverse used by the
probability guarantees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import chi2 as scipy_chi2

from repro.stats.chi2 import ChiSquare, chi2_cdf, chi2_pdf, chi2_ppf


class TestChi2Cdf:
    @pytest.mark.parametrize("df", [1, 2, 5, 6, 8, 10, 30])
    @pytest.mark.parametrize("x", [0.01, 0.5, 1.0, 4.0, 10.0, 50.0])
    def test_matches_scipy(self, df, x):
        assert chi2_cdf(x, df) == pytest.approx(scipy_chi2.cdf(x, df), abs=1e-10)

    def test_boundaries(self):
        assert chi2_cdf(0.0, 5) == 0.0
        assert chi2_cdf(-1.0, 5) == 0.0
        assert chi2_cdf(float("inf"), 5) == 1.0

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            chi2_cdf(1.0, 0)
        with pytest.raises(ValueError):
            chi2_cdf(1.0, -3)

    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.0, max_value=300.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_matches_scipy(self, df, x):
        assert chi2_cdf(x, df) == pytest.approx(scipy_chi2.cdf(x, df), abs=1e-8)


class TestChi2Pdf:
    @pytest.mark.parametrize("df", [1, 3, 6, 12])
    @pytest.mark.parametrize("x", [0.1, 1.0, 5.0, 20.0])
    def test_matches_scipy(self, df, x):
        assert chi2_pdf(x, df) == pytest.approx(scipy_chi2.pdf(x, df), rel=1e-9)

    def test_zero_below_support(self):
        assert chi2_pdf(-1.0, 4) == 0.0
        assert chi2_pdf(0.0, 4) == 0.0


class TestChi2Ppf:
    @pytest.mark.parametrize("df", [1, 2, 5, 6, 8, 10])
    @pytest.mark.parametrize("p", [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99])
    def test_matches_scipy(self, df, p):
        assert chi2_ppf(p, df) == pytest.approx(scipy_chi2.ppf(p, df), rel=1e-6)

    def test_zero_probability(self):
        assert chi2_ppf(0.0, 7) == 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            chi2_ppf(1.0, 5)  # p must be < 1
        with pytest.raises(ValueError):
            chi2_ppf(-0.1, 5)
        with pytest.raises(ValueError):
            chi2_ppf(0.5, 0)

    @given(
        st.integers(min_value=1, max_value=30),
        st.floats(min_value=0.001, max_value=0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_with_cdf(self, df, p):
        x = chi2_ppf(p, df)
        assert chi2_cdf(x, df) == pytest.approx(p, abs=1e-7)

    def test_monotone_in_p(self):
        values = [chi2_ppf(p, 6) for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)


class TestChiSquareClass:
    def test_wraps_functions(self):
        dist = ChiSquare(6)
        assert dist.cdf(5.35) == pytest.approx(chi2_cdf(5.35, 6))
        assert dist.ppf(0.5) == pytest.approx(chi2_ppf(0.5, 6))

    def test_ppf_cache_stable(self):
        dist = ChiSquare(8)
        assert dist.ppf(0.7) == dist.ppf(0.7)

    def test_repr(self):
        assert "6" in repr(ChiSquare(6))

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            ChiSquare(0)
