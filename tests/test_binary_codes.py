"""Tests for repro.core.binary_codes — Theorems 3/4 and the group structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.binary_codes import (
    BinaryCodeGroups,
    group_lower_bounds,
    pack_code,
    sign_bits,
)


class TestSignBitsAndPack:
    def test_sign_bits_basic(self):
        assert np.array_equal(sign_bits(np.array([1.0, -2.0, 0.0])), [1, 0, 1])

    def test_sign_bits_batch(self):
        x = np.array([[1.0, -1.0], [-0.5, 2.0]])
        assert np.array_equal(sign_bits(x), [[1, 0], [0, 1]])

    def test_pack_code_weights(self):
        # bit i has weight 2^i.
        assert pack_code(np.array([[1, 0, 0]]))[0] == 1
        assert pack_code(np.array([[0, 1, 0]]))[0] == 2
        assert pack_code(np.array([[1, 1, 1]]))[0] == 7

    def test_pack_rejects_wide_codes(self):
        with pytest.raises(ValueError):
            pack_code(np.zeros((1, 64), dtype=np.uint64))

    def test_pack_roundtrip_distinct(self):
        bits = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        codes = pack_code(bits)
        assert len(set(codes.tolist())) == 4


class TestTheorem3:
    """LB(group) ≤ dis(P(o), P(q)) for every member o of the group."""

    @given(
        arrays(np.float64, (30, 6), elements=st.floats(-50, 50)),
        arrays(np.float64, (6,), elements=st.floats(-50, 50)),
    )
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_holds_for_all_points(self, projected, query_proj):
        l1 = np.abs(projected).sum(axis=1)  # stand-in for original 1-norms
        groups = BinaryCodeGroups(projected, l1)
        lbs = groups.lower_bounds(query_proj)
        actual = np.linalg.norm(projected - query_proj[None, :], axis=1)
        for g in range(groups.n_groups):
            members = groups.group(g).member_ids
            assert np.all(actual[members] >= lbs[g] - 1e-9)

    def test_own_group_bound_is_zero(self):
        gen = np.random.default_rng(0)
        projected = gen.standard_normal((50, 5))
        groups = BinaryCodeGroups(projected, np.abs(projected).sum(axis=1))
        lbs = groups.lower_bounds(projected[0])
        bits_q = sign_bits(projected[0])
        own = [
            g for g in range(groups.n_groups)
            if np.array_equal(groups.group_bits[g], bits_q)
        ]
        assert len(own) == 1
        assert lbs[own[0]] == pytest.approx(0.0, abs=1e-12)

    def test_matches_manual_formula(self):
        gen = np.random.default_rng(1)
        projected = gen.standard_normal((20, 4))
        q = gen.standard_normal(4)
        groups = BinaryCodeGroups(projected, np.abs(projected).sum(axis=1))
        lbs = groups.lower_bounds(q)
        qbits = sign_bits(q)
        qabs = np.abs(q)
        m = 4
        for g in range(groups.n_groups):
            xor = groups.group_bits[g] ^ qbits
            manual = float(xor @ qabs) / np.sqrt(m)
            assert lbs[g] == pytest.approx(manual, abs=1e-12)


class TestTheorem4:
    """dis(o, q) ≤ ‖o‖₁ + ‖q‖₁ (used to upper-bound the Test A denominator)."""

    @given(
        arrays(np.float64, (8,), elements=st.floats(-100, 100)),
        arrays(np.float64, (8,), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=100, deadline=None)
    def test_l2_distance_below_l1_norm_sum(self, o, q):
        dist = float(np.linalg.norm(o - q))
        assert dist <= np.abs(o).sum() + np.abs(q).sum() + 1e-9


class TestGroupStructure:
    def test_groups_partition_points(self):
        gen = np.random.default_rng(2)
        projected = gen.standard_normal((200, 5))
        groups = BinaryCodeGroups(projected, np.abs(projected).sum(axis=1))
        members = np.concatenate(
            [groups.group(g).member_ids for g in range(groups.n_groups)]
        )
        assert sorted(members.tolist()) == list(range(200))

    def test_members_share_the_group_code(self):
        gen = np.random.default_rng(3)
        projected = gen.standard_normal((100, 4))
        groups = BinaryCodeGroups(projected, np.abs(projected).sum(axis=1))
        bits = sign_bits(projected)
        for g in range(groups.n_groups):
            grp = groups.group(g)
            assert np.all(bits[grp.member_ids] == groups.group_bits[g])

    def test_members_sorted_by_l1(self):
        gen = np.random.default_rng(4)
        projected = gen.standard_normal((150, 4))
        l1 = np.abs(gen.standard_normal((150, 20))).sum(axis=1)
        groups = BinaryCodeGroups(projected, l1)
        for g in range(groups.n_groups):
            member_l1 = l1[groups.group(g).member_ids]
            assert np.all(np.diff(member_l1) >= 0)

    def test_min_l1_representative(self):
        gen = np.random.default_rng(5)
        projected = gen.standard_normal((80, 4))
        l1 = np.abs(gen.standard_normal((80, 10))).sum(axis=1)
        groups = BinaryCodeGroups(projected, l1)
        for g in range(groups.n_groups):
            grp = groups.group(g)
            assert grp.min_l1_id == grp.member_ids[0]
            assert grp.min_l1 == pytest.approx(l1[grp.member_ids].min())

    def test_group_count_bounded_by_2m(self):
        gen = np.random.default_rng(6)
        projected = gen.standard_normal((5000, 4))
        groups = BinaryCodeGroups(projected, np.abs(projected).sum(axis=1))
        assert groups.n_groups <= 2**4

    def test_size_accounting(self):
        gen = np.random.default_rng(7)
        projected = gen.standard_normal((64, 8))
        groups = BinaryCodeGroups(projected, np.abs(projected).sum(axis=1))
        assert groups.size_bytes() == 64 * (1 + 8)
        assert groups.summary_size_bytes() == groups.n_groups * (1 + 8 + 8)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            BinaryCodeGroups(np.empty((0, 3)), np.empty(0))
        with pytest.raises(ValueError):
            BinaryCodeGroups(np.ones((5, 3)), np.ones(4))

    def test_rejects_wrong_query_width(self):
        groups = BinaryCodeGroups(np.ones((5, 3)), np.ones(5))
        with pytest.raises(ValueError):
            groups.lower_bounds(np.ones(4))


class TestGroupLowerBoundsFunction:
    def test_zero_when_codes_match(self):
        bits = np.array([[1, 0, 1]])
        lb = group_lower_bounds(bits, np.array([1, 0, 1]), np.array([2.0, 3.0, 4.0]))
        assert lb[0] == 0.0

    def test_accumulates_mismatched_coordinates(self):
        bits = np.array([[0, 0, 0]])
        lb = group_lower_bounds(bits, np.array([1, 0, 1]), np.array([2.0, 3.0, 4.0]))
        assert lb[0] == pytest.approx((2.0 + 4.0) / np.sqrt(3))
