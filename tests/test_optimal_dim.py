"""Tests for repro.core.optimal_dim — the §V-B projected-dimension optimizer."""

from __future__ import annotations

import pytest

from repro.core.optimal_dim import optimized_projection_dim, quickprobe_cost


class TestQuickprobeCost:
    def test_formula(self):
        # f(m) = 2^m (m+1) + n/2^m
        assert quickprobe_cost(3, 800) == pytest.approx(8 * 4 + 100)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            quickprobe_cost(0, 100)
        with pytest.raises(ValueError):
            quickprobe_cost(3, 0)


class TestOptimizedDim:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (17770, 6),      # Netflix  (§VIII-A-4)
            (31420, 6),      # P53
            (624961, 8),     # Yahoo
            (11164866, 10),  # Sift
        ],
    )
    def test_reproduces_paper_values(self, n, expected):
        assert optimized_projection_dim(n) == expected

    def test_is_global_minimum(self):
        for n in (1000, 50000, 3_000_000):
            m = optimized_projection_dim(n)
            best = quickprobe_cost(m, n)
            for other in range(2, 25):
                assert best <= quickprobe_cost(other, n) + 1e-9

    def test_monotone_in_n(self):
        ms = [optimized_projection_dim(n) for n in (100, 10_000, 1_000_000, 100_000_000)]
        assert ms == sorted(ms)

    def test_respects_bounds(self):
        assert optimized_projection_dim(10, m_min=4, m_max=6) in (4, 5, 6)
        assert optimized_projection_dim(10**12, m_min=2, m_max=8) == 8

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            optimized_projection_dim(0)
        with pytest.raises(ValueError):
            optimized_projection_dim(100, m_min=5, m_max=3)
        with pytest.raises(ValueError):
            optimized_projection_dim(100, m_min=0)
