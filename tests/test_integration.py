"""Cross-module integration tests: the four methods side by side, and the
paper's qualitative claims checked end-to-end at test scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactMIPS
from repro.baselines.h2alsh import H2ALSH
from repro.baselines.pq import PQBasedMIPS
from repro.baselines.rangelsh import RangeLSH
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import overall_ratio, recall


@pytest.fixture(scope="module")
def world(latent_medium):
    data, queries = latent_medium
    gt = GroundTruth(data, queries, k_max=20)
    indexes = {
        "exact": ExactMIPS(data),
        "promips": ProMIPS.build(data, ProMIPSParams(), rng=2),
        "h2alsh": H2ALSH(data, rng=2),
        "rangelsh": RangeLSH(data, rng=2),
        "pq": PQBasedMIPS(data, rng=2, n_coarse=24, n_centroids=32,
                          min_local_train=150, n_subspaces=8),
    }
    return data, queries, gt, indexes


class TestAllMethods:
    def test_ids_within_dataset(self, world):
        data, queries, _, indexes = world
        for name, index in indexes.items():
            result = index.search(queries[0], k=10)
            assert np.all(result.ids >= 0), name
            assert np.all(result.ids < len(data)), name

    def test_no_duplicate_ids(self, world):
        _, queries, _, indexes = world
        for name, index in indexes.items():
            result = index.search(queries[1], k=10)
            assert len(set(result.ids.tolist())) == len(result.ids), name

    def test_quality_floor(self, world):
        _, queries, gt, indexes = world
        for name, index in indexes.items():
            ratios = []
            for qi, q in enumerate(queries):
                _, exact_ips = gt.topk(qi, 10)
                ratios.append(overall_ratio(index.search(q, k=10).scores, exact_ips))
            assert float(np.mean(ratios)) >= 0.9, name

    def test_exact_is_perfect(self, world):
        _, queries, gt, indexes = world
        for qi, q in enumerate(queries):
            exact_ids, exact_ips = gt.topk(qi, 10)
            result = indexes["exact"].search(q, k=10)
            assert recall(result.ids, exact_ids) == 1.0


class TestPaperClaims:
    """Qualitative shape of the paper's evaluation, at test scale."""

    def test_promips_beats_full_scan_pages(self, world):
        """§VIII-D: the searching conditions verify far fewer points than a
        scan, and the sub-partition layout reads them near-sequentially."""
        _, queries, _, indexes = world
        exact_pages = np.mean(
            [indexes["exact"].search(q, k=10).stats.pages for q in queries]
        )
        promips_pages = np.mean(
            [indexes["promips"].search(q, k=10).stats.pages for q in queries]
        )
        assert promips_pages < exact_pages

    def test_promips_fewer_pages_than_h2alsh(self, world):
        """Fig. 7: hash-table probing plus random verification reads make
        H2-ALSH the page-heaviest method."""
        _, queries, _, indexes = world
        h2 = np.mean([indexes["h2alsh"].search(q, k=10).stats.pages for q in queries])
        pro = np.mean([indexes["promips"].search(q, k=10).stats.pages for q in queries])
        assert pro < h2

    def test_promips_lightest_index(self, world):
        """Fig. 4(a): single B+-tree vs hash tables / rotation matrices."""
        _, _, _, indexes = world
        assert indexes["promips"].index_size_bytes() < indexes["h2alsh"].index_size_bytes()

    def test_pages_grow_with_k(self, world):
        """Fig. 7: more requested answers ⇒ larger verified region."""
        _, queries, _, indexes = world
        pro = indexes["promips"]
        pages_small = np.mean([pro.search(q, k=5).stats.pages for q in queries])
        pages_large = np.mean([pro.search(q, k=50).stats.pages for q in queries])
        assert pages_large >= pages_small

    def test_accuracy_grows_with_p(self, world):
        """Fig. 11: higher guarantee probability ⇒ higher overall ratio and
        more page accesses."""
        _, queries, gt, indexes = world
        pro = indexes["promips"]
        stats = {}
        for p in (0.3, 0.9):
            ratios, pages = [], []
            for qi, q in enumerate(queries):
                _, exact_ips = gt.topk(qi, 10)
                res = pro.search(q, k=10, p=p)
                ratios.append(overall_ratio(res.scores, exact_ips))
                pages.append(res.stats.pages)
            stats[p] = (np.mean(ratios), np.mean(pages))
        assert stats[0.9][0] >= stats[0.3][0] - 1e-6
        assert stats[0.9][1] >= stats[0.3][1]

    def test_ratio_stays_above_c(self, world):
        """Fig. 10: the measured overall ratio clears the approximation
        ratio c for every tested c."""
        _, queries, gt, indexes = world
        pro = indexes["promips"]
        for c in (0.7, 0.8, 0.9):
            ratios = []
            for qi, q in enumerate(queries):
                _, exact_ips = gt.topk(qi, 10)
                res = pro.search(q, k=10, c=c)
                ratios.append(overall_ratio(res.scores, exact_ips))
            assert float(np.mean(ratios)) >= c
