"""Tests for repro.baselines.simhash."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.simhash import SimHash, hamming_distance, hamming_to_cosine


class TestEncode:
    def test_code_range(self):
        sh = SimHash(8, 16, np.random.default_rng(0))
        codes = sh.encode(np.random.default_rng(1).standard_normal((100, 8)))
        assert codes.shape == (100,)
        assert np.all(codes < 2**16)

    def test_single_point(self):
        sh = SimHash(4, 8, np.random.default_rng(0))
        code = sh.encode(np.ones(4))
        assert np.isscalar(code) or code.shape == ()

    def test_deterministic(self):
        sh = SimHash(6, 12, np.random.default_rng(5))
        x = np.random.default_rng(6).standard_normal(6)
        assert sh.encode(x) == sh.encode(x)

    def test_identical_points_share_code(self):
        sh = SimHash(5, 10, np.random.default_rng(7))
        x = np.random.default_rng(8).standard_normal(5)
        assert sh.encode(x) == sh.encode(2.0 * x)  # scale-invariant (signs)

    def test_opposite_points_flip_all_bits(self):
        sh = SimHash(5, 10, np.random.default_rng(9))
        x = np.random.default_rng(10).standard_normal(5)
        h = hamming_distance(np.array([sh.encode(-x)]), int(sh.encode(x)))
        assert h[0] == 10

    def test_rejects_bad_params(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SimHash(0, 8, gen)
        with pytest.raises(ValueError):
            SimHash(4, 0, gen)
        with pytest.raises(ValueError):
            SimHash(4, 64, gen)

    def test_rejects_wrong_width(self):
        sh = SimHash(4, 8, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sh.encode(np.ones(5))


class TestHamming:
    def test_matches_manual_popcount(self):
        codes = np.array([0b1010, 0b1111, 0b0000], dtype=np.uint64)
        out = hamming_distance(codes, 0b1001)
        assert out.tolist() == [2, 2, 2]

    def test_zero_distance(self):
        assert hamming_distance(np.array([42], dtype=np.uint64), 42)[0] == 0


class TestCosineEstimate:
    def test_endpoints(self):
        assert hamming_to_cosine(0, 16) == pytest.approx(1.0)
        assert hamming_to_cosine(16, 16) == pytest.approx(-1.0)
        assert hamming_to_cosine(8, 16) == pytest.approx(0.0, abs=1e-12)

    def test_collision_probability_tracks_angle(self):
        """Pr[bit differs] ≈ θ/π (Charikar) — validated statistically."""
        gen = np.random.default_rng(11)
        n_bits = 4096  # many independent hyperplanes → tight estimate
        sh = SimHash(8, 63, gen)
        # Build a big batch of independent SimHashes to reach n_bits bits.
        x = gen.standard_normal(8)
        for angle_target in (0.25 * np.pi, 0.5 * np.pi):
            # Construct y at the target angle from x.
            perp = gen.standard_normal(8)
            perp -= perp @ x / (x @ x) * x
            perp /= np.linalg.norm(perp)
            y = np.cos(angle_target) * x / np.linalg.norm(x) + np.sin(angle_target) * perp
            diffs = 0
            total = 0
            for seed in range(80):
                shi = SimHash(8, 50, np.random.default_rng(seed))
                cx, cy = int(shi.encode(x)), int(shi.encode(y))
                diffs += int(hamming_distance(np.array([cx], dtype=np.uint64), cy)[0])
                total += 50
            assert diffs / total == pytest.approx(angle_target / np.pi, abs=0.05)

    def test_size_bytes(self):
        sh = SimHash(8, 16, np.random.default_rng(0))
        assert sh.size_bytes() == 16 * 8 * 8
