"""Tests for repro.eval.harness and repro.eval.reporting."""

from __future__ import annotations

import pytest

from repro.data.datasets import load_dataset
from repro.eval.ground_truth import GroundTruth
from repro.eval.harness import (
    PAGE_LATENCY_SECONDS,
    MethodRegistry,
    build_method,
    default_registry,
    run_method,
)
from repro.eval.reporting import format_series, format_table


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("netflix", n=800, dim=24, n_queries=6)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestRegistry:
    def test_paper_method_names(self, registry):
        assert registry.names() == ["ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"]

    def test_unknown_method_raises(self, registry, tiny_dataset):
        with pytest.raises(KeyError):
            registry.build("FAISS", tiny_dataset)

    def test_custom_registration(self, tiny_dataset):
        reg = MethodRegistry()
        reg.register("dummy", lambda ds, seed: object())
        assert reg.names() == ["dummy"]


class TestBuildAndRun:
    @pytest.mark.parametrize("name", ["ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"])
    def test_build_and_query_every_method(self, registry, tiny_dataset, name):
        index, report = build_method(registry, name, tiny_dataset, seed=2)
        assert report.method == name
        assert report.build_seconds >= 0
        assert report.index_bytes >= 0
        assert report.index_mb == report.index_bytes / 2**20

        gt = GroundTruth(tiny_dataset.data, tiny_dataset.queries, k_max=10)
        qr = run_method(index, tiny_dataset, gt, k=10, method=name)
        assert qr.method == name
        assert 0.0 <= qr.overall_ratio <= 1.0
        assert 0.0 <= qr.recall <= 1.0
        assert qr.pages > 0
        assert qr.cpu_ms >= 0
        # total time adds the simulated I/O cost exactly.
        assert qr.total_ms == pytest.approx(
            qr.cpu_ms + qr.pages * PAGE_LATENCY_SECONDS * 1e3
        )

    def test_all_methods_accurate_on_easy_data(self, registry, tiny_dataset):
        gt = GroundTruth(tiny_dataset.data, tiny_dataset.queries, k_max=10)
        for name in registry.names():
            index, _ = build_method(registry, name, tiny_dataset, seed=1)
            qr = run_method(index, tiny_dataset, gt, k=10, method=name)
            assert qr.overall_ratio >= 0.9, name

    def test_run_rejects_bad_k(self, registry, tiny_dataset):
        index, _ = build_method(registry, "Range-LSH", tiny_dataset)
        gt = GroundTruth(tiny_dataset.data, tiny_dataset.queries, k_max=10)
        with pytest.raises(ValueError):
            run_method(index, tiny_dataset, gt, k=0)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(
            ["method", "ratio"], [["ProMIPS", 0.99123], ["H2-ALSH", 0.98]],
            title="Fig. 5",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig. 5"
        assert "method" in lines[1]
        assert "ProMIPS" in out and "0.9912" in out

    def test_format_series_one_column_per_method(self):
        out = format_series(
            "k", [10, 20],
            {"ProMIPS": [0.99, 0.98], "PQ-Based": [0.97, 0.96]},
        )
        assert "k" in out and "ProMIPS" in out and "PQ-Based" in out
        assert "0.96" in out

    def test_format_table_string_cells(self):
        out = format_table(["a"], [["hello"]])
        assert "hello" in out
