"""Tests for repro.core.dynamic — insert/delete support (the §I maintenance
motivation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicProMIPS
from repro.core.promips import ProMIPSParams

from conftest import exact_topk_reference

PARAMS = ProMIPSParams(m=5, kp=3, n_key=12, ksp=4)


@pytest.fixture()
def dyn(latent_small):
    data, _ = latent_small
    return data, DynamicProMIPS(data[:800], PARAMS, rng=1)


class TestInsert:
    def test_inserted_point_is_findable(self, dyn):
        data, index = dyn
        spike = data[900] * 5.0  # dominant norm → must become the MIP point
        new_id = index.insert(spike)
        result = index.search(spike, k=1)
        assert result.ids[0] == new_id

    def test_ids_are_stable_and_sequential(self, dyn):
        _, index = dyn
        a = index.insert(np.ones(24))
        b = index.insert(np.ones(24) * 2)
        assert b == a + 1

    def test_delta_scanned_exactly(self, dyn):
        data, index = dyn
        for row in data[800:805]:
            index.insert(row)
        result = index.search(data[0], k=5)
        assert result.stats.extras["delta_scanned"] == index.delta_size

    def test_rebuild_triggers_and_absorbs_delta(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:400], PARAMS, rng=1, rebuild_threshold=0.05)
        for row in data[400:440]:  # 10% > 5% threshold
            index.insert(row)
        assert index.rebuilds >= 1
        assert index.delta_size < 40
        assert index.n_live == 440

    def test_search_quality_with_delta(self, dyn):
        data, index = dyn
        for row in data[800:880]:
            index.insert(row)
        live = data[:880]
        ratios = []
        for q in live[::97]:
            _, exact_ips = exact_topk_reference(live, q, 5)
            res = index.search(q, k=5)
            ratios.append(float(np.mean(res.scores / exact_ips)))
        assert float(np.mean(ratios)) >= 0.9

    def test_insert_validates_dimension(self, dyn):
        _, index = dyn
        with pytest.raises(ValueError):
            index.insert(np.ones(10))


class TestDelete:
    def test_deleted_point_never_returned(self, dyn):
        data, index = dyn
        # Delete the current exact top-1 for a query.
        q = data[3]
        top = index.search(q, k=1).ids[0]
        index.delete(int(top))
        result = index.search(q, k=5)
        assert top not in result.ids.tolist()

    def test_delete_of_delta_point(self, dyn):
        data, index = dyn
        new_id = index.insert(data[900] * 4.0)
        index.delete(new_id)
        result = index.search(data[900], k=3)
        assert new_id not in result.ids.tolist()
        assert index.delta_size == 0

    def test_double_delete_rejected(self, dyn):
        _, index = dyn
        index.delete(5)
        with pytest.raises(KeyError):
            index.delete(5)

    def test_unknown_id_rejected(self, dyn):
        _, index = dyn
        with pytest.raises(KeyError):
            index.delete(10_000)

    def test_n_live_tracks_mutations(self, dyn):
        data, index = dyn
        base = index.n_live
        index.insert(data[900])
        index.delete(0)
        assert index.n_live == base

    def test_k_capped_at_live_points(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:30], PARAMS, rng=1)
        for i in range(10):
            index.delete(i)
        result = index.search(data[0], k=30)
        assert len(result) == 20


class TestLifecycle:
    def test_rebuild_preserves_external_ids(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:300], PARAMS, rng=1, rebuild_threshold=0.02)
        spike_id = index.insert(data[500] * 6.0)
        for row in data[600:620]:
            index.insert(row)  # forces rebuilds
        assert index.rebuilds >= 1
        # After the rebuild the spike lives in the probabilistic index (not
        # the exact delta buffer), so query with a high guarantee p: an
        # outlier that is far in projection but huge in inner product may
        # legitimately be missed at p = 0.5.
        result = index.search(data[500], k=1, p=0.97)
        assert result.ids[0] == spike_id

    def test_rejects_bad_threshold(self, latent_small):
        data, _ = latent_small
        with pytest.raises(ValueError):
            DynamicProMIPS(data[:100], PARAMS, rebuild_threshold=0.0)

    def test_search_rejects_bad_k(self, dyn):
        data, index = dyn
        with pytest.raises(ValueError):
            index.search(data[0], k=0)

    def test_repr(self, dyn):
        assert "DynamicProMIPS" in repr(dyn[1])

    def test_index_size_includes_delta(self, dyn):
        data, index = dyn
        before = index.index_size_bytes()
        index.insert(data[900])
        assert index.index_size_bytes() > before


class TestCompaction:
    """Compaction clears tombstones, reclaims storage, and restores the
    candidate budget — the three regressions of the old ``_rebuild``."""

    def test_compaction_clears_tombstones_and_overfetch(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:300], PARAMS, rng=1)
        q = data[2]
        baseline = index.search(q, k=10).stats

        # Tombstones inflate the index over-fetch (k + #tombstones)...
        for i in range(70):  # just under the 0.25 * 300 trigger
            index.delete(i)
        assert index.rebuilds == 0 and index.tombstone_count == 70
        inflated = index.search(q, k=10).stats
        assert inflated.candidates > baseline.candidates

        # ...until the ratio trips the compaction, which must clear them.
        for i in range(70, 76):  # 76 > 0.25 * 300
            index.delete(i)
        assert index.rebuilds == 1
        assert index.tombstone_count == 0
        assert index.delta_size == 0
        assert index.n_live == 224
        compacted = index.search(q, k=10).stats
        # The permanent over-fetch regression: candidates must come back
        # down once the tombstones are compacted out.
        assert compacted.candidates < inflated.candidates

    def test_delete_only_workload_triggers_compaction(self, latent_small):
        # Before the fix only `insert` checked a threshold, so a delete-only
        # workload degraded unboundedly.
        data, _ = latent_small
        index = DynamicProMIPS(data[:200], PARAMS, rng=1)
        for i in range(60):
            index.delete(i)
        assert index.rebuilds >= 1
        assert index.tombstone_count <= 0.25 * index.indexed_points
        assert index.reclaimed_bytes > 0

    def test_compact_threshold_configurable_and_spec_round_trips(
        self, latent_small
    ):
        data, _ = latent_small
        index = DynamicProMIPS(data[:100], PARAMS, rng=1, compact_threshold=0.05)
        for i in range(6):  # 6 > 0.05 * 100
            index.delete(i)
        assert index.rebuilds >= 1
        spec = index.spec()
        assert spec.params["compact_threshold"] == 0.05
        assert spec.params["rebuild_threshold"] == 0.2
        with pytest.raises(ValueError):
            DynamicProMIPS(data[:100], PARAMS, compact_threshold=0.0)

    def test_redelete_of_compacted_id_raises(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:100], PARAMS, rng=1)
        index.delete(5)
        index.compact()
        assert index.tombstone_count == 0
        with pytest.raises(KeyError):
            index.delete(5)

    def test_deleted_delta_row_is_orphaned_then_reclaimed(self, dyn):
        data, index = dyn
        new_id = index.insert(data[900])
        rows_with = index.buffer_rows
        index.delete(new_id)
        # The row lingers (orphaned) until a compaction reclaims it.
        assert index.buffer_rows == rows_with
        report = index.compact()
        assert index.buffer_rows == index.n_live
        assert report["reclaimed_bytes"] > 0

    def test_size_accounting_counts_dead_rows(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:200], PARAMS, rng=1)
        size_fresh = index.index_size_bytes()
        for i in range(20):
            index.delete(i)
        # Tombstoned rows are still held: the structure got *bigger* in
        # auxiliary terms, which the old accounting missed entirely.
        inflated = index.index_size_bytes()
        assert inflated > size_fresh
        index.compact()
        # Compaction reclaims the dead rows (a few rows of staged drift
        # headroom may remain, so compare against the inflated size).
        assert index.index_size_bytes() < inflated
        assert index.reclaimed_bytes > 0

    def test_size_accounting_counts_buffer_capacity(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:200], PARAMS, rng=1)
        before = index.index_size_bytes()
        index.insert(data[500])  # doubles the buffer: 200 -> 400 rows held
        grown = index.index_size_bytes()
        # The allocated-but-unused capacity is resident memory and counts.
        assert grown - before >= 200 * index.dim * 8

    def test_state_round_trips_after_compaction_and_orphans(
        self, latent_small, tmp_path
    ):
        from repro.core.persist import load_index, save_index

        data, queries = latent_small
        index = DynamicProMIPS(data[:300], PARAMS, rng=1)
        inserted = [index.insert(v) for v in data[600:608]]
        index.delete(inserted[2])  # orphaned delta row
        for i in range(80):  # trips compaction
            index.delete(i)
        assert index.rebuilds >= 1
        index.delete(100)  # a fresh post-compaction tombstone
        restored = load_index(save_index(index, tmp_path / "dyn"))
        assert restored.n_live == index.n_live
        assert restored.tombstone_count == index.tombstone_count
        assert restored.delta_size == index.delta_size
        assert restored.reclaimed_bytes == index.reclaimed_bytes
        for q in queries[:6]:
            a, b = index.search(q, k=8), restored.search(q, k=8)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.scores, b.scores)
        batch_a = index.search_many(queries[:6], k=8)
        batch_b = restored.search_many(queries[:6], k=8)
        assert np.array_equal(batch_a.ids, batch_b.ids)
        assert np.array_equal(batch_a.scores, batch_b.scores)


class TestGenerationalRebuild:
    """The begin/build/commit protocol the maintenance engine drives."""

    def _twin(self, data):
        index = DynamicProMIPS(data[:300], PARAMS, rng=1)
        index.defer_maintenance = True
        return index

    def test_swap_is_bit_identical_to_foreground_compaction(self, latent_small):
        # A committed background generation must equal a fresh bulk build
        # over the same live set: the twin runs the same mutations and a
        # synchronous compact() — identical rng consumption, identical data.
        data, queries = latent_small
        a, b = self._twin(data), self._twin(data)
        for index in (a, b):
            for row in data[500:540]:
                index.insert(row)
            index.delete(3)
            index.delete(310)  # a delta point

        ticket = a.begin_rebuild()
        built = a.build_generation(ticket)
        a.commit_rebuild(ticket, built)
        b.compact()

        for q in queries:
            ra, rb = a.search(q, k=10), b.search(q, k=10)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.scores, rb.scores)
        batch_a = a.search_many(queries, k=10)
        batch_b = b.search_many(queries, k=10)
        assert np.array_equal(batch_a.ids, batch_b.ids)
        assert np.array_equal(batch_a.scores, batch_b.scores)

    def test_mutations_during_build_are_replayed(self, latent_small):
        data, _ = latent_small
        index = self._twin(data)
        pre_insert = index.insert(data[500] * 3.0)

        ticket = index.begin_rebuild()
        built = index.build_generation(ticket)
        # Drift lands between build and commit:
        mid_insert = index.insert(data[501] * 5.0)
        index.delete(7)           # snapshotted -> replays as a tombstone
        index.delete(pre_insert)  # snapshotted delta point -> also dead
        report = index.commit_rebuild(ticket, built)

        assert report["replayed_inserts"] == 1
        assert report["replayed_deletes"] == 2
        assert index.delta_size == 1
        assert index.tombstone_count == 2  # both dead ids are in the new index
        assert index.n_live == 300  # 300 + 2 inserts - 2 deletes
        result = index.search(data[501], k=5)
        assert result.ids[0] == mid_insert
        ids = index.search(data[7], k=20).ids.tolist()
        assert 7 not in ids and pre_insert not in ids

    def test_drift_beyond_staged_headroom_falls_back(self, latent_small):
        # build_generation stages the commit buffer with bounded spare
        # capacity; more drift than that must still commit correctly via
        # the allocation fallback.
        data, _ = latent_small
        index = self._twin(data)
        ticket = index.begin_rebuild()
        built = index.build_generation(ticket)
        assert ticket.prepared["buffer"].shape[0] < 300 + 30
        for row in data[500:529]:
            index.insert(row)
        spike = index.insert(data[529] * 5.0)
        report = index.commit_rebuild(ticket, built)
        assert report["replayed_inserts"] == 30
        assert index.n_live == 330 and index.buffer_rows == 330
        assert index.search(data[529], k=1).ids[0] == spike

    def test_insert_then_delete_during_build_vanishes(self, latent_small):
        data, _ = latent_small
        index = self._twin(data)
        ticket = index.begin_rebuild()
        built = index.build_generation(ticket)
        ephemeral = index.insert(data[500])
        index.delete(ephemeral)
        report = index.commit_rebuild(ticket, built)
        assert report["replayed_inserts"] == 0
        assert report["replayed_deletes"] == 0
        assert index.delta_size == 0 and index.tombstone_count == 0
        with pytest.raises(KeyError):
            index.delete(ephemeral)

    def test_begin_rebuild_is_exclusive(self, latent_small):
        data, _ = latent_small
        index = self._twin(data)
        ticket = index.begin_rebuild()
        with pytest.raises(RuntimeError):
            index.begin_rebuild()
        index.abort_rebuild(ticket)
        index.compact()  # usable again after an abort
        assert index.rebuilds == 1

    def test_defer_maintenance_suppresses_synchronous_compaction(
        self, latent_small
    ):
        data, _ = latent_small
        index = DynamicProMIPS(
            data[:100], PARAMS, rng=1, rebuild_threshold=0.05
        )
        index.defer_maintenance = True
        for row in data[100:120]:
            index.insert(row)
        assert index.rebuilds == 0
        assert index.maintenance_due() == "delta"
        index.compact()
        assert index.rebuilds == 1 and index.maintenance_due() is None


class TestDeleteLastPoint:
    def test_delete_validates_before_mutating(self, latent_small):
        """Deleting the last live point must raise *without* tombstoning it,
        leaving the structure fully usable."""
        data, _ = latent_small
        index = DynamicProMIPS(data[:3], PARAMS, rng=1)
        index.delete(0)
        index.delete(1)
        with pytest.raises(ValueError):
            index.delete(2)
        # The refused delete left no tombstone behind: the survivor is still
        # live, searchable, and deletable-checkable again.
        assert index.n_live == 1
        result = index.search(data[2], k=1)
        assert result.ids.tolist() == [2]
        with pytest.raises(ValueError):
            index.delete(2)
