"""Tests for repro.core.dynamic — insert/delete support (the §I maintenance
motivation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicProMIPS
from repro.core.promips import ProMIPSParams

from conftest import exact_topk_reference

PARAMS = ProMIPSParams(m=5, kp=3, n_key=12, ksp=4)


@pytest.fixture()
def dyn(latent_small):
    data, _ = latent_small
    return data, DynamicProMIPS(data[:800], PARAMS, rng=1)


class TestInsert:
    def test_inserted_point_is_findable(self, dyn):
        data, index = dyn
        spike = data[900] * 5.0  # dominant norm → must become the MIP point
        new_id = index.insert(spike)
        result = index.search(spike, k=1)
        assert result.ids[0] == new_id

    def test_ids_are_stable_and_sequential(self, dyn):
        _, index = dyn
        a = index.insert(np.ones(24))
        b = index.insert(np.ones(24) * 2)
        assert b == a + 1

    def test_delta_scanned_exactly(self, dyn):
        data, index = dyn
        for row in data[800:805]:
            index.insert(row)
        result = index.search(data[0], k=5)
        assert result.stats.extras["delta_scanned"] == index.delta_size

    def test_rebuild_triggers_and_absorbs_delta(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:400], PARAMS, rng=1, rebuild_threshold=0.05)
        for row in data[400:440]:  # 10% > 5% threshold
            index.insert(row)
        assert index.rebuilds >= 1
        assert index.delta_size < 40
        assert index.n_live == 440

    def test_search_quality_with_delta(self, dyn):
        data, index = dyn
        for row in data[800:880]:
            index.insert(row)
        live = data[:880]
        ratios = []
        for q in live[::97]:
            _, exact_ips = exact_topk_reference(live, q, 5)
            res = index.search(q, k=5)
            ratios.append(float(np.mean(res.scores / exact_ips)))
        assert float(np.mean(ratios)) >= 0.9

    def test_insert_validates_dimension(self, dyn):
        _, index = dyn
        with pytest.raises(ValueError):
            index.insert(np.ones(10))


class TestDelete:
    def test_deleted_point_never_returned(self, dyn):
        data, index = dyn
        # Delete the current exact top-1 for a query.
        q = data[3]
        top = index.search(q, k=1).ids[0]
        index.delete(int(top))
        result = index.search(q, k=5)
        assert top not in result.ids.tolist()

    def test_delete_of_delta_point(self, dyn):
        data, index = dyn
        new_id = index.insert(data[900] * 4.0)
        index.delete(new_id)
        result = index.search(data[900], k=3)
        assert new_id not in result.ids.tolist()
        assert index.delta_size == 0

    def test_double_delete_rejected(self, dyn):
        _, index = dyn
        index.delete(5)
        with pytest.raises(KeyError):
            index.delete(5)

    def test_unknown_id_rejected(self, dyn):
        _, index = dyn
        with pytest.raises(KeyError):
            index.delete(10_000)

    def test_n_live_tracks_mutations(self, dyn):
        data, index = dyn
        base = index.n_live
        index.insert(data[900])
        index.delete(0)
        assert index.n_live == base

    def test_k_capped_at_live_points(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:30], PARAMS, rng=1)
        for i in range(10):
            index.delete(i)
        result = index.search(data[0], k=30)
        assert len(result) == 20


class TestLifecycle:
    def test_rebuild_preserves_external_ids(self, latent_small):
        data, _ = latent_small
        index = DynamicProMIPS(data[:300], PARAMS, rng=1, rebuild_threshold=0.02)
        spike_id = index.insert(data[500] * 6.0)
        for row in data[600:620]:
            index.insert(row)  # forces rebuilds
        assert index.rebuilds >= 1
        # After the rebuild the spike lives in the probabilistic index (not
        # the exact delta buffer), so query with a high guarantee p: an
        # outlier that is far in projection but huge in inner product may
        # legitimately be missed at p = 0.5.
        result = index.search(data[500], k=1, p=0.97)
        assert result.ids[0] == spike_id

    def test_rejects_bad_threshold(self, latent_small):
        data, _ = latent_small
        with pytest.raises(ValueError):
            DynamicProMIPS(data[:100], PARAMS, rebuild_threshold=0.0)

    def test_search_rejects_bad_k(self, dyn):
        data, index = dyn
        with pytest.raises(ValueError):
            index.search(data[0], k=0)

    def test_repr(self, dyn):
        assert "DynamicProMIPS" in repr(dyn[1])

    def test_index_size_includes_delta(self, dyn):
        data, index = dyn
        before = index.index_size_bytes()
        index.insert(data[900])
        assert index.index_size_bytes() > before


class TestDeleteLastPoint:
    def test_delete_validates_before_mutating(self, latent_small):
        """Deleting the last live point must raise *without* tombstoning it,
        leaving the structure fully usable."""
        data, _ = latent_small
        index = DynamicProMIPS(data[:3], PARAMS, rng=1)
        index.delete(0)
        index.delete(1)
        with pytest.raises(ValueError):
            index.delete(2)
        # The refused delete left no tombstone behind: the survivor is still
        # live, searchable, and deletable-checkable again.
        assert index.n_live == 1
        result = index.search(data[2], k=1)
        assert result.ids.tolist() == [2]
        with pytest.raises(ValueError):
            index.delete(2)
