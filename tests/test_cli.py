"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert out.startswith("repro ")

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "netflix"
        assert args.k == 10

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "imagenet"])

    def test_rejects_unknown_method(self, capsys):
        # --method is no longer a closed choice list (inline specs are
        # allowed), so the unknown name surfaces as a clean runtime error.
        rc = main([
            "sweep", "--dataset", "netflix", "--n", "400", "--dim", "12",
            "--queries", "2", "--method", "FAISS",
        ])
        assert rc == 2
        assert "unknown method" in capsys.readouterr().out


class TestCommands:
    def test_compare_runs(self, capsys):
        rc = main([
            "compare", "--dataset", "netflix", "--n", "600", "--dim", "16",
            "--queries", "4", "--k", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ProMIPS" in out and "H2-ALSH" in out and "pages" in out

    def test_sweep_runs(self, capsys):
        rc = main([
            "sweep", "--dataset", "sift", "--n", "800", "--dim", "16",
            "--queries", "4", "--method", "Range-LSH", "--ks", "5,10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Range-LSH" in out and "recall" in out

    def test_tune_runs(self, capsys):
        rc = main([
            "tune", "--dataset", "netflix", "--n", "600", "--dim", "16",
            "--queries", "4", "--k", "5", "--cs", "0.8,0.9", "--ps", "0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.8" in out and "pages" in out

    def test_datasets_runs(self, capsys):
        rc = main(["datasets", "--n", "300", "--dim", "12"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "17770" in out  # paper profile
        assert "300" in out    # sim override

    def test_throughput_runs(self, capsys):
        rc = main([
            "throughput", "--dataset", "netflix", "--n", "600", "--dim", "16",
            "--queries", "8", "--k", "5", "--methods", "Exact,SimHash",
            "--repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch_qps" in out and "Exact" in out and "native" in out

    def test_throughput_defaults(self):
        args = build_parser().parse_args(["throughput"])
        assert args.methods == "all"
        assert args.k == 10

    def test_sweep_accepts_inline_spec(self, capsys):
        rc = main([
            "sweep", "--dataset", "netflix", "--n", "500", "--dim", "12",
            "--queries", "3", "--method", "promips(c=0.8, m=4, kp=3, n_key=8, ksp=3)",
            "--ks", "5",
        ])
        assert rc == 0
        assert "recall" in capsys.readouterr().out


class TestBuildQuery:
    """`build` persists an index; `query` reloads it and answers a workload."""

    def _build(self, tmp_path, capsys, spec="promips(c=0.9, m=4, kp=3, n_key=8, ksp=3)"):
        out = tmp_path / "idx.npz"
        rc = main([
            "build", "--dataset", "netflix", "--n", "500", "--dim", "12",
            "--queries", "4", "--spec", spec, "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        return out, capsys.readouterr().out

    def test_build_then_query(self, tmp_path, capsys):
        out, build_out = self._build(tmp_path, capsys)
        assert "saved to" in build_out and "promips" in build_out

        rc = main(["query", "--index", str(out), "--k", "5"])
        assert rc == 0
        query_out = capsys.readouterr().out
        assert "loaded promips index" in query_out
        assert "ratio" in query_out and "recall" in query_out
        assert "query 0: top-5" in query_out

    def test_build_then_query_other_method(self, tmp_path, capsys):
        out, _ = self._build(tmp_path, capsys, spec="simhash(n_bits=24)")
        rc = main(["query", "--index", str(out), "--k", "5", "--show", "1"])
        assert rc == 0
        assert "loaded simhash index" in capsys.readouterr().out

    def test_query_with_query_file(self, tmp_path, capsys):
        import numpy as np

        out, _ = self._build(tmp_path, capsys, spec="exact()")
        qfile = tmp_path / "queries.npy"
        np.save(qfile, np.random.default_rng(0).standard_normal((3, 12)))
        rc = main([
            "query", "--index", str(out), "--k", "4",
            "--query-file", str(qfile), "--show", "3",
        ])
        assert rc == 0
        outtxt = capsys.readouterr().out
        assert "query 2: top-4" in outtxt

    def test_build_rejects_bad_spec(self, tmp_path, capsys):
        rc = main([
            "build", "--dataset", "netflix", "--n", "400", "--dim", "12",
            "--queries", "2", "--spec", "faiss(gpu=True)",
            "--out", str(tmp_path / "x.npz"),
        ])
        assert rc == 2
        assert "unknown method" in capsys.readouterr().out

    def test_query_missing_file(self, tmp_path, capsys):
        rc = main(["query", "--index", str(tmp_path / "missing.npz")])
        assert rc == 2
        assert "no such index" in capsys.readouterr().out

    def test_query_rejects_non_index_npz(self, tmp_path, capsys):
        import numpy as np

        bad = tmp_path / "random.npz"
        np.savez_compressed(bad, xs=np.arange(4))
        rc = main(["query", "--index", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().out

    def test_query_rejects_mismatched_query_file(self, tmp_path, capsys):
        import numpy as np

        out, _ = self._build(tmp_path, capsys, spec="exact()")
        qfile = tmp_path / "wrong.npy"
        np.save(qfile, np.ones((2, 99)))
        rc = main(["query", "--index", str(out), "--query-file", str(qfile)])
        assert rc == 2
        assert "error:" in capsys.readouterr().out


class TestServe:
    """The serve command's argument surface and runtime boot (the serve
    loop itself is exercised over real HTTP in tests/test_server.py)."""

    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--spec", "exact()"])
        assert args.host == "127.0.0.1" and args.port == 8080
        assert args.max_batch == 32 and args.max_wait_ms == 2.0
        assert args.cache_size == 1024 and not args.no_coalesce

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--spec", "exact()", "--index", "idx.npz"]
            )

    def test_boots_runtime_from_spec(self):
        from repro.cli import _serve_runtime

        args = build_parser().parse_args([
            "serve", "--spec", "exact()", "--dataset", "netflix",
            "--n", "300", "--dim", "12", "--cache-size", "8",
            "--no-coalesce",
        ])
        runtime = _serve_runtime(args)
        with runtime:
            assert runtime.health()["method"] == "exact"
            assert runtime.cache.capacity == 8
            assert runtime.batcher is None

    def test_boots_runtime_from_envelope(self, tmp_path, capsys):
        from repro.cli import _serve_runtime

        out = tmp_path / "idx.npz"
        rc = main([
            "build", "--dataset", "netflix", "--n", "300", "--dim", "12",
            "--queries", "2", "--spec", "simhash(n_bits=24)", "--out", str(out),
        ])
        assert rc == 0
        args = build_parser().parse_args(["serve", "--index", str(out)])
        runtime = _serve_runtime(args)
        with runtime:
            assert runtime.health()["method"] == "simhash"
            assert runtime.batcher is not None

    def test_missing_envelope_errors_cleanly(self, tmp_path, capsys):
        rc = main(["serve", "--index", str(tmp_path / "missing.npz")])
        assert rc == 2
        assert "no such index" in capsys.readouterr().out

    def test_bad_spec_errors_cleanly(self, capsys):
        rc = main([
            "serve", "--spec", "faiss()", "--dataset", "netflix",
            "--n", "200", "--dim", "8",
        ])
        assert rc == 2
        assert "unknown method" in capsys.readouterr().out
