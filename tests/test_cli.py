"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "netflix"
        assert args.k == 10

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "imagenet"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--method", "FAISS"])


class TestCommands:
    def test_compare_runs(self, capsys):
        rc = main([
            "compare", "--dataset", "netflix", "--n", "600", "--dim", "16",
            "--queries", "4", "--k", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ProMIPS" in out and "H2-ALSH" in out and "pages" in out

    def test_sweep_runs(self, capsys):
        rc = main([
            "sweep", "--dataset", "sift", "--n", "800", "--dim", "16",
            "--queries", "4", "--method", "Range-LSH", "--ks", "5,10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Range-LSH" in out and "recall" in out

    def test_tune_runs(self, capsys):
        rc = main([
            "tune", "--dataset", "netflix", "--n", "600", "--dim", "16",
            "--queries", "4", "--k", "5", "--cs", "0.8,0.9", "--ps", "0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.8" in out and "pages" in out

    def test_datasets_runs(self, capsys):
        rc = main(["datasets", "--n", "300", "--dim", "12"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "17770" in out  # paper profile
        assert "300" in out    # sim override

    def test_throughput_runs(self, capsys):
        rc = main([
            "throughput", "--dataset", "netflix", "--n", "600", "--dim", "16",
            "--queries", "8", "--k", "5", "--methods", "Exact,SimHash",
            "--repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch_qps" in out and "Exact" in out and "native" in out

    def test_throughput_defaults(self):
        args = build_parser().parse_args(["throughput"])
        assert args.methods == "all"
        assert args.k == 10
