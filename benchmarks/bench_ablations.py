"""Ablations of the design choices DESIGN.md §6 calls out.

1. Ring + sub-partition pattern vs standard iDistance (§VI motivation).
2. Quick-Probe range search (Algorithm 3) vs incremental NN search
   (Algorithm 1) — the paper's reason for inventing Quick-Probe.
3. Optimized projected dimension m (§V-B) vs neighbours m±2.
4. Compensation-pass trigger rate vs p.
"""

from __future__ import annotations

import time

import numpy as np

from common import emit, get_dataset, single_query_callable
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.core.optimal_dim import optimized_projection_dim
from repro.index.idistance import IDistanceIndex
from repro.index.ring_idistance import RingIDistance
from repro.eval.reporting import format_table
from repro.storage.pagefile import AccessCounter, VectorStore


def bench_ablation_partition_pattern(benchmark):
    """Pages/CPU of a projected-space range search under both patterns."""
    ds = get_dataset("netflix")
    index = ProMIPS.build(ds.data, ProMIPSParams(page_size=ds.page_size), rng=1)
    projected = index.projection.project(ds.data)

    ring = RingIDistance(projected, kp=5, n_key=40, ksp=10,
                         rng=np.random.default_rng(2))
    standard = IDistanceIndex(projected, n_partitions=5,
                              rng=np.random.default_rng(2))
    stores = {
        "ring": VectorStore(projected, ds.page_size, layout_order=ring.layout_order),
        "standard": VectorStore(projected, ds.page_size,
                                layout_order=standard.layout_order),
    }

    radius = float(np.median(np.linalg.norm(projected[:200], axis=1)))
    rows = []
    stats = {}
    for name, idx in (("ring", ring), ("standard", standard)):
        pages, cpu = [], []
        for q in index.projection.project(ds.queries[:20]):
            counter = AccessCounter()
            reader = stores[name].reader()
            t0 = time.perf_counter()
            idx.range_search(q, radius, counter, reader)
            cpu.append(time.perf_counter() - t0)
            pages.append(counter.pages + reader.pages_touched)
        stats[name] = (float(np.mean(pages)), float(np.mean(cpu)) * 1e3)
        rows.append([name, stats[name][0], stats[name][1]])

    table = format_table(
        ["pattern", "pages", "cpu_ms"], rows,
        title=(f"Ablation 1 — range search (r={radius:.2f}) under the ring "
               "pattern (Fig. 3) vs standard iDistance (Fig. 1)"),
    )
    emit("ablation1_partition_pattern", table)
    # The new pattern's sub-partition filter must not read more pages.
    assert stats["ring"][0] <= stats["standard"][0] * 1.1
    benchmark(single_query_callable("netflix", "ProMIPS"))


def bench_ablation_quickprobe_vs_incremental(benchmark):
    """Algorithm 3 (Quick-Probe + range search) vs Algorithm 1."""
    ds = get_dataset("netflix")
    index = ProMIPS.build(ds.data, ProMIPSParams(page_size=ds.page_size), rng=1)
    rows = []
    stats = {}
    for name, search in (("MIP-Search-II (Quick-Probe)", index.search),
                         ("MIP-Search-I (incremental)", index.search_incremental)):
        pages, cpu, cands = [], [], []
        for q in ds.queries[:20]:
            t0 = time.perf_counter()
            res = search(q, k=10)
            cpu.append(time.perf_counter() - t0)
            pages.append(res.stats.pages)
            cands.append(res.stats.candidates)
        stats[name] = (float(np.mean(pages)), float(np.mean(cpu)) * 1e3,
                       float(np.mean(cands)))
        rows.append([name, *stats[name]])

    table = format_table(
        ["algorithm", "pages", "cpu_ms", "candidates"], rows,
        title="Ablation 2 — Quick-Probe range search vs incremental NN search",
    )
    emit("ablation2_quickprobe", table)
    # Quick-Probe's raison d'être: no repeated range re-scans, fewer pages.
    quick = stats["MIP-Search-II (Quick-Probe)"]
    incremental = stats["MIP-Search-I (incremental)"]
    assert quick[0] <= incremental[0] * 1.1, "Quick-Probe should not read more pages"
    benchmark(single_query_callable("netflix", "ProMIPS"))


def bench_ablation_projected_dimension(benchmark):
    """The §V-B optimizer's m vs fixed neighbours."""
    ds = get_dataset("netflix")
    m_opt = optimized_projection_dim(ds.n)
    rows = []
    for m in (max(2, m_opt - 2), m_opt, m_opt + 2):
        index = ProMIPS.build(
            ds.data, ProMIPSParams(m=m, page_size=ds.page_size), rng=1
        )
        pages, cpu = [], []
        for q in ds.queries[:20]:
            t0 = time.perf_counter()
            res = index.search(q, k=10)
            cpu.append(time.perf_counter() - t0)
            pages.append(res.stats.pages)
        rows.append([
            f"m={m}" + (" (optimized)" if m == m_opt else ""),
            float(np.mean(pages)), float(np.mean(cpu)) * 1e3, index.groups.n_groups,
        ])
    table = format_table(
        ["projected dim", "pages", "cpu_ms", "groups"], rows,
        title="Ablation 3 — optimized projected dimension (f(m) = 2^m(m+1) + n/2^m)",
    )
    emit("ablation3_projected_dim", table)
    benchmark(single_query_callable("netflix", "ProMIPS"))


def bench_ablation_compensation_rate(benchmark):
    """How often the Quick-Probe radius under-shoots and the r' pass runs."""
    ds = get_dataset("netflix")
    index = ProMIPS.build(ds.data, ProMIPSParams(page_size=ds.page_size), rng=1)
    rows = []
    for p in (0.3, 0.5, 0.7, 0.9):
        expanded = 0
        probe_passed = 0
        for q in ds.queries:
            res = index.search(q, k=10, p=p)
            expanded += int(res.stats.extras["expansions"] > 0)
            probe_passed += int(res.stats.extras["probe_passed"])
        n_q = len(ds.queries)
        rows.append([p, probe_passed / n_q, expanded / n_q])
    table = format_table(
        ["p", "TestA pass rate", "compensation rate"], rows,
        title="Ablation 4 — Quick-Probe Test A pass rate and r'-expansion rate vs p",
    )
    emit("ablation4_compensation", table)
    benchmark(single_query_callable("netflix", "ProMIPS"))
