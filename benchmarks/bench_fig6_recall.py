"""Fig. 6 — recall vs k on the four datasets.

Paper shape: trends mirror the overall ratio (Fig. 5); all methods land in
a high-recall band, with P53 the hardest dataset and the PQ baseline's
exact re-ranking keeping it competitive.
"""

from __future__ import annotations

from common import DATASET_NAMES, K_VALUES, METHODS, emit, get_report, single_query_callable
from repro.eval.reporting import format_series


def bench_fig6_recall(benchmark):
    blocks = []
    for dataset in DATASET_NAMES:
        series = {
            method: [get_report(dataset, method, k).recall for k in K_VALUES]
            for method in METHODS
        }
        blocks.append(
            format_series("k", K_VALUES, series, title=f"Fig. 6 Recall — {dataset}")
        )
        for k in K_VALUES:
            promips = get_report(dataset, "ProMIPS", k).recall
            assert promips >= 0.6, (
                f"{dataset} k={k}: ProMIPS recall {promips:.3f} below the paper band"
            )
    emit("fig6_recall", "\n\n".join(blocks))

    benchmark(single_query_callable("yahoo", "ProMIPS"))
