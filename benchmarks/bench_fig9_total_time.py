"""Fig. 9 — total time (CPU + disk reads) vs k on Netflix and Yahoo.

Paper shape: "a large portion of the time consumption comes from reading
data from disks.  Since ProMIPS performs the best on page access, it obtains
the superior performance on total time." — with the simulated per-page
latency, ProMIPS must beat H2-ALSH on total time at every k.
"""

from __future__ import annotations

from common import K_VALUES, METHODS, emit, get_report, single_query_callable
from repro.eval.reporting import format_series

FIG9_DATASETS = ["netflix", "yahoo"]  # the paper shows these two (space limits)


def bench_fig9_total_time(benchmark):
    blocks = []
    for dataset in FIG9_DATASETS:
        series = {
            method: [get_report(dataset, method, k).total_ms for k in K_VALUES]
            for method in METHODS
        }
        blocks.append(
            format_series("k", K_VALUES, series,
                          title=f"Fig. 9 Total Time (ms) — {dataset}", float_fmt="{:.2f}")
        )
        for k in K_VALUES:
            promips = get_report(dataset, "ProMIPS", k).total_ms
            h2alsh = get_report(dataset, "H2-ALSH", k).total_ms
            assert promips < h2alsh, (
                f"{dataset} k={k}: ProMIPS total time must beat H2-ALSH"
            )
    emit("fig9_total_time", "\n\n".join(blocks))

    benchmark(single_query_callable("netflix", "H2-ALSH"))
