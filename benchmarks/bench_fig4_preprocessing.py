"""Fig. 4 — index size (a) and pre-processing time (b) for the four methods
on the four datasets.

Paper shape to reproduce: ProMIPS builds the smallest index and spends the
least pre-processing time; PQ-Based is the heaviest on both axes (rotation
matrices, per-cell codebooks, training); H2-ALSH's hash tables dominate its
footprint; Range-LSH's bit vectors are compact but its single-table
multi-probe preparation costs build time relative to its size.
"""

from __future__ import annotations

from common import DATASET_NAMES, METHODS, emit, get_build_report, get_dataset
from repro.eval.reporting import format_table


def _rows(metric: str) -> list[list]:
    rows = []
    for dataset in DATASET_NAMES:
        row: list = [dataset]
        for method in METHODS:
            report = get_build_report(dataset, method)
            value = report.index_mb if metric == "size" else report.build_seconds
            row.append(value)
        rows.append(row)
    return rows


def bench_fig4a_index_size(benchmark):
    table = format_table(
        ["dataset", *METHODS],
        _rows("size"),
        title="Fig. 4(a) Index Size (MB)",
        float_fmt="{:.3g}",
    )
    emit("fig4a_index_size", table)

    for dataset in DATASET_NAMES:
        promips = get_build_report(dataset, "ProMIPS").index_bytes
        h2alsh = get_build_report(dataset, "H2-ALSH").index_bytes
        pq = get_build_report(dataset, "PQ-Based").index_bytes
        assert promips < h2alsh, f"{dataset}: ProMIPS index must undercut H2-ALSH"
        assert promips < pq, f"{dataset}: ProMIPS index must undercut PQ-Based"

    # Timing probe: the ProMIPS pre-process on the smallest dataset.
    from repro.core.promips import ProMIPS, ProMIPSParams

    ds = get_dataset("netflix")
    benchmark.pedantic(
        lambda: ProMIPS.build(
            ds.data, ProMIPSParams(page_size=ds.page_size), rng=1
        ),
        rounds=1,
        iterations=1,
    )


def bench_fig4b_preprocessing_time(benchmark):
    table = format_table(
        ["dataset", *METHODS],
        _rows("time"),
        title="Fig. 4(b) Pre-processing Time (s)",
        float_fmt="{:.3g}",
    )
    emit("fig4b_preprocessing_time", table)

    for dataset in DATASET_NAMES:
        promips = get_build_report(dataset, "ProMIPS").build_seconds
        pq = get_build_report(dataset, "PQ-Based").build_seconds
        assert promips < pq, f"{dataset}: PQ training must dominate ProMIPS build"

    benchmark.pedantic(lambda: get_build_report("netflix", "ProMIPS"), rounds=1,
                       iterations=1)
