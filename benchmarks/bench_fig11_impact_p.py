"""Fig. 11 — impact of the guarantee probability p on ProMIPS (k=10, c=0.9).

Paper shape: a higher p widens the searching range, buying overall ratio
with page accesses; "the increasing rate of accuracy is lower than the
decreasing rate of efficiency as p increases".
"""

from __future__ import annotations

from common import DATASET_NAMES, emit, get_report, single_query_callable
from repro.eval.reporting import format_table

P_VALUES = [0.3, 0.5, 0.7, 0.9]
K = 10


def bench_fig11_impact_p(benchmark):
    ratio_rows, page_rows = [], []
    for dataset in DATASET_NAMES:
        reports = {
            p: get_report(dataset, "ProMIPS", K, search_kwargs={"c": 0.9, "p": p})
            for p in P_VALUES
        }
        ratio_rows.append([dataset, *(reports[p].overall_ratio for p in P_VALUES)])
        page_rows.append([dataset, *(reports[p].pages for p in P_VALUES)])

        # Accuracy must not degrade with p, and pages must grow with p.
        assert reports[0.9].overall_ratio >= reports[0.3].overall_ratio - 0.01
        assert reports[0.9].pages >= reports[0.3].pages
        # Diminishing accuracy returns vs compounding page cost (§VIII-F).
        ratio_gain = reports[0.9].overall_ratio - reports[0.3].overall_ratio
        page_growth = (reports[0.9].pages - reports[0.3].pages) / max(
            reports[0.3].pages, 1.0
        )
        assert ratio_gain <= page_growth + 0.05, (
            f"{dataset}: accuracy gain should lag the page-cost growth"
        )

    table_a = format_table(
        ["dataset", *[f"p={p}" for p in P_VALUES]], ratio_rows,
        title="Fig. 11(a) Overall Ratio vs p (ProMIPS, k=10, c=0.9)",
    )
    table_b = format_table(
        ["dataset", *[f"p={p}" for p in P_VALUES]], page_rows,
        title="Fig. 11(b) Page Access vs p (ProMIPS, k=10, c=0.9)",
        float_fmt="{:.0f}",
    )
    emit("fig11_impact_p", table_a + "\n\n" + table_b)

    benchmark(single_query_callable("sift", "ProMIPS"))
