"""Benchmark-suite configuration: make the shared cache importable."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
