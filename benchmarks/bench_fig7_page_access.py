"""Fig. 7 — page access vs k on the four datasets.

Paper shape: ProMIPS reads the fewest pages of the LSH-style methods at
every k (single B+-tree, sequential sub-partition reads, early-terminating
conditions); H2-ALSH is the page-heaviest (many hash tables probed plus
random verification reads); Range-LSH sits between them thanks to its
single-table multi-probe; the PQ baseline pays for scanning encoded
residuals and re-ranking.
"""

from __future__ import annotations

from common import DATASET_NAMES, K_VALUES, METHODS, emit, get_report, single_query_callable
from repro.eval.reporting import format_series


def bench_fig7_page_access(benchmark):
    blocks = []
    for dataset in DATASET_NAMES:
        series = {
            method: [get_report(dataset, method, k).pages for k in K_VALUES]
            for method in METHODS
        }
        blocks.append(
            format_series("k", K_VALUES, series,
                          title=f"Fig. 7 Page Access — {dataset}", float_fmt="{:.0f}")
        )
        for k in K_VALUES:
            promips = get_report(dataset, "ProMIPS", k).pages
            h2alsh = get_report(dataset, "H2-ALSH", k).pages
            assert promips < h2alsh, (
                f"{dataset} k={k}: ProMIPS ({promips:.0f}) must read fewer pages "
                f"than H2-ALSH ({h2alsh:.0f})"
            )
        # Monotone-ish growth with k (allow small noise between adjacent k).
        promips_series = series["ProMIPS"]
        assert promips_series[-1] >= promips_series[0] * 0.8
    emit("fig7_page_access", "\n\n".join(blocks))

    benchmark(single_query_callable("sift", "ProMIPS"))
