"""Maintenance cost under churn — the paper's §I motivation, quantified.

"Especially in commonly used mobile devices or IoT devices, a huge amount of
data will be frequently inserted or deleted in a short time, where the
heavyweight index requiring more maintenance overhead may cause delays."

Two experiments:

* **churn cost** — stream inserts + deletes into
  :class:`repro.core.dynamic.DynamicProMIPS` and compare the amortised
  per-update cost against the naive alternative for a heavyweight method:
  rebuilding H2-ALSH's hash tables on every batch.
* **non-blocking rebuild** — the serving-shape claim: with the
  :class:`repro.core.maintenance.MaintenanceEngine` running a generational
  rebuild off the request lock, query p99 *during* the rebuild stays within
  5x steady state, while the stop-the-world alternative (rebuild under the
  lock) blocks a concurrent query for the whole build.  The swapped-in
  generation is asserted bit-identical to a fresh bulk build over the same
  live set.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from common import emit, get_dataset, single_query_callable
from repro.baselines.h2alsh import H2ALSH
from repro.core.dynamic import DynamicProMIPS
from repro.core.maintenance import MaintenanceEngine
from repro.core.promips import ProMIPSParams
from repro.eval.metrics import p50, p99
from repro.eval.reporting import format_table

N_UPDATES = 400
BATCH = 100  # the heavyweight baseline rebuilds once per batch

# Non-blocking experiment: enough churn to make a rebuild due, measured
# against a steady-state latency window.
CHURN_INSERTS = 600
CHURN_DELETES = 50
STEADY_QUERIES = 150
P99_HEADROOM = 5.0  # the acceptance bound: during-rebuild p99 vs steady


def bench_maintenance_churn(benchmark):
    ds = get_dataset("netflix")
    base = ds.data[: ds.n // 2]
    stream = ds.data[ds.n // 2 : ds.n // 2 + N_UPDATES]

    # --- DynamicProMIPS: per-update inserts + occasional amortised rebuild.
    dynamic = DynamicProMIPS(
        base, ProMIPSParams(page_size=ds.page_size), rng=1, rebuild_threshold=0.05
    )
    t0 = time.perf_counter()
    for i, row in enumerate(stream):
        dynamic.insert(row)
        if i % 10 == 9:
            dynamic.delete(int(i // 10))  # steady trickle of deletes
    promips_total = time.perf_counter() - t0
    promips_per_update = promips_total / (N_UPDATES + N_UPDATES // 10)

    # --- Heavyweight baseline: rebuild hash tables every BATCH inserts.
    t0 = time.perf_counter()
    current = base
    for start in range(0, N_UPDATES, BATCH):
        current = np.vstack([current, stream[start : start + BATCH]])
        H2ALSH(current, rng=1, page_size=ds.page_size)
    h2_total = time.perf_counter() - t0
    h2_per_update = h2_total / N_UPDATES

    # Queries still work mid-churn with the guarantee intact.
    q = ds.queries[0]
    result = dynamic.search(q, k=10)
    assert len(result) == 10

    rows = [
        ["DynamicProMIPS (delta buffer + amortised rebuild)",
         promips_total, promips_per_update * 1e3, dynamic.rebuilds],
        [f"H2-ALSH (rebuild per {BATCH}-insert batch)",
         h2_total, h2_per_update * 1e3, N_UPDATES // BATCH],
    ]
    table = format_table(
        ["strategy", "total_s", "per-update_ms", "rebuilds"], rows,
        title=(f"Maintenance — {N_UPDATES} inserts + {N_UPDATES // 10} deletes "
               f"into n={len(base)} (§I motivation)"),
    )
    emit("maintenance_churn", table)

    assert promips_per_update < h2_per_update, (
        "the lightweight index must win the churn workload"
    )
    benchmark(single_query_callable("netflix", "ProMIPS"))


def bench_background_rebuild_nonblocking(benchmark):
    ds = get_dataset("netflix")
    base = ds.data[: ds.n // 2]
    extra = ds.data[ds.n // 2 : ds.n // 2 + CHURN_INSERTS]
    params = ProMIPSParams(page_size=ds.page_size)
    queries = ds.queries

    def make(seed: int) -> DynamicProMIPS:
        index = DynamicProMIPS(
            base, params, rng=seed, rebuild_threshold=0.05
        )
        index.defer_maintenance = True
        return index

    def churn(index: DynamicProMIPS) -> None:
        for row in extra:
            index.insert(row)
        for pid in range(CHURN_DELETES):
            index.delete(pid)

    # --- engine-managed index + a twin for the bit-identity reference.
    index, twin = make(1), make(1)
    lock = threading.Lock()
    engine = MaintenanceEngine(index, lock)

    def timed_query(i: int) -> float:
        q = queries[i % len(queries)]
        start = time.perf_counter()
        with lock:
            index.search(q, k=10)
        return time.perf_counter() - start

    for i in range(20):  # warm caches / BLAS
        timed_query(i)
    steady = [timed_query(i) for i in range(STEADY_QUERIES)]

    churn(index)
    churn(twin)
    assert index.maintenance_due() is not None

    # --- background rebuild: snapshot+swap under the lock, build off it.
    outcome: dict = {}

    def run_rebuild() -> None:
        try:
            outcome["report"] = engine.run_once()
        except BaseException as exc:  # surfaced after join, not lost to stderr
            outcome["error"] = exc

    worker = threading.Thread(target=run_rebuild)
    worker.start()
    during = []
    i = 0
    while worker.is_alive():
        during.append(timed_query(i))
        i += 1
    worker.join()
    assert "error" not in outcome, (
        f"background rebuild failed: {outcome.get('error')!r}"
    )
    assert outcome.get("report") is not None, "the due rebuild must have run"
    assert index.maintenance_due() is None

    # --- the acceptance criterion: the swapped-in generation answers
    # bit-identically to a fresh bulk build over the same live set (the
    # twin consumed the identical rng stream and mutation sequence, so its
    # synchronous compact() IS that fresh build).
    twin.compact()
    batch_bg = index.search_many(queries, k=10)
    batch_fresh = twin.search_many(queries, k=10)
    assert np.array_equal(batch_bg.ids, batch_fresh.ids)
    assert np.array_equal(batch_bg.scores, batch_fresh.scores)

    # --- stop-the-world baseline: the same rebuild under the request lock
    # blocks a concurrent query for the entire build.
    baseline = make(2)
    churn(baseline)
    blocking_lock = threading.Lock()
    holding = threading.Event()

    def locked_rebuild() -> None:
        with blocking_lock:
            holding.set()
            baseline.compact()

    blocker = threading.Thread(target=locked_rebuild)
    blocker.start()
    holding.wait()
    start = time.perf_counter()
    with blocking_lock:
        baseline.search(queries[0], k=10)
    blocked_seconds = time.perf_counter() - start
    blocker.join()

    steady_p99 = p99(steady)
    if not during:
        # The rebuild finished before a single concurrent query landed (a
        # descheduled main thread on a loaded runner): trivially
        # non-blocking, nothing to bound.
        during_p99 = 0.0
    elif len(during) >= 20:
        during_p99 = p99(during)
    else:
        during_p99 = max(during)
    rows = [
        ["steady state", len(steady), p50(steady) * 1e3, steady_p99 * 1e3],
        ["during background rebuild", len(during),
         (p50(during) * 1e3 if during else 0.0), during_p99 * 1e3],
        ["blocked by locked rebuild", 1,
         blocked_seconds * 1e3, blocked_seconds * 1e3],
    ]
    table = format_table(
        ["phase", "queries", "p50_ms", "p99_ms"], rows,
        title=(f"Query latency vs maintenance — n={len(base)}, "
               f"+{CHURN_INSERTS} inserts / -{CHURN_DELETES} deletes, "
               f"rebuild {outcome['report']['seconds'] * 1e3:.0f}ms off-lock"),
    )
    emit("maintenance_nonblocking", table)

    # Bounded tail during the rebuild (small absolute floor absorbs timer
    # noise on sub-ms steady states)...
    limit = max(P99_HEADROOM * steady_p99, 0.02)
    assert during_p99 <= limit, (
        f"p99 during background rebuild {during_p99 * 1e3:.2f}ms exceeds "
        f"{P99_HEADROOM}x steady state {steady_p99 * 1e3:.2f}ms"
    )
    # ...while the stop-the-world path pays the whole build on one query.
    assert blocked_seconds > during_p99, (
        "a rebuild under the request lock must visibly stall a query"
    )
    benchmark(single_query_callable("netflix", "ProMIPS"))
