"""Maintenance cost under churn — the paper's §I motivation, quantified.

"Especially in commonly used mobile devices or IoT devices, a huge amount of
data will be frequently inserted or deleted in a short time, where the
heavyweight index requiring more maintenance overhead may cause delays."

The bench streams a churn workload (inserts + deletes) into
:class:`repro.core.dynamic.DynamicProMIPS` and compares the amortised
per-update cost against the naive alternative for a heavyweight method:
rebuilding H2-ALSH's hash tables on every batch.
"""

from __future__ import annotations

import time

import numpy as np

from common import emit, get_dataset, single_query_callable
from repro.baselines.h2alsh import H2ALSH
from repro.core.dynamic import DynamicProMIPS
from repro.core.promips import ProMIPSParams
from repro.eval.reporting import format_table

N_UPDATES = 400
BATCH = 100  # the heavyweight baseline rebuilds once per batch


def bench_maintenance_churn(benchmark):
    ds = get_dataset("netflix")
    base = ds.data[: ds.n // 2]
    stream = ds.data[ds.n // 2 : ds.n // 2 + N_UPDATES]

    # --- DynamicProMIPS: per-update inserts + occasional amortised rebuild.
    dynamic = DynamicProMIPS(
        base, ProMIPSParams(page_size=ds.page_size), rng=1, rebuild_threshold=0.05
    )
    t0 = time.perf_counter()
    for i, row in enumerate(stream):
        dynamic.insert(row)
        if i % 10 == 9:
            dynamic.delete(int(i // 10))  # steady trickle of deletes
    promips_total = time.perf_counter() - t0
    promips_per_update = promips_total / (N_UPDATES + N_UPDATES // 10)

    # --- Heavyweight baseline: rebuild hash tables every BATCH inserts.
    t0 = time.perf_counter()
    current = base
    for start in range(0, N_UPDATES, BATCH):
        current = np.vstack([current, stream[start : start + BATCH]])
        H2ALSH(current, rng=1, page_size=ds.page_size)
    h2_total = time.perf_counter() - t0
    h2_per_update = h2_total / N_UPDATES

    # Queries still work mid-churn with the guarantee intact.
    q = ds.queries[0]
    result = dynamic.search(q, k=10)
    assert len(result) == 10

    rows = [
        ["DynamicProMIPS (delta buffer + amortised rebuild)",
         promips_total, promips_per_update * 1e3, dynamic.rebuilds],
        [f"H2-ALSH (rebuild per {BATCH}-insert batch)",
         h2_total, h2_per_update * 1e3, N_UPDATES // BATCH],
    ]
    table = format_table(
        ["strategy", "total_s", "per-update_ms", "rebuilds"], rows,
        title=(f"Maintenance — {N_UPDATES} inserts + {N_UPDATES // 10} deletes "
               f"into n={len(base)} (§I motivation)"),
    )
    emit("maintenance_churn", table)

    assert promips_per_update < h2_per_update, (
        "the lightweight index must win the churn workload"
    )
    benchmark(single_query_callable("netflix", "ProMIPS"))
