"""Serving latency: coalesced micro-batching vs per-request dispatch.

Not a paper figure: this bench records what the serving runtime's
micro-batcher buys under concurrent load.  A closed-loop client fleet (each
client waits for its answer before sending its next query) drives the
in-process :class:`repro.serve.ServingRuntime` in two modes over the same
exact-scan index:

* **per-request** (``coalesce=False``) — every search dispatches its own
  ``index.search`` under the runtime lock, which is what a naive HTTP
  handler per thread would do;
* **coalesced** — concurrent searches share a tick and are answered by one
  batched GEMM (``search_many``), per-request k trimmed from the tick max.

The cache is disabled and every client sends distinct queries, so the
comparison isolates the coalescer.  At one client the two modes are within
noise of each other (a batch of one *is* a per-request dispatch, plus at
most one tick of waiting); from a handful of concurrent clients on, the
batched GEMM amortises the scan and the coalesced p50 must win — the bench
asserts it at ``ASSERT_CLIENTS`` concurrent clients.

Latency percentiles go through the shared :func:`repro.eval.metrics`
helpers, so these numbers are directly comparable to the server's
``GET /stats`` output.

Run with ``pytest benchmarks/bench_serving_latency.py -s`` or directly with
``python benchmarks/bench_serving_latency.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from common import emit
from repro.data.datasets import load_dataset
from repro.eval.metrics import p50, p95
from repro.eval.reporting import format_table
from repro.serve import ServingRuntime
from repro.spec import build_index

N_POINTS = 40_000
DIM = 64
K = 10
CLIENT_COUNTS = (1, 2, 4, 8, 16)
REQUESTS_PER_CLIENT = 25
REPEATS = 3
MAX_WAIT_MS = 1.0
# The acceptance bar: coalescing must beat per-request dispatch here.
ASSERT_CLIENTS = 8


def _closed_loop(runtime: ServingRuntime, queries: np.ndarray, n_clients: int):
    """Run the closed-loop fleet once; returns every request's latency (s)."""
    per_client = np.array_split(queries[: n_clients * REQUESTS_PER_CLIENT], n_clients)
    barrier = threading.Barrier(n_clients)
    latencies: list[list[float]] = [[] for _ in range(n_clients)]

    def client(c: int) -> None:
        barrier.wait()
        for query in per_client[c]:
            start = time.perf_counter()
            runtime.search(query, k=K)
            latencies[c].append(time.perf_counter() - start)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [lat for per in latencies for lat in per]


def _best_percentiles(runtime, queries, n_clients):
    """min-of-REPEATS p50/p95 (min damps shared-host scheduling noise)."""
    best_p50, best_p95 = np.inf, np.inf
    for _ in range(REPEATS):
        latencies = _closed_loop(runtime, queries, n_clients)
        best_p50 = min(best_p50, p50(latencies))
        best_p95 = min(best_p95, p95(latencies))
    return best_p50, best_p95


def run_latency_table() -> dict[str, object]:
    dataset = load_dataset(
        "netflix", n=N_POINTS, dim=DIM,
        n_queries=max(CLIENT_COUNTS) * REQUESTS_PER_CLIENT, seed=7,
    )
    index = build_index("exact()", dataset.data, rng=1)
    rows = []
    results: dict[int, dict[str, float]] = {}
    for n_clients in CLIENT_COUNTS:
        modes: dict[str, tuple[float, float]] = {}
        for mode, coalesce in (("per-request", False), ("coalesced", True)):
            runtime = ServingRuntime(
                index,
                coalesce=coalesce,
                cache_size=0,
                max_batch=max(CLIENT_COUNTS),
                max_wait_ms=MAX_WAIT_MS,
            )
            with runtime:
                _closed_loop(runtime, dataset.queries, n_clients)  # warm-up
                modes[mode] = _best_percentiles(runtime, dataset.queries, n_clients)
        (up50, up95), (cp50, cp95) = modes["per-request"], modes["coalesced"]
        results[n_clients] = {
            "uncoalesced_p50": up50, "coalesced_p50": cp50,
            "p50_speedup": up50 / cp50 if cp50 > 0 else float("inf"),
        }
        rows.append([
            n_clients, up50 * 1e3, up95 * 1e3, cp50 * 1e3, cp95 * 1e3,
            results[n_clients]["p50_speedup"],
        ])
    table = format_table(
        ["clients", "direct_p50_ms", "direct_p95_ms", "coalesced_p50_ms",
         "coalesced_p95_ms", "p50_speedup"],
        rows,
        title=(
            f"closed-loop serving latency — {N_POINTS}x{DIM} synthetic, "
            f"exact inner, k={K}, {REQUESTS_PER_CLIENT} requests/client, "
            f"tick={MAX_WAIT_MS}ms"
        ),
    )
    return {"results": results, "table": table, "index": index,
            "queries": dataset.queries}


def _assert_coalescing_wins(results: dict[int, dict[str, float]]) -> None:
    cell = results[ASSERT_CLIENTS]
    assert cell["coalesced_p50"] < cell["uncoalesced_p50"], (
        f"coalesced p50 must beat per-request dispatch at {ASSERT_CLIENTS} "
        f"concurrent clients: coalesced "
        f"{cell['coalesced_p50'] * 1e3:.2f}ms vs per-request "
        f"{cell['uncoalesced_p50'] * 1e3:.2f}ms"
    )


def bench_serving_latency(benchmark):
    out = run_latency_table()
    emit("serving_latency", out["table"])
    _assert_coalescing_wins(out["results"])

    runtime = ServingRuntime(
        out["index"], cache_size=0, max_batch=max(CLIENT_COUNTS),
        max_wait_ms=MAX_WAIT_MS,
    )
    with runtime:
        benchmark(lambda: _closed_loop(runtime, out["queries"], ASSERT_CLIENTS))


if __name__ == "__main__":
    out = run_latency_table()
    emit("serving_latency", out["table"])
    _assert_coalescing_wins(out["results"])
