"""Fig. 8 — CPU time per query vs k on the four datasets.

Paper shape: the PQ baseline is the CPU-cheapest (pre-computed ADC lookup
tables); H2-ALSH pays for collision counting across many hash tables;
ProMIPS sits between — Quick-Probe replaces the per-point Condition-B
testing of the incremental search, keeping its CPU comparable.
"""

from __future__ import annotations

from common import DATASET_NAMES, K_VALUES, METHODS, emit, get_report, single_query_callable
from repro.eval.reporting import format_series


def bench_fig8_cpu_time(benchmark):
    blocks = []
    for dataset in DATASET_NAMES:
        series = {
            method: [get_report(dataset, method, k).cpu_ms for k in K_VALUES]
            for method in METHODS
        }
        blocks.append(
            format_series("k", K_VALUES, series,
                          title=f"Fig. 8 CPU Time (ms) — {dataset}", float_fmt="{:.2f}")
        )
        # PQ's LUT scan must be the cheapest CPU at k=10, as in the paper.
        pq = get_report(dataset, "PQ-Based", K_VALUES[0]).cpu_ms
        h2 = get_report(dataset, "H2-ALSH", K_VALUES[0]).cpu_ms
        assert pq < h2, f"{dataset}: PQ-Based must beat H2-ALSH on CPU"
    emit("fig8_cpu_time", "\n\n".join(blocks))

    benchmark(single_query_callable("p53", "ProMIPS"))
