"""Table III — the dataset summary, for both the paper profile (original
sizes) and the sim profile actually used by this benchmark suite."""

from __future__ import annotations

import numpy as np

from common import DATASET_NAMES, N_QUERIES, emit, get_dataset
from repro.data.datasets import DATASETS, table3_rows
from repro.eval.reporting import format_table


def bench_table3_datasets(benchmark):
    paper_rows = [
        [r["dataset"], r["n"], r["d"], r["size_mb"]]
        for r in table3_rows(profile="paper")
    ]
    sim_rows = []
    for name in DATASET_NAMES:
        ds = get_dataset(name)
        norms = np.linalg.norm(ds.data, axis=1)
        sim_rows.append([
            name, ds.n, ds.dim, ds.size_bytes / 2**20, ds.page_size,
            float(norms.max() / np.median(norms)),
        ])

    table_paper = format_table(
        ["dataset", "n", "d", "size_MiB(float32)"],
        paper_rows,
        title="Table III — paper profile (original sizes)",
    )
    table_sim = format_table(
        ["dataset", "n", "d", "size_MiB", "page_B", "norm max/med"],
        sim_rows,
        title=f"Table III — sim profile used by this suite ({N_QUERIES} queries)",
    )
    emit("table3_datasets", table_paper + "\n\n" + table_sim)

    # Registry paper metadata must match Table III of the paper.
    assert DATASETS["netflix"].paper_n == 17770
    assert DATASETS["yahoo"].paper_n == 624961
    assert DATASETS["p53"].paper_n == 31420
    assert DATASETS["sift"].paper_n == 11164866

    benchmark(lambda: get_dataset("netflix"))
