"""Batch-vs-single query throughput — the engine's headline number.

Not a paper figure: this bench records what the vectorized ``search_many``
paths buy over looping ``search`` on a 10k×64 synthetic workload, the
amortized multi-query cost that "To Index or Not to Index" (Abuzaid et al.)
identifies as the dominant factor in real MIPS serving.  The exact scan is
the cleanest read-out — its batch path is literally one GEMM — and is
asserted to clear a 3× speedup floor; the other methods are reported for
context (ProMIPS keeps an adaptive per-query core, so its batch win is the
amortized projection + Quick-Probe, not a full-workload GEMM).

Run with ``pytest benchmarks/bench_batch_throughput.py -s`` or directly with
``python benchmarks/bench_batch_throughput.py``.
"""

from __future__ import annotations

from common import emit
from repro.data.datasets import load_dataset
from repro.eval.harness import build_method, default_registry, measure_throughput
from repro.eval.reporting import format_table

N_POINTS = 10_000
DIM = 64
N_QUERIES = 256
K = 10
# H2-ALSH's collision counting answers ~25 q/s here; timing it would
# dominate the bench without informing the batch story (it uses the same
# generic fallback Range-LSH demonstrates).
METHODS = ["Exact", "SimHash", "PQ-Based", "Range-LSH", "ProMIPS"]
EXACT_MIN_SPEEDUP = 3.0


def run_throughput_table() -> dict[str, object]:
    dataset = load_dataset("netflix", n=N_POINTS, dim=DIM, n_queries=N_QUERIES, seed=7)
    registry = default_registry(include_extras=True)
    reports = {}
    rows = []
    for method in METHODS:
        index, _ = build_method(registry, method, dataset, seed=1)
        # The Exact row carries a hard assertion, so it gets the most timing
        # repeats (min-of-n is noise-robust but the window must be wide
        # enough to catch an uncontended run on a shared box).
        report = measure_throughput(
            index, dataset.queries, k=K, method=method, dataset=dataset.name,
            repeats=9 if method == "Exact" else 5,
        )
        reports[method] = (index, report)
        rows.append([
            method,
            "native" if report.native_batch else "fallback",
            report.loop_qps,
            report.batch_qps,
            report.speedup,
        ])
    table = format_table(
        ["method", "batch_path", "loop_qps", "batch_qps", "speedup"],
        rows,
        title=(
            f"batch vs single-query throughput — {N_POINTS}x{DIM} synthetic, "
            f"{N_QUERIES} queries, k={K}"
        ),
    )
    return {"reports": reports, "table": table, "queries": dataset.queries}


def bench_batch_throughput(benchmark):
    out = run_throughput_table()
    emit("batch_throughput", out["table"])

    exact_report = out["reports"]["Exact"][1]
    assert exact_report.native_batch
    assert exact_report.speedup >= EXACT_MIN_SPEEDUP, (
        f"vectorized exact search_many must be ≥{EXACT_MIN_SPEEDUP}x the looped "
        f"path, measured {exact_report.speedup:.2f}x"
    )

    exact_index = out["reports"]["Exact"][0]
    queries = out["queries"]
    benchmark(lambda: exact_index.search_many(queries, k=K))


if __name__ == "__main__":
    out = run_throughput_table()
    emit("batch_throughput", out["table"])
    speedup = out["reports"]["Exact"][1].speedup
    print(f"Exact batch speedup: {speedup:.2f}x (floor {EXACT_MIN_SPEEDUP}x)")
