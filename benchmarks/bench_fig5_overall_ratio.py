"""Fig. 5 — overall ratio vs k on the four datasets.

Paper shape: every method stays above 0.95; ProMIPS stays above its
approximation ratio c = 0.9 at every k (the probability guarantee at work),
and is competitive with or better than the LSH baselines.
"""

from __future__ import annotations

from common import DATASET_NAMES, K_VALUES, METHODS, emit, get_report, single_query_callable
from repro.eval.reporting import format_series


def bench_fig5_overall_ratio(benchmark):
    blocks = []
    for dataset in DATASET_NAMES:
        series = {
            method: [get_report(dataset, method, k).overall_ratio for k in K_VALUES]
            for method in METHODS
        }
        blocks.append(
            format_series("k", K_VALUES, series,
                          title=f"Fig. 5 Overall Ratio — {dataset}")
        )
        for k in K_VALUES:
            promips = get_report(dataset, "ProMIPS", k).overall_ratio
            assert promips >= 0.9, (
                f"{dataset} k={k}: ProMIPS ratio {promips:.4f} fell below c=0.9"
            )
            for method in METHODS:
                # 16-bit-code baselines sag on the hardest dataset (P53);
                # the paper band is ≥0.95, our floor tolerates sim-scale
                # slack for the baselines while holding ProMIPS to c.
                assert get_report(dataset, method, k).overall_ratio >= 0.8, (
                    f"{dataset} k={k}: {method} ratio out of the paper's regime"
                )
    emit("fig5_overall_ratio", "\n\n".join(blocks))

    benchmark(single_query_callable("netflix", "ProMIPS"))
