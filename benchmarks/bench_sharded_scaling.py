"""Sharded serving throughput: batch QPS at 1/2/4/8 shards.

Not a paper figure: this bench records what the :class:`ShardedIndex`
fan-out buys on a multi-core host.  The inner method is the exact scan —
its batch path is one GEMM per shard, BLAS releases the GIL inside it, so
shards genuinely overlap on real cores and the per-shard timings show each
shard doing ~1/S of the work.  On a single-core host the fan-out degrades
gracefully (thread overhead only), so the scaling assertion is gated on the
visible core count.

Run with ``pytest benchmarks/bench_sharded_scaling.py -s`` or directly with
``python benchmarks/bench_sharded_scaling.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import emit
from repro.core.sharded import ShardedIndex
from repro.data.datasets import load_dataset
from repro.eval.reporting import format_table

N_POINTS = 20_000
DIM = 64
N_QUERIES = 256
K = 10
SHARD_COUNTS = (1, 2, 4, 8)
REPEATS = 5
# Below this many visible cores the fan-out cannot overlap; report only.
MIN_CORES_FOR_ASSERT = 4
MIN_MULTI_SHARD_SPEEDUP = 1.05


def run_scaling_table() -> dict[str, object]:
    dataset = load_dataset("netflix", n=N_POINTS, dim=DIM, n_queries=N_QUERIES, seed=7)
    rows = []
    qps_by_shards: dict[int, float] = {}
    indexes: dict[int, ShardedIndex] = {}
    for shards in SHARD_COUNTS:
        index = ShardedIndex.build(
            dataset.data, inner="exact()", shards=shards, rng=1
        )
        indexes[shards] = index
        index.search_many(dataset.queries, k=K)  # untimed warm-up
        best = np.inf
        for _ in range(REPEATS):
            start = time.perf_counter()
            index.search_many(dataset.queries, k=K)
            best = min(best, time.perf_counter() - start)
        qps = N_QUERIES / best if best > 0 else float("inf")
        qps_by_shards[shards] = qps
        per_shard = index.last_shard_seconds or []
        rows.append([
            shards,
            qps,
            qps / qps_by_shards[SHARD_COUNTS[0]],
            max(per_shard) * 1e3 if per_shard else 0.0,
            min(per_shard) * 1e3 if per_shard else 0.0,
        ])
    table = format_table(
        ["shards", "batch_qps", "vs_1_shard", "slowest_shard_ms", "fastest_shard_ms"],
        rows,
        title=(
            f"sharded batch throughput — {N_POINTS}x{DIM} synthetic, "
            f"{N_QUERIES} queries, k={K}, exact inner, "
            f"{os.cpu_count()} cores visible"
        ),
    )
    return {"qps": qps_by_shards, "table": table, "indexes": indexes,
            "queries": dataset.queries}


def _assert_scaling(qps: dict[int, float]) -> None:
    cores = os.cpu_count() or 1
    best_multi = max(q for s, q in qps.items() if s > 1)
    if cores >= MIN_CORES_FOR_ASSERT:
        assert best_multi >= MIN_MULTI_SHARD_SPEEDUP * qps[1], (
            f"multi-shard batch throughput must beat 1 shard by "
            f"≥{MIN_MULTI_SHARD_SPEEDUP}x on a {cores}-core host, measured "
            f"{best_multi / qps[1]:.2f}x"
        )
    else:
        print(
            f"[advisory] only {cores} core(s) visible — scaling assertion "
            f"skipped (best multi-shard ratio {best_multi / qps[1]:.2f}x)"
        )


def bench_sharded_scaling(benchmark):
    out = run_scaling_table()
    emit("sharded_scaling", out["table"])
    _assert_scaling(out["qps"])

    index = out["indexes"][max(SHARD_COUNTS)]
    queries = out["queries"]
    benchmark(lambda: index.search_many(queries, k=K))


if __name__ == "__main__":
    out = run_scaling_table()
    emit("sharded_scaling", out["table"])
    _assert_scaling(out["qps"])
