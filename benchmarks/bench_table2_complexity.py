"""Table II — time and space complexity, checked empirically.

The paper states ProMIPS costs ``O(d + n log n)`` time per query and
``O(nd + n log n)`` space.  The bench measures query CPU time and index
size while scaling n (fixed d) and d (fixed n), and checks the growth is
compatible: sub-linear-ish query time in n (far from the O(n·d) exact scan)
and near-linear index size in n.
"""

from __future__ import annotations

import time

import numpy as np

from common import emit, single_query_callable
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.data.synthetic import make_latent_factor, sample_queries
from repro.eval.reporting import format_table


def _measure(n: int, dim: int, n_queries: int = 15) -> dict:
    rng = np.random.default_rng(5)
    data, _ = make_latent_factor(n, dim, rng)
    queries, _ = sample_queries(data, n_queries, rng)
    t0 = time.perf_counter()
    index = ProMIPS.build(data, ProMIPSParams(), rng=1)
    build_s = time.perf_counter() - t0

    cpu, pages = [], []
    for q in queries:
        t0 = time.perf_counter()
        res = index.search(q, k=10)
        cpu.append(time.perf_counter() - t0)
        pages.append(res.stats.pages)
    return {
        "n": n,
        "d": dim,
        "m": index.m,
        "build_s": build_s,
        "index_mb": index.index_size_bytes() / 2**20,
        "query_ms": float(np.mean(cpu)) * 1e3,
        "pages": float(np.mean(pages)),
    }


def bench_table2_scaling(benchmark):
    n_sweep = [_measure(n, 48) for n in (4000, 8000, 16000, 32000)]
    d_sweep = [_measure(8000, d) for d in (32, 64, 128)]

    headers = ["n", "d", "m", "build_s", "index_mb", "query_ms", "pages"]
    rows = [[r[h] for h in headers] for r in n_sweep + d_sweep]
    table = format_table(
        headers, rows,
        title=("Table II (empirical) — ProMIPS scaling; paper claims "
               "time O(d + n log n), space O(nd + n log n)"),
    )
    emit("table2_complexity", table)

    # Index size ~ linear in n: growing n by 8x should grow the index by
    # less than ~16x (n log n regime) and more than ~4x.
    size_ratio = n_sweep[-1]["index_mb"] / n_sweep[0]["index_mb"]
    assert 3.0 < size_ratio < 20.0, f"index growth {size_ratio:.1f}x off-regime"

    # Query time far from linear in n: 8x data ⇒ well under 8x time.
    time_ratio = n_sweep[-1]["query_ms"] / max(n_sweep[0]["query_ms"], 1e-9)
    assert time_ratio < 8.0, f"query time grew {time_ratio:.1f}x over an 8x n-sweep"

    benchmark(single_query_callable("netflix", "ProMIPS"))
