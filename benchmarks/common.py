"""Shared infrastructure for the benchmark suite.

Every figure of the paper's evaluation draws on the same underlying runs
(build each method once per dataset, query the workload at several k).  This
module caches those runs — in memory within one pytest session, and as JSON
under ``benchmarks/results/`` across sessions — so the per-figure benches
stay cheap and mutually consistent.

Profiles (env ``REPRO_BENCH_PROFILE``):

* ``quick`` (default) — reduced dataset sizes / k-grid; minutes end-to-end.
* ``full``  — the DESIGN.md sim sizes with the paper's 100-query workload
  and k ∈ {10, …, 100}.

The dataset *shapes* (generators, norm structure, page sizes) are identical
between profiles; only n/d and the workload density change.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.data.datasets import Dataset, load_dataset
from repro.eval.ground_truth import GroundTruth
from repro.eval.harness import (
    BuildReport,
    QueryReport,
    build_method,
    default_registry,
    run_method,
)

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "quick")

_QUICK_SIZES = {
    "netflix": dict(n=12000, dim=64),
    "yahoo": dict(n=24000, dim=64),
    "p53": dict(n=5000, dim=768),
    "sift": dict(n=30000, dim=64),
}

if PROFILE == "quick":
    K_VALUES = [10, 40, 70, 100]
    N_QUERIES = 40
else:
    K_VALUES = list(range(10, 101, 10))
    N_QUERIES = 100

DATASET_NAMES = ["netflix", "yahoo", "p53", "sift"]
METHODS = ["ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"]
SEED = 1

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

_registry = default_registry()
_datasets: dict[str, Dataset] = {}
_ground_truths: dict[str, GroundTruth] = {}
_indexes: dict[tuple[str, str], tuple[object, BuildReport]] = {}
_reports: dict[tuple, QueryReport] = {}


def get_dataset(name: str) -> Dataset:
    if name not in _datasets:
        overrides = _QUICK_SIZES[name] if PROFILE == "quick" else {}
        _datasets[name] = load_dataset(name, n_queries=N_QUERIES, **overrides)
    return _datasets[name]


def get_ground_truth(name: str) -> GroundTruth:
    if name not in _ground_truths:
        ds = get_dataset(name)
        _ground_truths[name] = GroundTruth(ds.data, ds.queries, k_max=max(K_VALUES))
    return _ground_truths[name]


def get_index(dataset: str, method: str):
    key = (dataset, method)
    if key not in _indexes:
        _indexes[key] = build_method(_registry, method, get_dataset(dataset), seed=SEED)
    return _indexes[key]


def get_build_report(dataset: str, method: str) -> BuildReport:
    return get_index(dataset, method)[1]


def _cache_key(dataset: str, method: str, k: int, extra: str = "") -> str:
    ds = get_dataset(dataset)
    payload = f"v4|{PROFILE}|{dataset}|{ds.n}x{ds.dim}|{method}|k={k}|q={N_QUERIES}|{extra}"
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def _file_cache_path(key: str) -> Path:
    return RESULTS_DIR / "cache" / f"{key}.json"


def get_report(
    dataset: str, method: str, k: int, search_kwargs: dict | None = None
) -> QueryReport:
    """One (dataset, method, k[, c/p overrides]) cell, cached at both levels.

    CPU/total-time fields are only file-cached for reuse *within* a machine;
    page/ratio/recall numbers are deterministic given the seed.
    """
    extra = json.dumps(search_kwargs, sort_keys=True) if search_kwargs else ""
    mem_key = (dataset, method, k, extra)
    if mem_key in _reports:
        return _reports[mem_key]

    file_key = _file_cache_path(_cache_key(dataset, method, k, extra))
    if file_key.exists():
        report = QueryReport(**json.loads(file_key.read_text()))
        _reports[mem_key] = report
        return report

    index, _ = get_index(dataset, method)
    report = run_method(
        index,
        get_dataset(dataset),
        get_ground_truth(dataset),
        k=k,
        method=method,
        search_kwargs=search_kwargs,
    )
    _reports[mem_key] = report
    file_key.parent.mkdir(exist_ok=True)
    file_key.write_text(json.dumps(asdict(report)))
    return report


def single_query_callable(dataset: str, method: str, k: int = 10):
    """A zero-argument closure running one representative query — the thing
    pytest-benchmark times in each figure's bench."""
    index, _ = get_index(dataset, method)
    query = get_dataset(dataset).queries[0]

    def run():
        return index.search(query, k=k)

    return run


def emit(name: str, text: str) -> None:
    """Print a figure's table and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
