"""Fig. 10 — impact of the approximation ratio c on ProMIPS (k=10, p=0.5).

Paper shape: the overall ratio decreases as c decreases (smaller c ⇒
smaller searching range ⇒ fewer candidates) yet always stays above c; page
accesses shrink along with the range.
"""

from __future__ import annotations

from common import DATASET_NAMES, emit, get_report, single_query_callable
from repro.eval.reporting import format_table

C_VALUES = [0.7, 0.8, 0.9]
K = 10


def bench_fig10_impact_c(benchmark):
    ratio_rows, page_rows = [], []
    for dataset in DATASET_NAMES:
        reports = {
            c: get_report(dataset, "ProMIPS", K, search_kwargs={"c": c, "p": 0.5})
            for c in C_VALUES
        }
        ratio_rows.append([dataset, *(reports[c].overall_ratio for c in C_VALUES)])
        page_rows.append([dataset, *(reports[c].pages for c in C_VALUES)])
        for c in C_VALUES:
            assert reports[c].overall_ratio >= c, (
                f"{dataset} c={c}: measured ratio {reports[c].overall_ratio:.4f} "
                "violates the guarantee band"
            )
        # Smaller c ⇒ no more pages than larger c (Fig. 10(b) trend).
        assert reports[0.7].pages <= reports[0.9].pages * 1.05

    table_a = format_table(
        ["dataset", *[f"c={c}" for c in C_VALUES]], ratio_rows,
        title="Fig. 10(a) Overall Ratio vs c (ProMIPS, k=10, p=0.5)",
    )
    table_b = format_table(
        ["dataset", *[f"c={c}" for c in C_VALUES]], page_rows,
        title="Fig. 10(b) Page Access vs c (ProMIPS, k=10, p=0.5)",
        float_fmt="{:.0f}",
    )
    emit("fig10_impact_c", table_a + "\n\n" + table_b)

    benchmark(single_query_callable("netflix", "ProMIPS"))
