"""Declarative index specs and the self-registering method registry.

Every MIPS method in the repository is addressed by a declarative
:class:`IndexSpec` — a method name plus a flat dict of typed parameters —
instead of a bespoke constructor call.  Specs are constructible from
keyword arguments, a plain dict, or a parseable string::

    IndexSpec("promips", {"c": 0.9, "p": 0.5})
    IndexSpec.parse("promips(c=0.9, p=0.5)")
    IndexSpec.coerce({"method": "h2alsh", "params": {"c": 0.8}})

and round-trip through their string form (``IndexSpec.parse(str(spec)) ==
spec``), which is what lets the persistence layer record exactly how an
index was configured.

The **registry contract**: an index class registers itself with the
:func:`register_method` decorator and implements four members —

* ``from_spec(data, spec, rng=None)`` (classmethod): build the index from a
  dataset and a spec; ``rng`` passes through :func:`repro.core.rng.resolve_rng`.
* ``spec()``: the round-trippable current configuration as an
  :class:`IndexSpec` (canonical method name, fully resolved parameters).
* ``state()``: the built index's arrays as a flat ``dict[str, np.ndarray]``
  (everything its searches need that is not derivable from ``spec()``).
* ``from_state(spec, state)`` (classmethod): reconstruct a built index from
  ``spec()`` + ``state()`` output with bit-identical search behaviour.

:func:`build_index` dispatches a spec to the registered class, and
``repro.core.persist`` uses the same contract to save/load **any**
registered method through one versioned ``.npz`` envelope.

Registered methods (canonical names): ``promips``, ``dynamic``, ``h2alsh``,
``rangelsh``, ``pq``, ``exact``, ``simhash``, and the composite ``sharded``
(horizontal partitioning over any of the others).  The paper's display names
("ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based", ...) are registered aliases,
so harness and CLI names resolve to the same classes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from importlib import import_module

import numpy as np

from repro.core.rng import resolve_rng

__all__ = [
    "IndexSpec",
    "register_method",
    "get_method",
    "registered_methods",
    "build_index",
]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")
_SPEC_RE = re.compile(r"(?s)\s*([A-Za-z_][A-Za-z0-9_\-]*)\s*(?:\((.*)\))?\s*")


def _normalize(name: str) -> str:
    """Registry key for a method name: case- and punctuation-insensitive."""
    return re.sub(r"[^a-z0-9]", "", name.lower())


def _coerce_value(value):
    """Normalise a parameter value to a plain spec literal (or raise)."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_coerce_value(v) for v in value)
    raise TypeError(
        "spec parameter values must be None, bool, int, float, str or "
        f"tuples of those, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class IndexSpec:
    """A method name plus its typed build parameters.

    Attributes:
        method: registered method name (matched case/punctuation-insensitively,
            so ``"ProMIPS"``, ``"promips"`` and ``"H2-ALSH"``/``"h2alsh"``
            address the same classes).
        params: flat parameter mapping; values are plain literals so every
            spec round-trips through ``str``/:meth:`parse` and JSON.
    """

    method: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or not _NAME_RE.fullmatch(self.method):
            raise ValueError(f"invalid method name {self.method!r}")
        clean = {}
        for key, value in dict(self.params).items():
            if not isinstance(key, str) or not key.isidentifier():
                raise ValueError(f"invalid parameter name {key!r}")
            clean[key] = _coerce_value(value)
        object.__setattr__(self, "params", clean)

    # ------------------------------------------------------------ construction

    @classmethod
    def parse(cls, text: str) -> "IndexSpec":
        """Parse ``"name"`` or ``"name(key=value, ...)"`` into a spec.

        Values use Python literal syntax: ``promips(c=0.9, p=0.5, m=None)``,
        ``simhash(n_bits=32)``, ``exact``.
        """
        if not isinstance(text, str):
            raise TypeError(f"expected a spec string, got {type(text).__name__}")
        match = _SPEC_RE.fullmatch(text)
        if match is None:
            raise ValueError(f"unparseable index spec {text!r}")
        name, args = match.group(1), match.group(2)
        params: dict = {}
        if args and args.strip():
            try:
                call = ast.parse(f"_spec({args})", mode="eval").body
            except SyntaxError as exc:
                raise ValueError(f"unparseable spec parameters in {text!r}") from exc
            if call.args:
                raise ValueError(
                    f"spec parameters must be keyword=value pairs, got {text!r}"
                )
            for kw in call.keywords:
                if kw.arg is None:
                    raise ValueError(f"'**' is not allowed in a spec: {text!r}")
                try:
                    params[kw.arg] = ast.literal_eval(kw.value)
                except ValueError as exc:
                    raise ValueError(
                        f"parameter {kw.arg!r} in {text!r} is not a literal"
                    ) from exc
        return cls(name, params)

    @classmethod
    def coerce(cls, spec: "IndexSpec | str | dict") -> "IndexSpec":
        """Normalise any accepted spec form (spec, string, dict) to a spec."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            return cls.parse(spec)
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        raise TypeError(
            f"cannot interpret {type(spec).__name__} as an IndexSpec "
            "(expected IndexSpec, str, or dict)"
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "IndexSpec":
        """Build from ``{"method": ..., "params": {...}}`` (params optional)."""
        extra = set(payload) - {"method", "params"}
        if "method" not in payload or extra:
            raise ValueError(
                f"spec dict needs 'method' and optional 'params', got {sorted(payload)}"
            )
        return cls(payload["method"], dict(payload.get("params") or {}))

    # ------------------------------------------------------------- conversion

    def to_dict(self) -> dict:
        """JSON-ready form, the inverse of :meth:`from_dict`."""
        return {"method": self.method, "params": dict(self.params)}

    def with_params(self, **overrides) -> "IndexSpec":
        """A copy with ``overrides`` merged into the parameters."""
        return IndexSpec(self.method, {**self.params, **overrides})

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={self.params[k]!r}" for k in sorted(self.params))
        return f"{self.method}({inner})"


# --------------------------------------------------------------------- registry

_REGISTRY: dict[str, type] = {}

# Modules whose import registers every built-in method (kept lazy so that
# `import repro.spec` inside an index module is cycle-free).
_METHOD_MODULES = (
    "repro.core.promips",
    "repro.core.dynamic",
    "repro.baselines.exact",
    "repro.baselines.simhash",
    "repro.baselines.rangelsh",
    "repro.baselines.h2alsh",
    "repro.baselines.pq",
    "repro.core.sharded",
)


def register_method(name: str, *, aliases: tuple[str, ...] = ()):
    """Class decorator: register an index class under ``name`` (+ aliases).

    Sets ``cls.method_name`` to the canonical name.  The decorated class must
    implement the registry contract (``from_spec`` / ``spec`` / ``state`` /
    ``from_state``, see the module docstring).
    """

    def decorate(cls: type) -> type:
        cls.method_name = name
        for alias in (name, *aliases):
            key = _normalize(alias)
            current = _REGISTRY.get(key)
            if current is not None and current is not cls:
                raise ValueError(
                    f"method alias {alias!r} already registered to "
                    f"{current.__name__}"
                )
            _REGISTRY[key] = cls
        return cls

    return decorate


def _ensure_registered() -> None:
    for module in _METHOD_MODULES:
        import_module(module)


def get_method(name: str) -> type:
    """The registered index class for a method name or alias."""
    _ensure_registered()
    cls = _REGISTRY.get(_normalize(name))
    if cls is None:
        raise KeyError(
            f"unknown method {name!r}; registered: {registered_methods()}"
        )
    return cls


def registered_methods() -> list[str]:
    """Sorted canonical names of every registered method."""
    _ensure_registered()
    return sorted({cls.method_name for cls in _REGISTRY.values()})


def build_index(
    spec: IndexSpec | str | dict,
    data: np.ndarray,
    rng: np.random.Generator | int | None = None,
):
    """Build any registered method from a declarative spec.

    Args:
        spec: an :class:`IndexSpec`, a parseable string like
            ``"promips(c=0.9, p=0.5)"``, or a ``{"method", "params"}`` dict.
        data: ``(n, d)`` dataset to index.
        rng: generator or seed (see :func:`repro.core.rng.resolve_rng`).

    Returns:
        A built index satisfying :class:`repro.api.MIPSIndex`.
    """
    spec = IndexSpec.coerce(spec)
    cls = get_method(spec.method)
    try:
        return cls.from_spec(data, spec, rng=resolve_rng(rng))
    except TypeError as exc:
        raise ValueError(f"invalid parameters for {spec.method!r}: {exc}") from exc
