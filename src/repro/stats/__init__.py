"""Statistical substrate: chi-square distribution built from scratch."""

from repro.stats.chi2 import ChiSquare, chi2_cdf, chi2_pdf, chi2_ppf
from repro.stats.special import (
    erf,
    log_gamma,
    regularized_lower_gamma,
    std_normal_cdf,
)

__all__ = [
    "ChiSquare",
    "chi2_cdf",
    "chi2_pdf",
    "chi2_ppf",
    "erf",
    "log_gamma",
    "regularized_lower_gamma",
    "std_normal_cdf",
]
