"""Chi-square distribution: CDF ``Ψm`` and inverse CDF ``Ψm⁻¹``.

ProMIPS uses the chi-square CDF everywhere a probability guarantee is made:

* Condition B (Formula 2) tests ``Ψm(dis²(P(oi),P(q)) / denom) ≥ p``;
* Quick-Probe's Test A tests ``Ψm(LB² / (c·(‖o‖₁+‖q‖₁)²)) ≥ p``;
* the compensation radius is ``r' = sqrt(Ψm⁻¹(p) · denom)``.

``Ψm`` is the CDF of the chi-square distribution with ``m`` degrees of
freedom, ``Ψm(x) = P(m/2, x/2)`` with ``P`` the regularized lower incomplete
gamma function implemented in :mod:`repro.stats.special`.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.stats.special import log_gamma, regularized_lower_gamma

__all__ = ["chi2_cdf", "chi2_ppf", "chi2_pdf", "ChiSquare"]


def chi2_cdf(x: float, df: int) -> float:
    """CDF ``Ψ_df(x)`` of the chi-square distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"chi2_cdf requires df > 0, got {df}")
    if x <= 0.0:
        return 0.0
    if math.isinf(x):
        return 1.0
    return regularized_lower_gamma(0.5 * df, 0.5 * x)


def chi2_pdf(x: float, df: int) -> float:
    """Density of the chi-square distribution (used by Newton refinement)."""
    if df <= 0:
        raise ValueError(f"chi2_pdf requires df > 0, got {df}")
    if x <= 0.0:
        return 0.0
    half = 0.5 * df
    log_pdf = (half - 1.0) * math.log(x) - 0.5 * x - half * math.log(2.0) - log_gamma(half)
    return math.exp(log_pdf)


def chi2_ppf(p: float, df: int) -> float:
    """Inverse CDF ``Ψ_df⁻¹(p)``, by bracketed bisection with Newton polish.

    Args:
        p: target probability in ``[0, 1)``.  ``p = 0`` returns ``0``.
        df: degrees of freedom, positive.
    """
    if df <= 0:
        raise ValueError(f"chi2_ppf requires df > 0, got {df}")
    if not 0.0 <= p < 1.0:
        raise ValueError(f"chi2_ppf requires 0 <= p < 1, got {p}")
    if p == 0.0:
        return 0.0

    # Bracket the root: the mean of chi2(df) is df, variance 2·df, so a few
    # standard deviations above the mean covers any p we care about.
    lo, hi = 0.0, float(df) + 10.0
    while chi2_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - unreachable for p < 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if chi2_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    x = 0.5 * (lo + hi)

    # A couple of Newton steps sharpen the bisection estimate.
    for _ in range(4):
        pdf = chi2_pdf(x, df)
        if pdf <= 0.0:
            break
        step = (chi2_cdf(x, df) - p) / pdf
        candidate = x - step
        if candidate <= 0.0:
            break
        x = candidate
    return x


class ChiSquare:
    """Chi-square distribution with memoized inverse-CDF lookups.

    ProMIPS evaluates ``Ψm`` per candidate but ``Ψm⁻¹(p)`` only at a handful
    of ``p`` values, so the inverse is cached.
    """

    def __init__(self, df: int) -> None:
        if df <= 0:
            raise ValueError(f"ChiSquare requires df > 0, got {df}")
        self.df = int(df)
        self._ppf_cached = lru_cache(maxsize=64)(lambda p: chi2_ppf(p, self.df))

    def cdf(self, x: float) -> float:
        """``Ψ_df(x)``."""
        return chi2_cdf(x, self.df)

    def ppf(self, p: float) -> float:
        """``Ψ_df⁻¹(p)`` (memoized)."""
        return self._ppf_cached(p)

    def __repr__(self) -> str:
        return f"ChiSquare(df={self.df})"
