"""Special functions needed by the chi-square distribution.

The library deliberately implements the regularized lower incomplete gamma
function from scratch (Lanczos log-gamma, power series, and continued
fraction) so the core index has no runtime dependency beyond numpy.  The
test suite cross-checks every function against scipy.

The implementations follow the classic ``gser``/``gcf`` split: the power
series converges quickly for ``x < a + 1`` and the Lentz continued fraction
for ``x >= a + 1``.
"""

from __future__ import annotations

import math

__all__ = ["log_gamma", "regularized_lower_gamma", "erf", "std_normal_cdf"]

# Lanczos coefficients (g = 7, n = 9); accurate to ~15 significant digits.
_LANCZOS_G = 7.0
_LANCZOS_COEFFS = (
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
)

_MAX_ITERATIONS = 500
_EPSILON = 1e-15
_TINY = 1e-300


def log_gamma(x: float) -> float:
    """Natural log of the gamma function for ``x > 0`` (Lanczos approximation)."""
    if x <= 0.0:
        raise ValueError(f"log_gamma requires x > 0, got {x}")
    if x < 0.5:
        # Reflection formula keeps the Lanczos series in its accurate range.
        return math.log(math.pi / math.sin(math.pi * x)) - log_gamma(1.0 - x)
    x -= 1.0
    acc = _LANCZOS_COEFFS[0]
    for i, coeff in enumerate(_LANCZOS_COEFFS[1:], start=1):
        acc += coeff / (x + i)
    t = x + _LANCZOS_G + 0.5
    return 0.5 * math.log(2.0 * math.pi) + (x + 0.5) * math.log(t) - t + math.log(acc)


def _lower_gamma_series(a: float, x: float) -> float:
    """Regularized lower incomplete gamma via power series (for x < a + 1)."""
    term = 1.0 / a
    total = term
    denom = a
    for _ in range(_MAX_ITERATIONS):
        denom += 1.0
        term *= x / denom
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    return total * math.exp(-x + a * math.log(x) - log_gamma(a))

def _upper_gamma_continued_fraction(a: float, x: float) -> float:
    """Regularized *upper* incomplete gamma via Lentz continued fraction."""
    b = x + 1.0 - a
    c = 1.0 / _TINY
    d = 1.0 / b if b != 0.0 else 1.0 / _TINY
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _TINY:
            d = _TINY
        c = b + an / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    return h * math.exp(-x + a * math.log(x) - log_gamma(a))


def regularized_lower_gamma(a: float, x: float) -> float:
    """Regularized lower incomplete gamma function P(a, x).

    ``P(a, x) = γ(a, x) / Γ(a)`` with ``P(a, 0) = 0`` and ``P(a, ∞) = 1``.

    Args:
        a: shape parameter, must be positive.
        x: evaluation point, must be non-negative.
    """
    if a <= 0.0:
        raise ValueError(f"regularized_lower_gamma requires a > 0, got a={a}")
    if x < 0.0:
        raise ValueError(f"regularized_lower_gamma requires x >= 0, got x={x}")
    if x == 0.0:
        return 0.0
    if math.isinf(x):
        return 1.0
    if x < a + 1.0:
        return min(1.0, _lower_gamma_series(a, x))
    return max(0.0, 1.0 - _upper_gamma_continued_fraction(a, x))


def erf(x: float) -> float:
    """Error function, expressed through the incomplete gamma function."""
    if x == 0.0:
        return 0.0
    value = regularized_lower_gamma(0.5, x * x)
    return math.copysign(value, x)


def std_normal_cdf(x: float) -> float:
    """Standard normal CDF Φ(x), used by the LSH collision-probability maths."""
    return 0.5 * (1.0 + erf(x / math.sqrt(2.0)))
