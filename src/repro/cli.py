"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare`` — build all four methods on a registry dataset and print the
  §VIII metric table (ratio / recall / pages / CPU / total).
* ``sweep`` — one method over a k-grid (the row source of Figs. 5–9).
* ``tune`` — ProMIPS over a c- and p-grid (Figs. 10–11).
* ``throughput`` — queries/sec of the looped single-query path vs the
  vectorized ``search_many`` batch path, per method.
* ``datasets`` — print Table III for the sim and paper profiles.

Examples::

    python -m repro compare --dataset netflix --n 8000 --dim 64 --k 10
    python -m repro sweep --dataset sift --method ProMIPS --ks 10,40,100
    python -m repro tune --dataset yahoo --cs 0.7,0.9 --ps 0.3,0.9
    python -m repro throughput --dataset netflix --n 10000 --queries 256 --k 10
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.data.datasets import DATASETS, load_dataset, table3_rows
from repro.eval.ground_truth import GroundTruth
from repro.eval.harness import (
    build_method,
    default_registry,
    measure_throughput,
    run_method,
)
from repro.eval.reporting import format_series, format_table

__all__ = ["main"]


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="netflix", choices=sorted(DATASETS))
    parser.add_argument("--n", type=int, default=None, help="override point count")
    parser.add_argument("--dim", type=int, default=None, help="override dimensionality")
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--seed", type=int, default=20210406)


def _load(args: argparse.Namespace):
    return load_dataset(
        args.dataset, n=args.n, dim=args.dim, n_queries=args.queries, seed=args.seed
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = _load(args)
    registry = default_registry()
    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=args.k)
    rows = []
    for method in registry.names():
        index, build = build_method(registry, method, dataset, seed=1)
        report = run_method(index, dataset, ground_truth, k=args.k, method=method)
        rows.append([
            method, build.build_seconds, build.index_mb, report.overall_ratio,
            report.recall, report.pages, report.cpu_ms, report.total_ms,
        ])
    print(format_table(
        ["method", "build_s", "index_MB", "ratio", "recall", "pages", "cpu_ms",
         "total_ms"],
        rows,
        title=f"c-{args.k}-AMIP on {dataset.name} (n={dataset.n}, d={dataset.dim})",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    dataset = _load(args)
    ks = [int(x) for x in args.ks.split(",")]
    registry = default_registry()
    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=max(ks))
    index, _ = build_method(registry, args.method, dataset, seed=1)
    reports = [run_method(index, dataset, ground_truth, k=k, method=args.method)
               for k in ks]
    print(format_series(
        "k", ks,
        {
            "ratio": [r.overall_ratio for r in reports],
            "recall": [r.recall for r in reports],
            "pages": [r.pages for r in reports],
            "cpu_ms": [r.cpu_ms for r in reports],
        },
        title=f"{args.method} on {dataset.name}",
    ))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.promips import ProMIPS, ProMIPSParams
    from repro.eval.metrics import overall_ratio

    dataset = _load(args)
    cs = [float(x) for x in args.cs.split(",")]
    ps = [float(x) for x in args.ps.split(",")]
    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=args.k)
    index = ProMIPS.build(
        dataset.data, ProMIPSParams(page_size=dataset.page_size), rng=1
    )
    rows = []
    for c in cs:
        for p in ps:
            ratios, pages = [], []
            for qi, q in enumerate(dataset.queries):
                _, exact_ips = ground_truth.topk(qi, args.k)
                res = index.search(q, k=args.k, c=c, p=p)
                ratios.append(overall_ratio(res.scores, exact_ips))
                pages.append(res.stats.pages)
            rows.append([c, p, float(np.mean(ratios)), float(np.mean(pages))])
    print(format_table(
        ["c", "p", "ratio", "pages"], rows,
        title=f"ProMIPS c/p sweep on {dataset.name} (k={args.k})",
    ))
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    if args.repeats <= 0:
        print(f"error: --repeats must be positive, got {args.repeats}")
        return 2
    dataset = _load(args)
    registry = default_registry(include_extras=True)
    methods = (
        registry.names() if args.methods == "all" else args.methods.split(",")
    )
    unknown = [m for m in methods if m not in registry.names()]
    if unknown:
        print(f"error: unknown methods {unknown}; known: {registry.names()}")
        return 2
    rows = []
    for method in methods:
        index, _ = build_method(registry, method, dataset, seed=1)
        report = measure_throughput(
            index,
            dataset.queries,
            k=args.k,
            method=method,
            dataset=dataset.name,
            repeats=args.repeats,
        )
        rows.append([
            method,
            "native" if report.native_batch else "fallback",
            report.loop_qps,
            report.batch_qps,
            report.speedup,
        ])
    print(format_table(
        ["method", "batch_path", "loop_qps", "batch_qps", "speedup"],
        rows,
        title=(
            f"single vs batch throughput on {dataset.name} "
            f"(n={dataset.n}, d={dataset.dim}, q={len(dataset.queries)}, k={args.k})"
        ),
    ))
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    for profile in ("paper", "sim"):
        kwargs: dict = {"n_queries": 2}
        if profile == "sim":
            if args.n is not None:
                kwargs["n"] = args.n
            if args.dim is not None:
                kwargs["dim"] = args.dim
        rows = [
            [r["dataset"], r["n"], r["d"], r["size_mb"]]
            for r in table3_rows(profile=profile, **(kwargs if profile == "sim" else {}))
        ]
        print(format_table(
            ["dataset", "n", "d", "size_MiB"], rows,
            title=f"Table III — {profile} profile",
        ))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ProMIPS reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="all methods on one dataset")
    _add_dataset_args(compare)
    compare.add_argument("--k", type=int, default=10)
    compare.set_defaults(func=_cmd_compare)

    sweep = sub.add_parser("sweep", help="one method over a k grid")
    _add_dataset_args(sweep)
    sweep.add_argument("--method", default="ProMIPS",
                       choices=["ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"])
    sweep.add_argument("--ks", default="10,40,70,100")
    sweep.set_defaults(func=_cmd_sweep)

    tune = sub.add_parser("tune", help="ProMIPS c/p sweep")
    _add_dataset_args(tune)
    tune.add_argument("--k", type=int, default=10)
    tune.add_argument("--cs", default="0.7,0.8,0.9")
    tune.add_argument("--ps", default="0.3,0.5,0.7,0.9")
    tune.set_defaults(func=_cmd_tune)

    throughput = sub.add_parser(
        "throughput", help="queries/sec: looped search vs search_many"
    )
    _add_dataset_args(throughput)
    throughput.add_argument("--k", type=int, default=10)
    throughput.add_argument(
        "--methods", default="all",
        help='comma list from the registry (+ "Exact", "SimHash"), or "all"',
    )
    throughput.add_argument("--repeats", type=int, default=3)
    throughput.set_defaults(func=_cmd_throughput)

    datasets = sub.add_parser("datasets", help="print Table III")
    datasets.add_argument("--n", type=int, default=None)
    datasets.add_argument("--dim", type=int, default=None)
    datasets.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
