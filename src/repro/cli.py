"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare`` — build all four methods on a registry dataset and print the
  §VIII metric table (ratio / recall / pages / CPU / total).
* ``sweep`` — one method over a k-grid (the row source of Figs. 5–9).
* ``tune`` — ProMIPS over a c- and p-grid (Figs. 10–11).
* ``throughput`` — queries/sec of the looped single-query path vs the
  vectorized ``search_many`` batch path, per method; sharded methods also
  report per-shard batch timings.
* ``build`` — build any method from a declarative spec and persist the
  index to a ``.npz`` file.
* ``query`` — reload a persisted index in a fresh process and answer the
  evaluation workload (or a query file) against it.
* ``serve`` — expose any index over HTTP: a JSON API with a micro-batching
  coalescer, a generation-aware result cache, and latency telemetry
  (see :mod:`repro.serve.server`); boots from an inline spec or a
  persisted ``.npz`` envelope.
* ``datasets`` — print Table III for the sim and paper profiles.

Method arguments accept registry names ("ProMIPS", "H2-ALSH", ...) or
inline specs like ``"promips(c=0.8, p=0.7)"`` (see :mod:`repro.spec`).

Examples::

    python -m repro compare --dataset netflix --n 8000 --dim 64 --k 10
    python -m repro sweep --dataset sift --method "promips(c=0.8)" --ks 10,40
    python -m repro tune --dataset yahoo --cs 0.7,0.9 --ps 0.3,0.9
    python -m repro throughput --dataset netflix --n 10000 --queries 256 --k 10
    python -m repro throughput --methods "sharded(inner='exact()', shards=4)"
    python -m repro build --spec "promips(c=0.9)" --dataset netflix --out idx.npz
    python -m repro query --index idx.npz --k 10
    python -m repro serve --spec "dynamic(c=0.9)" --dataset netflix --port 8080
    python -m repro serve --index idx.npz --port 8080
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.persist import inspect_index, load_index, save_index
from repro.data.datasets import DATASETS, load_dataset, table3_rows
from repro.eval.ground_truth import GroundTruth
from repro.eval.harness import (
    build_method,
    default_registry,
    measure_throughput,
    run_method,
)
from repro.eval.metrics import overall_ratio, recall
from repro.eval.reporting import format_series, format_table
from repro.spec import IndexSpec, build_index, get_method

from repro import __version__

__all__ = ["main"]


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="netflix", choices=sorted(DATASETS))
    parser.add_argument("--n", type=int, default=None, help="override point count")
    parser.add_argument("--dim", type=int, default=None, help="override dimensionality")
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--seed", type=int, default=20210406)


def _load(args: argparse.Namespace):
    return load_dataset(
        args.dataset, n=args.n, dim=args.dim, n_queries=args.queries, seed=args.seed
    )


def _split_methods(text: str) -> list[str]:
    """Split a comma list of method names, ignoring commas inside parens
    (inline specs like ``sharded(inner='exact()', shards=4)`` carry both)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
            continue
        depth += ch == "("
        depth -= ch == ")"
        current.append(ch)
    parts.append("".join(current).strip())
    return [p for p in parts if p]


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = _load(args)
    registry = default_registry()
    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=args.k)
    rows = []
    for method in registry.names():
        index, build = build_method(registry, method, dataset, seed=1)
        report = run_method(index, dataset, ground_truth, k=args.k, method=method)
        rows.append([
            method, build.build_seconds, build.index_mb, report.overall_ratio,
            report.recall, report.pages, report.cpu_ms, report.total_ms,
        ])
    print(format_table(
        ["method", "build_s", "index_MB", "ratio", "recall", "pages", "cpu_ms",
         "total_ms"],
        rows,
        title=f"c-{args.k}-AMIP on {dataset.name} (n={dataset.n}, d={dataset.dim})",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    dataset = _load(args)
    ks = [int(x) for x in args.ks.split(",")]
    registry = default_registry()
    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=max(ks))
    try:
        index, _ = build_method(registry, args.method, dataset, seed=1)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    reports = [run_method(index, dataset, ground_truth, k=k, method=args.method)
               for k in ks]
    print(format_series(
        "k", ks,
        {
            "ratio": [r.overall_ratio for r in reports],
            "recall": [r.recall for r in reports],
            "pages": [r.pages for r in reports],
            "cpu_ms": [r.cpu_ms for r in reports],
        },
        title=f"{args.method} on {dataset.name}",
    ))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.promips import ProMIPS, ProMIPSParams
    from repro.eval.metrics import overall_ratio

    dataset = _load(args)
    cs = [float(x) for x in args.cs.split(",")]
    ps = [float(x) for x in args.ps.split(",")]
    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=args.k)
    index = ProMIPS.build(
        dataset.data, ProMIPSParams(page_size=dataset.page_size), rng=1
    )
    rows = []
    for c in cs:
        for p in ps:
            ratios, pages = [], []
            for qi, q in enumerate(dataset.queries):
                _, exact_ips = ground_truth.topk(qi, args.k)
                res = index.search(q, k=args.k, c=c, p=p)
                ratios.append(overall_ratio(res.scores, exact_ips))
                pages.append(res.stats.pages)
            rows.append([c, p, float(np.mean(ratios)), float(np.mean(pages))])
    print(format_table(
        ["c", "p", "ratio", "pages"], rows,
        title=f"ProMIPS c/p sweep on {dataset.name} (k={args.k})",
    ))
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    if args.repeats <= 0:
        print(f"error: --repeats must be positive, got {args.repeats}")
        return 2
    dataset = _load(args)
    registry = default_registry(include_extras=True)
    methods = (
        registry.names() if args.methods == "all" else _split_methods(args.methods)
    )
    # Reject typos before the expensive build+measure loop: every entry must
    # be a registry name or an inline spec naming a registered method.
    for method in methods:
        if method in registry.names():
            continue
        try:
            get_method(IndexSpec.parse(method).method)
        except (ValueError, KeyError):
            print(
                f"error: unknown method {method!r}; known: {registry.names()} "
                "or an inline spec like \"sharded(inner='exact()', shards=4)\""
            )
            return 2
    rows = []
    shard_lines = []
    for method in methods:
        # Registry names and inline specs both resolve through registry.build.
        try:
            index, _ = build_method(registry, method, dataset, seed=1)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
        report = measure_throughput(
            index,
            dataset.queries,
            k=args.k,
            method=method,
            dataset=dataset.name,
            repeats=args.repeats,
        )
        rows.append([
            method,
            "native" if report.native_batch else "fallback",
            report.loop_qps,
            report.batch_qps,
            report.speedup,
        ])
        if report.shard_seconds is not None:
            timings = ", ".join(
                f"s{i}={sec * 1e3:.2f}ms" for i, sec in enumerate(report.shard_seconds)
            )
            shard_lines.append(f"{method}: per-shard batch time [{timings}]")
    print(format_table(
        ["method", "batch_path", "loop_qps", "batch_qps", "speedup"],
        rows,
        title=(
            f"single vs batch throughput on {dataset.name} "
            f"(n={dataset.n}, d={dataset.dim}, q={len(dataset.queries)}, k={args.k})"
        ),
    ))
    for line in shard_lines:
        print(line)
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    dataset = _load(args)
    start = time.perf_counter()
    try:
        index = build_index(args.spec, dataset.data, rng=args.build_seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    elapsed = time.perf_counter() - start
    # Record the workload so `query` can regenerate it in a fresh process.
    extras = {
        "dataset": {
            "name": args.dataset,
            "n": args.n,
            "dim": args.dim,
            "n_queries": args.queries,
            "seed": args.seed,
        }
    }
    path = save_index(index, args.out, extra_meta=extras)
    spec = index.spec()
    print(f"built {spec} on {dataset.name} (n={dataset.n}, d={dataset.dim}) "
          f"in {elapsed:.2f}s")
    print(f"index size: {index.index_size_bytes() / 2**20:.2f} MiB "
          f"(file: {path.stat().st_size / 2**20:.2f} MiB)")
    print(f"saved to {path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    path = Path(args.index)
    if not path.exists():
        print(f"error: no such index file {path}")
        return 2
    try:
        meta = inspect_index(path)
        index = load_index(path)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}")
        return 2
    print(f"loaded {meta['method']} index from {path} (spec: {index.spec()})")

    if args.query_file:
        queries = np.atleast_2d(np.load(args.query_file))
        dataset = None
    else:
        stored = meta.get("extras", {}).get("dataset")
        if not stored:
            print("error: index file records no dataset; pass --query-file")
            return 2
        dataset = load_dataset(
            stored["name"], n=stored["n"], dim=stored["dim"],
            n_queries=args.queries or stored["n_queries"], seed=stored["seed"],
        )
        queries = dataset.queries

    try:
        batch = index.search_many(queries, k=args.k)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if dataset is not None:
        gt = GroundTruth(dataset.data, queries, k_max=args.k)
        ratios, recalls = [], []
        for qi, result in enumerate(batch):
            exact_ids, exact_ips = gt.topk(qi, args.k)
            ratios.append(overall_ratio(result.scores, exact_ips))
            recalls.append(recall(result.ids, exact_ids))
        pages = float(np.mean([s.pages for s in batch.stats]))
        print(format_table(
            ["queries", "k", "ratio", "recall", "pages"],
            [[len(batch), args.k, float(np.mean(ratios)),
              float(np.mean(recalls)), pages]],
            title=f"reloaded-index workload on {dataset.name}",
        ))
    for qi in range(min(len(batch), args.show)):
        result = batch[qi]
        pairs = ", ".join(
            f"{pid}:{score:.4f}" for pid, score in zip(result.ids, result.scores)
        )
        print(f"query {qi}: top-{len(result)} [{pairs}]")
    return 0


def _serve_runtime(args: argparse.Namespace):
    """Build the :class:`repro.serve.ServingRuntime` the ``serve`` command
    will expose (split out so tests can boot it without a serve loop)."""
    from repro.serve import build_runtime

    runtime_kwargs = dict(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size,
        coalesce=not args.no_coalesce,
        maintenance=not args.no_maintenance,
        maintenance_poll_ms=args.maintenance_poll_ms,
    )
    if args.index is not None:
        path = Path(args.index)
        if not path.exists():
            raise ValueError(f"no such index file {path}")
        return build_runtime(index_path=path, **runtime_kwargs)
    dataset = _load(args)
    return build_runtime(
        spec=args.spec, data=dataset.data, rng=args.build_seed, **runtime_kwargs
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import make_server

    try:
        runtime = _serve_runtime(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    server = make_server(runtime, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    health = runtime.health()
    print(f"serving {health.get('spec', type(runtime.index).__name__)} "
          f"({health['n_live']} points, d={health['dim']}) "
          f"on http://{host}:{port}")
    print("endpoints: POST /search /search_batch /insert /delete, "
          "GET /stats /healthz  (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        runtime.close()
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    for profile in ("paper", "sim"):
        kwargs: dict = {"n_queries": 2}
        if profile == "sim":
            if args.n is not None:
                kwargs["n"] = args.n
            if args.dim is not None:
                kwargs["dim"] = args.dim
        rows = [
            [r["dataset"], r["n"], r["d"], r["size_mb"]]
            for r in table3_rows(profile=profile, **(kwargs if profile == "sim" else {}))
        ]
        print(format_table(
            ["dataset", "n", "d", "size_MiB"], rows,
            title=f"Table III — {profile} profile",
        ))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ProMIPS reproduction experiment runner"
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="all methods on one dataset")
    _add_dataset_args(compare)
    compare.add_argument("--k", type=int, default=10)
    compare.set_defaults(func=_cmd_compare)

    sweep = sub.add_parser("sweep", help="one method over a k grid")
    _add_dataset_args(sweep)
    sweep.add_argument(
        "--method", default="ProMIPS",
        help='registry name (ProMIPS, H2-ALSH, Range-LSH, PQ-Based) or an '
             'inline spec like "promips(c=0.8)"',
    )
    sweep.add_argument("--ks", default="10,40,70,100")
    sweep.set_defaults(func=_cmd_sweep)

    tune = sub.add_parser("tune", help="ProMIPS c/p sweep")
    _add_dataset_args(tune)
    tune.add_argument("--k", type=int, default=10)
    tune.add_argument("--cs", default="0.7,0.8,0.9")
    tune.add_argument("--ps", default="0.3,0.5,0.7,0.9")
    tune.set_defaults(func=_cmd_tune)

    throughput = sub.add_parser(
        "throughput", help="queries/sec: looped search vs search_many"
    )
    _add_dataset_args(throughput)
    throughput.add_argument("--k", type=int, default=10)
    throughput.add_argument(
        "--methods", default="all",
        help='comma list from the registry (+ "Exact", "SimHash", "Sharded"), '
             'an inline spec like "sharded(inner=\'exact()\', shards=4)", '
             'or "all"',
    )
    throughput.add_argument("--repeats", type=int, default=3)
    throughput.set_defaults(func=_cmd_throughput)

    build = sub.add_parser(
        "build", help="build any method from a spec and persist the index"
    )
    _add_dataset_args(build)
    build.add_argument(
        "--spec", required=True,
        help='index spec, e.g. "promips(c=0.9, p=0.5)" or "h2alsh(c=0.8)"',
    )
    build.add_argument("--out", required=True, help="target .npz file")
    build.add_argument(
        "--build-seed", type=int, default=1, dest="build_seed",
        help="rng seed for the build pre-process",
    )
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser(
        "query", help="reload a persisted index and answer queries against it"
    )
    query.add_argument("--index", required=True, help="index .npz written by `build`")
    query.add_argument("--k", type=int, default=10)
    query.add_argument(
        "--queries", type=int, default=None,
        help="override the stored workload's query count",
    )
    query.add_argument(
        "--query-file", default=None,
        help=".npy array of queries (skips the ratio/recall metrics)",
    )
    query.add_argument(
        "--show", type=int, default=3,
        help="print the top-k of the first N queries",
    )
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve", help="serve an index over HTTP (coalescing + caching JSON API)"
    )
    _add_dataset_args(serve)
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec",
        help='build fresh from an inline spec, e.g. "dynamic(c=0.9)" '
             "(uses the --dataset workload options)",
    )
    source.add_argument(
        "--index", help="boot from a persisted .npz envelope written by `build`"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, dest="max_batch",
        help="most concurrent searches coalesced into one batched dispatch",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, dest="max_wait_ms",
        help="longest a search waits to coalesce with neighbours",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024, dest="cache_size",
        help="LRU result-cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="dispatch each request individually (debugging / baseline mode)",
    )
    serve.add_argument(
        "--no-maintenance", action="store_true",
        help="disable background index maintenance (dynamic indexes then "
             "compact synchronously inside insert/delete, stalling queries)",
    )
    serve.add_argument(
        "--maintenance-poll-ms", type=float, default=50.0,
        dest="maintenance_poll_ms",
        help="idle re-check interval of the background maintenance thread",
    )
    serve.add_argument(
        "--build-seed", type=int, default=1, dest="build_seed",
        help="rng seed when building from --spec",
    )
    serve.set_defaults(func=_cmd_serve)

    datasets = sub.add_parser("datasets", help="print Table III")
    datasets.add_argument("--n", type=int, default=None)
    datasets.add_argument("--dim", type=int, default=None)
    datasets.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
