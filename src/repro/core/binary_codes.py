"""Binary codes and the distance bounds behind Quick-Probe (§V-A).

Each projected point ``P(o)`` is turned into an ``m``-bit code
``c(o) = (c_1(o), …, c_m(o))`` with ``c_i(o) = 1`` iff ``P_i(o) ≥ 0``.
Points sharing a code form a *group*; within a group points are sorted by
the 1-norm of their **original** vectors.

Two bounds make the codes useful (Theorems 3 and 4):

* lower bound on projected distance —
  ``dis(P(o), P(q)) ≥ (1/√m) Σ_i (c_i(o) ⊕ c_i(q)) · |P_i(q)|``;
  the right-hand side only depends on the *group* of ``o``, so one number
  covers every member;
* upper bound on original distance — ``dis(o, q) ≤ ‖o‖₁ + ‖q‖₁``.

Together they lower-bound ``dis²(P(o),P(q)) / (c · dis²(o,q))``, the quantity
Quick-Probe thresholds with ``Ψm⁻¹(p)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "sign_bits",
    "pack_code",
    "group_lower_bounds",
    "BinaryCodeGroups",
]


def sign_bits(projected: np.ndarray) -> np.ndarray:
    """Sign pattern of projected points: 1 where the coordinate is ≥ 0.

    Accepts ``(m,)`` or ``(n, m)``; returns uint8 bits of the same shape.
    """
    projected = np.asarray(projected)
    return (projected >= 0.0).astype(np.uint8)


def pack_code(bits: np.ndarray) -> np.ndarray:
    """Pack bit rows into integer codes (bit ``i`` of the code is column ``i``)."""
    bits = np.atleast_2d(np.asarray(bits, dtype=np.uint64))
    m = bits.shape[1]
    if m > 63:
        raise ValueError(f"codes wider than 63 bits are not supported, got m={m}")
    weights = (np.uint64(1) << np.arange(m, dtype=np.uint64))
    return (bits * weights[None, :]).sum(axis=1)


def group_lower_bounds(
    group_bits: np.ndarray, query_bits: np.ndarray, query_abs_proj: np.ndarray
) -> np.ndarray:
    """Theorem 3 lower bound of every group against a query.

    Args:
        group_bits: ``(G, m)`` sign bits, one row per group code.
        query_bits: ``(m,)`` sign bits of ``P(q)``.
        query_abs_proj: ``(m,)`` values ``|P_i(q)|``.

    Returns:
        ``(G,)`` array ``LB_g = (1/√m) Σ_i (bit_gi ⊕ qbit_i) · |P_i(q)|``.
    """
    group_bits = np.atleast_2d(group_bits)
    m = group_bits.shape[1]
    xor = group_bits.astype(np.int8) ^ query_bits.astype(np.int8)
    return (xor @ np.asarray(query_abs_proj, dtype=np.float64)) / np.sqrt(m)


@dataclass(frozen=True)
class _Group:
    code: int
    member_ids: np.ndarray  # sorted ascending by original 1-norm
    min_l1_id: int
    min_l1: float


class BinaryCodeGroups:
    """The Quick-Probe pre-processing artefact (§V-A, pre-process step).

    Groups projected points by binary code; members are sorted ascending by
    the 1-norm of their original vectors so "the point whose ‖o‖₁ is the
    smallest" (Algorithm 2 line 7) is the first member.

    Args:
        projected: ``(n, m)`` projected points.
        l1_norms: ``(n,)`` 1-norms of the **original** points.
    """

    def __init__(self, projected: np.ndarray, l1_norms: np.ndarray) -> None:
        projected = np.asarray(projected, dtype=np.float64)
        l1_norms = np.asarray(l1_norms, dtype=np.float64)
        if projected.ndim != 2 or projected.shape[0] == 0:
            raise ValueError(f"projected must be non-empty 2-D, got {projected.shape}")
        if l1_norms.shape != (projected.shape[0],):
            raise ValueError(
                f"l1_norms must have shape ({projected.shape[0]},), got {l1_norms.shape}"
            )
        self.n, self.m = projected.shape

        bits = sign_bits(projected)
        codes = pack_code(bits)
        order = np.lexsort((l1_norms, codes))
        sorted_codes = codes[order]
        cuts = np.flatnonzero(np.diff(sorted_codes) != 0) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [self.n]))

        self._groups: list[_Group] = []
        group_bits = np.empty((len(starts), self.m), dtype=np.uint8)
        for g, (s, e) in enumerate(zip(starts, ends)):
            ids = order[s:e].astype(np.int64)
            code = int(sorted_codes[s])
            group_bits[g] = bits[ids[0]]
            self._groups.append(
                _Group(
                    code=code,
                    member_ids=ids,
                    min_l1_id=int(ids[0]),
                    min_l1=float(l1_norms[ids[0]]),
                )
            )
        self._group_bits = group_bits
        self._min_l1 = np.array([g.min_l1 for g in self._groups])
        self._min_l1_ids = np.array([g.min_l1_id for g in self._groups], dtype=np.int64)

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    @property
    def group_bits(self) -> np.ndarray:
        """``(G, m)`` sign bits of each group's code."""
        return self._group_bits

    @property
    def min_l1(self) -> np.ndarray:
        """``(G,)`` smallest original 1-norm in each group."""
        return self._min_l1

    @property
    def min_l1_ids(self) -> np.ndarray:
        """``(G,)`` point id achieving :attr:`min_l1` per group."""
        return self._min_l1_ids

    def group(self, index: int) -> _Group:
        return self._groups[index]

    def lower_bounds(self, query_projected: np.ndarray) -> np.ndarray:
        """Theorem 3 lower bound of every group against ``P(q)``."""
        query_projected = np.asarray(query_projected, dtype=np.float64).reshape(-1)
        if query_projected.shape[0] != self.m:
            raise ValueError(
                f"query has projected dimension {query_projected.shape[0]}, expected {self.m}"
            )
        qbits = sign_bits(query_projected)
        return group_lower_bounds(self._group_bits, qbits, np.abs(query_projected))

    def size_bytes(self) -> int:
        """Binary codes (m bits per point) + per-point 1-norms, as stored for
        Quick-Probe (§VII space analysis)."""
        code_bytes = self.n * ((self.m + 7) // 8)
        norm_bytes = self.n * 8
        return code_bytes + norm_bytes

    def summary_size_bytes(self) -> int:
        """Query-time footprint of Quick-Probe: one (code, min-ℓ1 id, min-ℓ1)
        summary per group.  Algorithm 2 only ever touches each group's
        min-ℓ1 representative, so this — not the per-point artefacts — is
        what a query needs resident."""
        per_group = (self.m + 7) // 8 + 8 + 8
        return self.n_groups * per_group
