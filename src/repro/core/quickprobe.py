"""Quick-Probe (Algorithm 2, §V-A).

Instead of incrementally testing every returned NN point against Condition B,
Quick-Probe locates — from group summaries alone, without touching the disk —
a point that is likely to satisfy Condition B, and uses its projected distance
to the query as the radius of a single range search.

The probe walks the binary-code groups in *ascending* order of their
Theorem 3 lower bound ``LB``; for each group it evaluates *Test A* on the
member with the smallest original 1-norm:

    ``Ψm( LB² / (c · (‖o‖₁ + ‖q‖₁)²) ) ≥ p``

The first passing point is returned (nearest group first ⇒ tightest radius).
If no group passes, the point with the largest recorded test value is the
fallback — MIP-Search-II then relies on its compensation pass.

``c`` and ``p`` are per-probe arguments (not baked into the structure), so a
single pre-processed index serves the paper's c- and p-sweeps (Figs. 10/11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binary_codes import BinaryCodeGroups
from repro.stats.chi2 import ChiSquare

__all__ = ["ProbeOutcome", "QuickProbe"]


@dataclass(frozen=True)
class ProbeOutcome:
    """Result of one Quick-Probe invocation.

    Attributes:
        point_id: the located point ``o`` whose projected distance to the
            query becomes the range-search radius.
        test_value: the Test A statistic ``LB²/(c·(‖o‖₁+‖q‖₁)²)`` of that point.
        passed: whether Test A was satisfied (False ⇒ fallback point; the
            compensation pass of MIP-Search-II will very likely be needed).
        groups_examined: how many groups were visited before returning.
    """

    point_id: int
    test_value: float
    passed: bool
    groups_examined: int


class QuickProbe:
    """Pre-built Quick-Probe over binary-code group summaries."""

    def __init__(self, groups: BinaryCodeGroups) -> None:
        self._groups = groups
        self._chi2 = ChiSquare(groups.m)

    @property
    def chi2(self) -> ChiSquare:
        return self._chi2

    @property
    def n_groups(self) -> int:
        return self._groups.n_groups

    def probe(
        self, query_projected: np.ndarray, query_l1: float, c: float, p: float
    ) -> ProbeOutcome:
        """Run Algorithm 2 for one query.

        Args:
            query_projected: ``P(q)``, shape ``(m,)``.
            query_l1: ``‖q‖₁`` of the original query.
            c: approximation ratio (0 < c < 1).
            p: guaranteed probability (0 < p < 1).

        Returns:
            The located point (Test A pass) or the best fallback.
        """
        query_projected = np.asarray(query_projected, dtype=np.float64).reshape(-1)
        return self.probe_many(
            query_projected[None, :], np.array([query_l1]), c, p
        )[0]

    def probe_many(
        self,
        queries_projected: np.ndarray,
        query_l1s: np.ndarray,
        c: float,
        p: float,
    ) -> list[ProbeOutcome]:
        """Run Algorithm 2 for a whole batch with one vectorized group scan.

        The Theorem 3 lower bounds stay per-query multiplies (their XOR
        matrix is query-specific), but the scan itself — ordering groups by
        LB, evaluating Test A on each min-ℓ1 representative, finding the
        first pass or the best fallback — is a handful of array operations
        over the ``(n_q, G)`` value matrix instead of a Python loop per
        group.  Decisions are elementwise/argsort-based, so each row matches
        the single-query probe bit for bit.

        Args:
            queries_projected: ``(n_q, m)`` projected queries ``P(q)``.
            query_l1s: ``(n_q,)`` original 1-norms ``‖q‖₁``.
            c: approximation ratio (0 < c < 1).
            p: guaranteed probability (0 < p < 1).

        Returns:
            One :class:`ProbeOutcome` per query, in batch order.
        """
        if not 0.0 < c < 1.0:
            raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {c}")
        if not 0.0 < p < 1.0:
            raise ValueError(f"guaranteed probability must satisfy 0 < p < 1, got {p}")
        queries_projected = np.atleast_2d(
            np.asarray(queries_projected, dtype=np.float64)
        )
        query_l1s = np.asarray(query_l1s, dtype=np.float64).reshape(-1)
        if query_l1s.shape[0] != queries_projected.shape[0]:
            raise ValueError(
                f"need one l1 norm per query, got {query_l1s.shape[0]} "
                f"for {queries_projected.shape[0]} queries"
            )
        if np.any(query_l1s < 0):
            raise ValueError("query_l1 must be non-negative")

        # Theorem 3 bounds, one row per query (query-specific XOR ⇒ per-query
        # multiply; each call is identical to the one `probe` would make).
        lbs = np.stack(
            [self._groups.lower_bounds(q) for q in queries_projected]
        )  # (n_q, G)

        # Test A is a monotone comparison: Ψm(v) ≥ p  ⇔  v ≥ Ψm⁻¹(p).
        threshold = self._chi2.ppf(p)
        denominators = c * (self._groups.min_l1[None, :] + query_l1s[:, None]) ** 2
        with np.errstate(divide="ignore"):
            values = np.where(denominators > 0.0, lbs**2 / denominators, np.inf)

        # Scan groups in ascending-LB order (Algorithm 2: nearest group first
        # ⇒ the tightest admissible search radius).  `passed` rows return the
        # first group reaching the threshold; the rest fall back to the best
        # test value, ties resolved to the last group in scan order (matching
        # the sequential `value >= best` update rule).
        n_q, n_groups = values.shape
        order = np.argsort(lbs, axis=1, kind="stable")
        values_ordered = np.take_along_axis(values, order, axis=1)
        passing = values_ordered >= threshold
        any_pass = passing.any(axis=1)
        first_pass = np.argmax(passing, axis=1)
        best_value = values_ordered.max(axis=1)
        last_best = n_groups - 1 - np.argmax(
            (values_ordered == best_value[:, None])[:, ::-1], axis=1
        )

        min_l1_ids = self._groups.min_l1_ids
        outcomes: list[ProbeOutcome] = []
        for i in range(n_q):
            if any_pass[i]:
                pos = int(first_pass[i])
                outcomes.append(
                    ProbeOutcome(
                        point_id=int(min_l1_ids[order[i, pos]]),
                        test_value=float(values_ordered[i, pos]),
                        passed=True,
                        groups_examined=pos + 1,
                    )
                )
            else:
                outcomes.append(
                    ProbeOutcome(
                        point_id=int(min_l1_ids[order[i, int(last_best[i])]]),
                        test_value=float(best_value[i]),
                        passed=False,
                        groups_examined=n_groups,
                    )
                )
        return outcomes
