"""Quick-Probe (Algorithm 2, §V-A).

Instead of incrementally testing every returned NN point against Condition B,
Quick-Probe locates — from group summaries alone, without touching the disk —
a point that is likely to satisfy Condition B, and uses its projected distance
to the query as the radius of a single range search.

The probe walks the binary-code groups in *ascending* order of their
Theorem 3 lower bound ``LB``; for each group it evaluates *Test A* on the
member with the smallest original 1-norm:

    ``Ψm( LB² / (c · (‖o‖₁ + ‖q‖₁)²) ) ≥ p``

The first passing point is returned (nearest group first ⇒ tightest radius).
If no group passes, the point with the largest recorded test value is the
fallback — MIP-Search-II then relies on its compensation pass.

``c`` and ``p`` are per-probe arguments (not baked into the structure), so a
single pre-processed index serves the paper's c- and p-sweeps (Figs. 10/11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binary_codes import BinaryCodeGroups
from repro.stats.chi2 import ChiSquare

__all__ = ["ProbeOutcome", "QuickProbe"]


@dataclass(frozen=True)
class ProbeOutcome:
    """Result of one Quick-Probe invocation.

    Attributes:
        point_id: the located point ``o`` whose projected distance to the
            query becomes the range-search radius.
        test_value: the Test A statistic ``LB²/(c·(‖o‖₁+‖q‖₁)²)`` of that point.
        passed: whether Test A was satisfied (False ⇒ fallback point; the
            compensation pass of MIP-Search-II will very likely be needed).
        groups_examined: how many groups were visited before returning.
    """

    point_id: int
    test_value: float
    passed: bool
    groups_examined: int


class QuickProbe:
    """Pre-built Quick-Probe over binary-code group summaries."""

    def __init__(self, groups: BinaryCodeGroups) -> None:
        self._groups = groups
        self._chi2 = ChiSquare(groups.m)

    @property
    def chi2(self) -> ChiSquare:
        return self._chi2

    @property
    def n_groups(self) -> int:
        return self._groups.n_groups

    def probe(
        self, query_projected: np.ndarray, query_l1: float, c: float, p: float
    ) -> ProbeOutcome:
        """Run Algorithm 2 for one query.

        Args:
            query_projected: ``P(q)``, shape ``(m,)``.
            query_l1: ``‖q‖₁`` of the original query.
            c: approximation ratio (0 < c < 1).
            p: guaranteed probability (0 < p < 1).

        Returns:
            The located point (Test A pass) or the best fallback.
        """
        if not 0.0 < c < 1.0:
            raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {c}")
        if not 0.0 < p < 1.0:
            raise ValueError(f"guaranteed probability must satisfy 0 < p < 1, got {p}")
        if query_l1 < 0:
            raise ValueError(f"query_l1 must be non-negative, got {query_l1}")

        # Test A is a monotone comparison: Ψm(v) ≥ p  ⇔  v ≥ Ψm⁻¹(p).
        threshold = self._chi2.ppf(p)
        lbs = self._groups.lower_bounds(query_projected)
        order = np.argsort(lbs, kind="stable")

        # Test A value of every group's min-ℓ1 representative; examined in
        # ascending-LB order to honour Algorithm 2 (nearest group first ⇒
        # the tightest admissible search radius).
        denominators = c * (self._groups.min_l1 + query_l1) ** 2
        with np.errstate(divide="ignore"):
            values = np.where(denominators > 0.0, lbs**2 / denominators, np.inf)

        best_value = -np.inf
        best_group = int(order[0])
        examined = 0
        for g in order.tolist():
            examined += 1
            value = float(values[g])
            if value >= threshold:
                return ProbeOutcome(
                    point_id=int(self._groups.min_l1_ids[g]),
                    test_value=value,
                    passed=True,
                    groups_examined=examined,
                )
            if value >= best_value:
                best_value = value
                best_group = g
        return ProbeOutcome(
            point_id=int(self._groups.min_l1_ids[best_group]),
            test_value=best_value,
            passed=False,
            groups_examined=examined,
        )
