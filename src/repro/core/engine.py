"""Shared batch query engine: shape-stable GEMMs, top-k, candidate verification.

Every index in this repository answers single queries and query batches
through the same numeric kernels, so ``search_many(Q, k)`` is bit-identical
to looping ``search(q, k)`` — a property the parity tests assert exactly.

Achieving that with a BLAS back-end needs care: BLAS picks kernels (and with
them accumulation orders) from the full problem *shape*, so ``X @ q``
(GEMV), column ``i`` of ``X @ Q.T``, and the same column inside a wider
batch can each disagree in the last ulp — which widths agree turns out to be
an unprincipled function of every dimension involved.  What *is* reliable is
that a GEMM of one fixed shape is deterministic, and each output element
depends only on its own row and column operands — position within the panel
and the other columns' contents don't matter.

The engine therefore computes every shared inner-product pass through
:func:`batch_inner_products`, which always issues GEMMs of one fixed shape:
``(n, d) @ (d, GEMM_PANEL)``, zero-padding the last (or only) panel.  A lone
query and a 10k-row batch hit byte-identical kernel invocations, which is
what makes the batch path exact rather than merely close.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.api import BatchResult, validate_k

__all__ = [
    "GEMM_PANEL",
    "MERGE_SENTINEL",
    "batch_inner_products",
    "project_batch",
    "topk_ids_scores",
    "batch_topk",
    "merge_topk_panels",
    "TopK",
    "CandidateVerifier",
]

# Fixed GEMM panel width.  Every shared scoring/projection product runs as
# (n, d) @ (d, GEMM_PANEL) regardless of batch size, so results cannot
# depend on how many queries shared a batch.  16 trades a modest padded
# single-query overhead (~1.3× a GEMV — both stream the same (n, d) block)
# for 16-way data reuse on batches, where the exact scan's throughput
# comes from.
GEMM_PANEL = 16


def batch_inner_products(vectors: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """All pairwise inner products ``⟨vectors_i, queries_j⟩`` as ``(n, n_q)``.

    Computed in column orientation as fixed-shape panels of
    :data:`GEMM_PANEL` queries (last panel zero-padded), so column ``i`` is
    bit-identical no matter the batch size or the query's position in it.

    Args:
        vectors: ``(n, d)`` data block.
        queries: ``(n_q, d)`` query block (``(d,)`` accepted for one query).
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n_q, dim = queries.shape
    out = np.empty((vectors.shape[0], n_q))
    for start in range(0, n_q, GEMM_PANEL):
        width = min(GEMM_PANEL, n_q - start)
        panel = np.zeros((GEMM_PANEL, dim))
        panel[:width] = queries[start : start + width]
        out[:, start : start + width] = (vectors @ panel.T)[:, :width]
    return out


def project_batch(matrix: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Project queries through an ``(m, d)`` matrix as one GEMM: ``(n_q, m)``.

    Row ``i`` equals the projection the engine computes for query ``i`` alone
    (column orientation + width padding, see module docstring).
    """
    return np.ascontiguousarray(batch_inner_products(matrix, queries).T)


def topk_ids_scores(ips: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-k of one score vector, descending, ties broken by ascending id.

    ``O(n + k log k)`` via argpartition + a stable sort of the short-list.
    """
    ips = np.asarray(ips)
    k = validate_k(k)
    k = min(k, ips.shape[0])
    part = np.argpartition(-ips, k - 1)[:k]
    order = part[np.lexsort((part, -ips[part]))]
    return order.astype(np.int64), ips[order].astype(np.float64)


def batch_topk(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise top-k of an ``(n_q, n)`` score matrix → ``(n_q, k')`` arrays.

    One axis-wise argpartition plus one axis-wise lexsort over the short-list
    replace ``n_q`` per-row calls; row ``i`` matches
    ``topk_ids_scores(scores[i], k)`` exactly (the axis implementations run
    the identical per-row select/sort, which the engine tests pin down).
    """
    scores = np.atleast_2d(scores)
    n_q, n = scores.shape
    k = validate_k(k)
    k = min(k, n)
    # One fused pass materialises the (usually transposed-GEMM) input as a
    # C-contiguous *negated* copy — argpartition then needs no second
    # temporary, and negation is exact so the selection matches
    # ``argpartition(-scores)`` bit for bit.
    neg = np.negative(scores, order="C")
    part = np.argpartition(neg, k - 1, axis=1)[:, :k]
    neg_part = np.take_along_axis(neg, part, axis=1)
    order = np.lexsort((part, neg_part), axis=1)
    ids = np.take_along_axis(part, order, axis=1).astype(np.int64)
    out = -np.take_along_axis(neg_part, order, axis=1)
    return ids, out.astype(np.float64)


# Dead/padded candidate slots carry this id so they sort after every real
# candidate under the (-score, id) order; merge_topk_panels re-masks any
# that survive the cut back to BatchResult.PAD_ID.
MERGE_SENTINEL = np.iinfo(np.int64).max


def merge_topk_panels(
    id_blocks: list[np.ndarray],
    score_blocks: list[np.ndarray],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise top-k across concatenated ``(n_q, k_i)`` candidate panels.

    The composite indexes (sharded cross-shard merge, dynamic
    indexed+delta merge) each gather several per-source candidate panels
    per query and need the best ``k`` of their union in the engine's
    ``(-score, id)`` total order — one axis-wise lexsort over the stacked
    panels instead of a per-query Python loop.  Dead slots (tombstoned
    candidates, under-filled approximate answers) must arrive pre-masked as
    ``(MERGE_SENTINEL, -inf)``; they sort last, and any that survive the
    cut come back as :data:`repro.api.BatchResult.PAD_ID` / ``-inf``.

    Args:
        id_blocks: per-source ``(n_q, k_i)`` id panels.
        score_blocks: matching score panels.
        k: results per query (``k <= sum(k_i)``).

    Returns:
        ``(ids, scores)`` arrays of shape ``(n_q, k)``.
    """
    id_panel = np.hstack(id_blocks)
    score_panel = np.hstack(score_blocks)
    order = np.lexsort((id_panel, -score_panel), axis=-1)[:, :k]
    top_ids = np.take_along_axis(id_panel, order, axis=-1)
    top_scores = np.take_along_axis(score_panel, order, axis=-1)
    top_ids[top_ids == MERGE_SENTINEL] = BatchResult.PAD_ID
    return top_ids, top_scores


class TopK:
    """Running top-k inner products (min-heap of ``(ip, id)``)."""

    __slots__ = ("k", "_heap", "_seen")

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: list[tuple[float, int]] = []
        self._seen: set[int] = set()

    def offer(self, ip: float, pid: int) -> None:
        if pid in self._seen:
            return
        self._seen.add(pid)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (ip, pid))
        elif ip > self._heap[0][0]:
            heapq.heapreplace(self._heap, (ip, pid))

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def kth_ip(self) -> float:
        """Inner product of the current k-th best; −inf until k candidates."""
        if not self.full:
            return -math.inf
        return self._heap[0][0]

    @property
    def weakest_ip(self) -> float:
        """Smallest collected inner product; −inf when empty."""
        if not self._heap:
            return -math.inf
        return self._heap[0][0]

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        ranked = sorted(self._heap, key=lambda t: (-t[0], t[1]))
        ids = np.array([pid for _, pid in ranked], dtype=np.int64)
        ips = np.array([ip for ip, _ in ranked], dtype=np.float64)
        return ids, ips


class CandidateVerifier:
    """Chunked exact verification with the ProMIPS stopping conditions.

    Owns the Theorem 1/2 incremental traversal shared by ``search`` and
    ``search_many``: fetch candidate vectors in page-coalesced chunks, compute
    their inner products with one matrix multiply per chunk, update the
    running top-k, and test the O(1) forms of Conditions A and B against the
    *updated* k-th best.  Condition B is evaluated through
    ``dis²(P(oi), P(q)) ≥ Ψm⁻¹(p) · denom`` — the CDF comparison inverted
    once through the cached chi-square quantile — so no per-candidate CDF
    evaluation is needed.

    Args:
        chi2: the cached ``ChiSquare(m)`` of the index.
        max_norm_sq: ``‖oM‖²`` over the dataset.
        chunk: candidates fetched (and multiplied) per round; chunk results
            are bit-identical to one full multiply, so the chunk size only
            trades page-prefetch granularity against early-stop laziness.
    """

    __slots__ = ("_chi2", "_max_norm_sq", "_chunk")

    def __init__(self, chi2, max_norm_sq: float, chunk: int = 32) -> None:
        self._chi2 = chi2
        self._max_norm_sq = float(max_norm_sq)
        self._chunk = int(chunk)

    def verify(
        self,
        topk: TopK,
        ids: np.ndarray,
        dists: np.ndarray,
        query: np.ndarray,
        orig_reader,
        c: float,
        p: float,
        q_norm_sq: float,
    ) -> tuple[str | None, int]:
        """Verify candidates in ascending projected-distance order.

        Returns ``(fired_condition, points_verified)`` where
        ``fired_condition`` is ``"condition_a"``, ``"condition_b"`` or None.
        Condition A reduces to ``ip_k ≥ c·(‖oM‖² + ‖q‖²)/2`` and Condition B
        to ``dis² ≥ Ψm⁻¹(p)·(‖oM‖² + ‖q‖² − 2·ip_k/c)``.
        """
        quantile = self._chi2.ppf(p)
        base = self._max_norm_sq + q_norm_sq
        cond_a_threshold = 0.5 * c * base
        verified = 0
        chunk = self._chunk
        for start in range(0, ids.size, chunk):
            chunk_ids = ids[start : start + chunk]
            vecs = orig_reader.get_many(chunk_ids)
            ips = vecs @ query
            for pid, dist, ip in zip(
                chunk_ids.tolist(), dists[start : start + chunk].tolist(), ips.tolist()
            ):
                verified += 1
                topk.offer(ip, pid)
                if not topk.full:
                    continue
                kth = topk.kth_ip
                if kth >= cond_a_threshold:
                    return "condition_a", verified
                if dist * dist >= quantile * (base - 2.0 * kth / c):
                    return "condition_b", verified
        return None, verified
