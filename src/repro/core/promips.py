"""ProMIPS — the paper's contribution, assembled from the substrates.

The public entry point is :class:`ProMIPS`:

>>> index = ProMIPS.build(data, ProMIPSParams(c=0.9, p=0.5))
>>> result = index.search(query, k=10)

``search`` implements MIP-Search-II (Algorithm 3): Quick-Probe determines a
range-search radius, one range search over the ring-pattern iDistance
collects candidates, Condition A can terminate verification early, and a
compensation pass extends the radius to ``r'`` when Condition B is not yet
met.  ``search_incremental`` implements MIP-Search-I (Algorithm 1), the
incremental-NN variant that Quick-Probe was designed to replace; it is kept
both as a reference implementation and for the ablation benchmark.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.api import SearchResult, SearchStats, validate_query
from repro.core.binary_codes import BinaryCodeGroups
from repro.core.conditions import (
    compensation_radius,
    condition_a_holds,
    condition_b_holds,
    guarantee_denominator,
)
from repro.core.optimal_dim import optimized_projection_dim
from repro.core.projection import StableProjection
from repro.core.quickprobe import QuickProbe
from repro.index.ring_idistance import RingIDistance
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, AccessCounter, VectorStore

__all__ = ["ProMIPSParams", "ProMIPS"]


@dataclass(frozen=True)
class ProMIPSParams:
    """Build/search parameters (§VIII-A-4 defaults).

    Attributes:
        c: approximation ratio, ``0 < c < 1`` (paper default 0.9).
        p: guaranteed probability, ``0 < p < 1`` (paper default 0.5).
        m: projected dimensionality; ``None`` selects the §V-B optimum
            ``argmin 2^m(m+1) + n/2^m``.
        kp: number of first-stage iDistance partitions (paper default 5).
        n_key: rings per partition, ``Nkey`` (paper default 40).
        ksp: sub-partitions per ring (paper default 10).
        epsilon: ring width; ``None`` derives ``r_avg / Nkey`` from the data
            (the paper's per-dataset constants were obtained the same way).
        page_size: disk page size in bytes (4KB; the paper uses 64KB on P53).
        tree_order: B+-tree fanout.
    """

    c: float = 0.9
    p: float = 0.5
    m: int | None = None
    kp: int = 5
    n_key: int = 40
    ksp: int = 10
    epsilon: float | None = None
    page_size: int = DEFAULT_PAGE_SIZE
    tree_order: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.c < 1.0:
            raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {self.c}")
        if not 0.0 < self.p < 1.0:
            raise ValueError(f"guaranteed probability must satisfy 0 < p < 1, got {self.p}")
        if self.m is not None and self.m <= 0:
            raise ValueError(f"m must be positive, got {self.m}")
        if min(self.kp, self.n_key, self.ksp) <= 0:
            raise ValueError("kp, n_key and ksp must all be positive")


class _TopK:
    """Running top-k inner products (min-heap of (ip, id))."""

    __slots__ = ("k", "_heap", "_seen")

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: list[tuple[float, int]] = []
        self._seen: set[int] = set()

    def offer(self, ip: float, pid: int) -> None:
        if pid in self._seen:
            return
        self._seen.add(pid)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (ip, pid))
        elif ip > self._heap[0][0]:
            heapq.heapreplace(self._heap, (ip, pid))

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def kth_ip(self) -> float:
        """Inner product of the current k-th best; −inf until k candidates."""
        if not self.full:
            return -math.inf
        return self._heap[0][0]

    @property
    def weakest_ip(self) -> float:
        """Smallest collected inner product; −inf when empty."""
        if not self._heap:
            return -math.inf
        return self._heap[0][0]

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        ranked = sorted(self._heap, key=lambda t: (-t[0], t[1]))
        ids = np.array([pid for _, pid in ranked], dtype=np.int64)
        ips = np.array([ip for ip, _ in ranked], dtype=np.float64)
        return ids, ips


class ProMIPS:
    """Probability-guaranteed c-AMIP index with a lightweight iDistance.

    Use :meth:`build`; the constructor wires pre-computed pieces together.
    """

    def __init__(
        self,
        data: np.ndarray,
        params: ProMIPSParams,
        projection: StableProjection,
        projected: np.ndarray,
        groups: BinaryCodeGroups,
        quickprobe: QuickProbe,
        ring: RingIDistance,
        orig_store: VectorStore,
        proj_store: VectorStore,
    ) -> None:
        self._data = data
        self.params = params
        self.n, self.dim = data.shape
        self.projection = projection
        self._projected = projected
        self.m = projection.proj_dim
        self.groups = groups
        self.quickprobe = quickprobe
        self.ring = ring
        self.orig_store = orig_store
        self.proj_store = proj_store

        self._norm_sq = np.einsum("ij,ij->i", data, data)
        self.max_norm_sq = float(self._norm_sq.max())
        self._chi2 = quickprobe.chi2

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        params: ProMIPSParams | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "ProMIPS":
        """Run the pre-process of Fig. 2 and return a ready index.

        Args:
            data: ``(n, d)`` dataset; must be finite, ``n >= 1``.
            params: build parameters; defaults to :class:`ProMIPSParams`.
            rng: generator or seed for projections and k-means.
        """
        params = params or ProMIPSParams()
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        if not np.all(np.isfinite(data)):
            raise ValueError("data contains non-finite values")

        n, d = data.shape
        m = params.m if params.m is not None else optimized_projection_dim(n)
        params = replace(params, m=m)

        projection = StableProjection(d, m, rng)
        projected = projection.project(data)
        l1_norms = np.abs(data).sum(axis=1)
        groups = BinaryCodeGroups(projected, l1_norms)
        quickprobe = QuickProbe(groups)
        ring = RingIDistance(
            projected,
            kp=params.kp,
            n_key=params.n_key,
            ksp=params.ksp,
            rng=rng,
            epsilon=params.epsilon,
            order=params.tree_order,
        )
        orig_store = VectorStore(
            data, params.page_size, layout_order=ring.layout_order, label="promips-orig"
        )
        proj_store = VectorStore(
            projected, params.page_size, layout_order=ring.layout_order, label="promips-proj"
        )
        index = cls(
            data, params, projection, projected, groups, quickprobe, ring,
            orig_store, proj_store,
        )
        index._l1_norms = l1_norms
        return index

    # ------------------------------------------------------------------- size

    def index_size_bytes(self) -> int:
        """Everything a query needs besides the original data file:

        the projected points organised on disk, the Quick-Probe group
        summaries (Algorithm 2 only touches each group's min-ℓ1
        representative), the projection matrix, and the iDistance
        structures.  The per-point binary codes and 1-norms of §VII are
        pre-processing intermediates folded into the group summaries.
        """
        return (
            self.proj_store.size_bytes
            + self.groups.summary_size_bytes()
            + self.projection.size_bytes()
            + self.ring.index_size_bytes(self.params.page_size)
        )

    # ----------------------------------------------------------------- search

    def _verify(
        self,
        topk: _TopK,
        ids: np.ndarray,
        dists: np.ndarray,
        query: np.ndarray,
        orig_reader,
        c: float,
        p: float,
        q_norm_sq: float,
    ) -> tuple[str | None, int]:
        """Verify candidates in ascending projected-distance order.

        This is the incremental traversal of Theorem 1/2: fetch the original
        point (charging pages), update the running top-k, then test the
        stopping conditions with the *updated* k-th best.  Condition B is
        evaluated through its equivalent O(1) form
        ``dis²(P(oi), P(q)) ≥ Ψm⁻¹(p) · denom`` — the CDF comparison
        ``Ψm(dis²/denom) ≥ p`` inverted once through the cached quantile —
        so no per-candidate CDF evaluation is needed.

        Returns ``(fired_condition, points_verified)`` where
        ``fired_condition`` is ``"condition_a"``, ``"condition_b"`` or None.

        Points are fetched in small chunks (one batched, page-coalesced read
        per chunk — the disk would serve whole pages anyway) and the
        condition arithmetic is inlined: Condition A reduces to
        ``ip_k ≥ c·(‖oM‖² + ‖q‖²)/2`` and Condition B to
        ``dis² ≥ Ψm⁻¹(p)·(‖oM‖² + ‖q‖² − 2·ip_k/c)``.
        """
        quantile = self._chi2.ppf(p)
        base = self.max_norm_sq + q_norm_sq
        cond_a_threshold = 0.5 * c * base
        verified = 0
        chunk = 32
        for start in range(0, ids.size, chunk):
            chunk_ids = ids[start : start + chunk]
            vecs = orig_reader.get_many(chunk_ids)
            ips = vecs @ query
            for pid, dist, ip in zip(
                chunk_ids.tolist(), dists[start : start + chunk].tolist(), ips.tolist()
            ):
                verified += 1
                topk.offer(ip, pid)
                if not topk.full:
                    continue
                kth = topk.kth_ip
                if kth >= cond_a_threshold:
                    return "condition_a", verified
                if dist * dist >= quantile * (base - 2.0 * kth / c):
                    return "condition_b", verified
        return None, verified

    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        c: float | None = None,
        p: float | None = None,
    ) -> SearchResult:
        """c-k-AMIP search via MIP-Search-II (Quick-Probe + range search).

        Args:
            query: ``(d,)`` query vector.
            k: number of results (c-k-AMIP).
            c: per-query approximation-ratio override.
            p: per-query guarantee-probability override.
        """
        c = self.params.c if c is None else c
        p = self.params.p if p is None else p
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query = validate_query(query, self.dim)
        k = min(k, self.n)

        q_proj = self.projection.project(query)
        q_norm_sq = float(query @ query)
        q_l1 = float(np.abs(query).sum())

        tree_counter = AccessCounter()
        orig_reader = self.orig_store.reader()
        proj_reader = self.proj_store.reader()

        # --- Quick-Probe: locate the point fixing the search radius.
        outcome = self.quickprobe.probe(q_proj, q_l1, c, p)
        probe_vec = proj_reader.get(outcome.point_id)
        radius = float(np.linalg.norm(probe_vec - q_proj))

        topk = _TopK(k)
        expansions = 0
        total_verified = 0

        # --- first range search at the Quick-Probe radius.  min_radius is
        # strict, so the -1 sentinel keeps distance-0 (coincident) points in.
        ids, dists = self.ring.range_search(
            q_proj, radius, tree_counter, proj_reader, min_radius=-1.0
        )
        fired, verified = self._verify(
            topk, ids, dists, query, orig_reader, c, p, q_norm_sq
        )
        total_verified += verified

        # --- compensation loop: extend to r' until a condition fires.  The
        # paper performs one extension; the loop generalises it to k-AMIP
        # (fewer than k candidates in range) and guarantees termination by
        # doubling when r' fails to grow.
        current_radius = radius
        while fired is None and total_verified < self.n:
            guard_ip = topk.kth_ip if topk.full else topk.weakest_ip
            denominator = guarantee_denominator(self.max_norm_sq, q_norm_sq, guard_ip, c)
            # Stopping requires a full top-k (the c-k-AMIP conditions are
            # stated on ok_max); with fewer candidates the radius must grow.
            if topk.full and condition_b_holds(
                current_radius**2, denominator, self._chi2, p
            ):
                fired = "condition_b"
                break
            if math.isinf(denominator):
                next_radius = max(2.0 * current_radius, self.ring.epsilon)
            else:
                next_radius = compensation_radius(denominator, self._chi2, p)
                if next_radius <= current_radius:
                    next_radius = 2.0 * current_radius
            expansions += 1
            ids, dists = self.ring.range_search(
                q_proj, next_radius, tree_counter, proj_reader, min_radius=current_radius
            )
            fired, verified = self._verify(
                topk, ids, dists, query, orig_reader, c, p, q_norm_sq
            )
            total_verified += verified
            current_radius = next_radius

        ids_out, ips_out = topk.result()
        stats = SearchStats(
            pages=tree_counter.pages + orig_reader.pages_touched + proj_reader.pages_touched,
            candidates=total_verified,
            extras={
                "probe_radius": radius,
                "final_radius": current_radius,
                "expansions": expansions,
                "probe_passed": outcome.passed,
                "stopped_by": fired or "exhausted",
                "condition_a": fired == "condition_a",
                "groups_examined": outcome.groups_examined,
            },
        )
        return SearchResult(ids=ids_out, scores=ips_out, stats=stats)

    def search_incremental(
        self,
        query: np.ndarray,
        k: int = 1,
        c: float | None = None,
        p: float | None = None,
    ) -> SearchResult:
        """c-k-AMIP search via MIP-Search-I (Algorithm 1).

        Performs an incremental NN search in the projected space and tests
        Conditions A and B on every returned point.  Kept as the reference
        the paper improves on; the ablation benchmark compares it against
        :meth:`search`.
        """
        c = self.params.c if c is None else c
        p = self.params.p if p is None else p
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query = validate_query(query, self.dim)
        k = min(k, self.n)

        q_proj = self.projection.project(query)
        q_norm_sq = float(query @ query)

        tree_counter = AccessCounter()
        orig_reader = self.orig_store.reader()
        proj_reader = self.proj_store.reader()

        topk = _TopK(k)
        verified = 0
        stopped_by = "exhausted"
        for pid, dist in self.ring.knn_iterate(q_proj, tree_counter, proj_reader):
            vec = orig_reader.get(pid)
            ip = float(vec @ query)
            verified += 1
            topk.offer(ip, pid)
            if not topk.full:
                continue
            if condition_a_holds(self.max_norm_sq, q_norm_sq, topk.kth_ip, c):
                stopped_by = "condition_a"
                break
            denominator = guarantee_denominator(
                self.max_norm_sq, q_norm_sq, topk.kth_ip, c
            )
            if condition_b_holds(dist * dist, denominator, self._chi2, p):
                stopped_by = "condition_b"
                break

        ids_out, ips_out = topk.result()
        stats = SearchStats(
            pages=tree_counter.pages + orig_reader.pages_touched + proj_reader.pages_touched,
            candidates=verified,
            extras={"stopped_by": stopped_by},
        )
        return SearchResult(ids=ids_out, scores=ips_out, stats=stats)

    def __repr__(self) -> str:
        return (
            f"ProMIPS(n={self.n}, d={self.dim}, m={self.m}, kp={self.ring.kp}, "
            f"n_key={self.params.n_key}, ksp={self.params.ksp})"
        )
