"""ProMIPS — the paper's contribution, assembled from the substrates.

The public entry point is :class:`ProMIPS`:

>>> index = ProMIPS.build(data, ProMIPSParams(c=0.9, p=0.5))
>>> result = index.search(query, k=10)

``search`` implements MIP-Search-II (Algorithm 3): Quick-Probe determines a
range-search radius, one range search over the ring-pattern iDistance
collects candidates, Condition A can terminate verification early, and a
compensation pass extends the radius to ``r'`` when Condition B is not yet
met.  ``search_incremental`` implements MIP-Search-I (Algorithm 1), the
incremental-NN variant that Quick-Probe was designed to replace; it is kept
both as a reference implementation and for the ablation benchmark.

``search_many`` is the native batch path: all queries are projected in one
GEMM and the Quick-Probe group scans run vectorized over the whole batch;
the adaptive per-query range-search/verification core is shared with
``search`` through :mod:`repro.core.engine`, so batch answers are
bit-identical to looping ``search``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.api import (
    BatchResult,
    SearchResult,
    SearchStats,
    validate_k,
    validate_query,
    validate_queries,
)
from repro.core.binary_codes import BinaryCodeGroups
from repro.core.conditions import (
    compensation_radius,
    condition_a_holds,
    condition_b_holds,
    guarantee_denominator,
)
from repro.core.engine import CandidateVerifier, TopK, project_batch
from repro.core.optimal_dim import optimized_projection_dim
from repro.core.projection import StableProjection
from repro.core.quickprobe import ProbeOutcome, QuickProbe
from repro.core.rng import resolve_rng
from repro.index.ring_idistance import RingIDistance
from repro.spec import IndexSpec, register_method
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, AccessCounter, VectorStore

__all__ = ["ProMIPSParams", "ProMIPS"]


@dataclass(frozen=True)
class ProMIPSParams:
    """Build/search parameters (§VIII-A-4 defaults).

    Attributes:
        c: approximation ratio, ``0 < c < 1`` (paper default 0.9).
        p: guaranteed probability, ``0 < p < 1`` (paper default 0.5).
        m: projected dimensionality; ``None`` selects the §V-B optimum
            ``argmin 2^m(m+1) + n/2^m``.
        kp: number of first-stage iDistance partitions (paper default 5).
        n_key: rings per partition, ``Nkey`` (paper default 40).
        ksp: sub-partitions per ring (paper default 10).
        epsilon: ring width; ``None`` derives ``r_avg / Nkey`` from the data
            (the paper's per-dataset constants were obtained the same way).
        page_size: disk page size in bytes (4KB; the paper uses 64KB on P53).
        tree_order: B+-tree fanout.
    """

    c: float = 0.9
    p: float = 0.5
    m: int | None = None
    kp: int = 5
    n_key: int = 40
    ksp: int = 10
    epsilon: float | None = None
    page_size: int = DEFAULT_PAGE_SIZE
    tree_order: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.c < 1.0:
            raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {self.c}")
        if not 0.0 < self.p < 1.0:
            raise ValueError(f"guaranteed probability must satisfy 0 < p < 1, got {self.p}")
        if self.m is not None and self.m <= 0:
            raise ValueError(f"m must be positive, got {self.m}")
        if min(self.kp, self.n_key, self.ksp) <= 0:
            raise ValueError("kp, n_key and ksp must all be positive")


# Backwards-compatible alias: the running top-k moved to the shared engine.
_TopK = TopK


@register_method("promips", aliases=("ProMIPS",))
class ProMIPS:
    """Probability-guaranteed c-AMIP index with a lightweight iDistance.

    Use :meth:`build` (or ``repro.build_index`` with a ``"promips(...)"``
    spec); the constructor wires pre-computed pieces together.
    """

    def __init__(
        self,
        data: np.ndarray,
        params: ProMIPSParams,
        projection: StableProjection,
        projected: np.ndarray,
        groups: BinaryCodeGroups,
        quickprobe: QuickProbe,
        ring: RingIDistance,
        orig_store: VectorStore,
        proj_store: VectorStore,
        l1_norms: np.ndarray | None = None,
    ) -> None:
        self._data = data
        self.params = params
        self.n, self.dim = data.shape
        self.projection = projection
        self._projected = projected
        self.m = projection.proj_dim
        self.groups = groups
        self.quickprobe = quickprobe
        self.ring = ring
        self.orig_store = orig_store
        self.proj_store = proj_store

        if l1_norms is None:
            l1_norms = np.abs(data).sum(axis=1)
        else:
            l1_norms = np.asarray(l1_norms, dtype=np.float64)
            if l1_norms.shape != (self.n,):
                raise ValueError(
                    f"l1_norms must have shape ({self.n},), got {l1_norms.shape}"
                )
        self._l1_norms = l1_norms
        self._norm_sq = np.einsum("ij,ij->i", data, data)
        self.max_norm_sq = float(self._norm_sq.max())
        self._chi2 = quickprobe.chi2
        self._verifier = CandidateVerifier(self._chi2, self.max_norm_sq)

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        params: ProMIPSParams | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "ProMIPS":
        """Run the pre-process of Fig. 2 and return a ready index.

        Args:
            data: ``(n, d)`` dataset; must be finite, ``n >= 1``.
            params: build parameters; defaults to :class:`ProMIPSParams`.
            rng: generator or seed for projections and k-means.
        """
        params = params or ProMIPSParams()
        rng = resolve_rng(rng)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        if not np.all(np.isfinite(data)):
            raise ValueError("data contains non-finite values")

        n, d = data.shape
        m = params.m if params.m is not None else optimized_projection_dim(n)
        params = replace(params, m=m)

        projection = StableProjection(d, m, rng)
        projected = projection.project(data)
        l1_norms = np.abs(data).sum(axis=1)
        groups = BinaryCodeGroups(projected, l1_norms)
        quickprobe = QuickProbe(groups)
        ring = RingIDistance(
            projected,
            kp=params.kp,
            n_key=params.n_key,
            ksp=params.ksp,
            rng=rng,
            epsilon=params.epsilon,
            order=params.tree_order,
        )
        orig_store = VectorStore(
            data, params.page_size, layout_order=ring.layout_order, label="promips-orig"
        )
        proj_store = VectorStore(
            projected, params.page_size, layout_order=ring.layout_order, label="promips-proj"
        )
        return cls(
            data, params, projection, projected, groups, quickprobe, ring,
            orig_store, proj_store, l1_norms=l1_norms,
        )

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "ProMIPS":
        """Build from a declarative spec, e.g. ``promips(c=0.9, p=0.5)``.

        Spec parameters are exactly the :class:`ProMIPSParams` fields.
        """
        return cls.build(data, ProMIPSParams(**spec.params), rng=resolve_rng(rng))

    def spec(self) -> IndexSpec:
        """The round-trippable build configuration (``m`` fully resolved)."""
        return IndexSpec("promips", asdict(self.params))

    def state(self) -> dict[str, np.ndarray]:
        """Arrays sufficient to reconstruct the index bit-identically.

        The cheap derivations (projected points, binary-code groups) are
        recomputed on :meth:`from_state` from the stored projection matrix,
        while both k-means stages are restored from the stored ring geometry.
        """
        ring_state = {f"ring_{k}": v for k, v in self.ring.state().items()}
        return {
            "data": self._data,
            "projection_matrix": self.projection.matrix,
            **ring_state,
        }

    @classmethod
    def from_state(cls, spec: IndexSpec, state: dict[str, np.ndarray]) -> "ProMIPS":
        """Reconstruct a built index from :meth:`spec` + :meth:`state` output."""
        params = ProMIPSParams(**spec.params)
        data = np.asarray(state["data"], dtype=np.float64)
        matrix = np.asarray(state["projection_matrix"], dtype=np.float64)
        ring_state = {
            key[len("ring_"):]: state[key] for key in state if key.startswith("ring_")
        }

        projection = StableProjection.__new__(StableProjection)
        projection.dim = data.shape[1]
        projection.proj_dim = matrix.shape[0]
        projection._matrix = matrix

        projected = projection.project(data)
        l1_norms = np.abs(data).sum(axis=1)
        groups = BinaryCodeGroups(projected, l1_norms)
        quickprobe = QuickProbe(groups)
        ring = RingIDistance.from_state(projected, ring_state, order=params.tree_order)
        orig_store = VectorStore(
            data, params.page_size, layout_order=ring.layout_order, label="promips-orig"
        )
        proj_store = VectorStore(
            projected, params.page_size, layout_order=ring.layout_order,
            label="promips-proj",
        )
        return cls(
            data, params, projection, projected, groups, quickprobe, ring,
            orig_store, proj_store, l1_norms=l1_norms,
        )

    # ------------------------------------------------------------------- size

    def index_size_bytes(self) -> int:
        """Everything a query needs besides the original data file:

        the projected points organised on disk, the Quick-Probe group
        summaries (Algorithm 2 only touches each group's min-ℓ1
        representative), the projection matrix, and the iDistance
        structures.  The per-point binary codes and 1-norms of §VII are
        pre-processing intermediates folded into the group summaries.
        """
        return (
            self.proj_store.size_bytes
            + self.groups.summary_size_bytes()
            + self.projection.size_bytes()
            + self.ring.index_size_bytes(self.params.page_size)
        )

    # ----------------------------------------------------------------- search

    def _project_queries(self, queries: np.ndarray) -> np.ndarray:
        """Project a ``(n_q, d)`` batch with one shape-stable GEMM.

        Both ``search`` and ``search_many`` project through this helper, so a
        query's projection never depends on its batch size — the keystone of
        the batch/single bit-identity guarantee.
        """
        return project_batch(self.projection.matrix, queries)

    def _search_core(
        self,
        query: np.ndarray,
        q_proj: np.ndarray,
        outcome: ProbeOutcome,
        k: int,
        c: float,
        p: float,
    ) -> SearchResult:
        """MIP-Search-II for one query, given its projection and probe.

        The adaptive part of Algorithm 3: a first range search at the
        Quick-Probe radius, chunked verification through the shared
        :class:`repro.core.engine.CandidateVerifier`, and the compensation
        loop extending to ``r'`` until a condition fires.
        """
        q_norm_sq = float(query @ query)
        tree_counter = AccessCounter()
        orig_reader = self.orig_store.reader()
        proj_reader = self.proj_store.reader()

        probe_vec = proj_reader.get(outcome.point_id)
        radius = float(np.linalg.norm(probe_vec - q_proj))

        topk = TopK(k)
        expansions = 0
        total_verified = 0

        # --- first range search at the Quick-Probe radius.  min_radius is
        # strict, so the -1 sentinel keeps distance-0 (coincident) points in.
        ids, dists = self.ring.range_search(
            q_proj, radius, tree_counter, proj_reader, min_radius=-1.0
        )
        fired, verified = self._verifier.verify(
            topk, ids, dists, query, orig_reader, c, p, q_norm_sq
        )
        total_verified += verified

        # --- compensation loop: extend to r' until a condition fires.  The
        # paper performs one extension; the loop generalises it to k-AMIP
        # (fewer than k candidates in range) and guarantees termination by
        # doubling when r' fails to grow.
        current_radius = radius
        while fired is None and total_verified < self.n:
            guard_ip = topk.kth_ip if topk.full else topk.weakest_ip
            denominator = guarantee_denominator(self.max_norm_sq, q_norm_sq, guard_ip, c)
            # Stopping requires a full top-k (the c-k-AMIP conditions are
            # stated on ok_max); with fewer candidates the radius must grow.
            if topk.full and condition_b_holds(
                current_radius**2, denominator, self._chi2, p
            ):
                fired = "condition_b"
                break
            if math.isinf(denominator):
                next_radius = max(2.0 * current_radius, self.ring.epsilon)
            else:
                next_radius = compensation_radius(denominator, self._chi2, p)
                if next_radius <= current_radius:
                    next_radius = 2.0 * current_radius
            expansions += 1
            ids, dists = self.ring.range_search(
                q_proj, next_radius, tree_counter, proj_reader, min_radius=current_radius
            )
            fired, verified = self._verifier.verify(
                topk, ids, dists, query, orig_reader, c, p, q_norm_sq
            )
            total_verified += verified
            current_radius = next_radius

        ids_out, ips_out = topk.result()
        stats = SearchStats(
            pages=tree_counter.pages + orig_reader.pages_touched + proj_reader.pages_touched,
            candidates=total_verified,
            extras={
                "probe_radius": radius,
                "final_radius": current_radius,
                "expansions": expansions,
                "probe_passed": outcome.passed,
                "stopped_by": fired or "exhausted",
                "condition_a": fired == "condition_a",
                "groups_examined": outcome.groups_examined,
            },
        )
        return SearchResult(ids=ids_out, scores=ips_out, stats=stats)

    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        c: float | None = None,
        p: float | None = None,
    ) -> SearchResult:
        """c-k-AMIP search via MIP-Search-II (Quick-Probe + range search).

        Args:
            query: ``(d,)`` query vector.
            k: number of results (c-k-AMIP).
            c: per-query approximation-ratio override.
            p: per-query guarantee-probability override.
        """
        c = self.params.c if c is None else c
        p = self.params.p if p is None else p
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n)

        q_proj = self._project_queries(query[None, :])[0]
        q_l1 = float(np.abs(query).sum())
        outcome = self.quickprobe.probe(q_proj, q_l1, c, p)
        return self._search_core(query, q_proj, outcome, k, c, p)

    def search_many(
        self,
        queries: np.ndarray,
        k: int = 1,
        c: float | None = None,
        p: float | None = None,
    ) -> BatchResult:
        """c-k-AMIP search for a whole query batch (bit-identical to looping
        :meth:`search`).

        The batch-wide work runs vectorized — one GEMM projects every query,
        and Quick-Probe scans the group summaries for the whole batch in one
        pass — while the adaptive range-search/verification core (radii,
        stopping conditions, compensation) stays per query because each query
        terminates at its own radius.

        Args:
            queries: ``(n_q, d)`` query batch (a single ``(d,)`` query is
                promoted to one row).
            k: results per query.
            c: batch-wide approximation-ratio override.
            p: batch-wide guarantee-probability override.
        """
        c = self.params.c if c is None else c
        p = self.params.p if p is None else p
        k = validate_k(k)
        queries = validate_queries(queries, self.dim)
        if queries.shape[0] == 0:
            return BatchResult.empty()
        k = min(k, self.n)

        q_projs = self._project_queries(queries)
        q_l1s = np.array([float(np.abs(q).sum()) for q in queries])
        outcomes = self.quickprobe.probe_many(q_projs, q_l1s, c, p)
        results = [
            self._search_core(query, q_projs[i], outcomes[i], k, c, p)
            for i, query in enumerate(queries)
        ]
        return BatchResult.from_results(results)

    def search_incremental(
        self,
        query: np.ndarray,
        k: int = 1,
        c: float | None = None,
        p: float | None = None,
    ) -> SearchResult:
        """c-k-AMIP search via MIP-Search-I (Algorithm 1).

        Performs an incremental NN search in the projected space and tests
        Conditions A and B on every returned point.  Kept as the reference
        the paper improves on; the ablation benchmark compares it against
        :meth:`search`.
        """
        c = self.params.c if c is None else c
        p = self.params.p if p is None else p
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n)

        q_proj = self._project_queries(query[None, :])[0]
        q_norm_sq = float(query @ query)

        tree_counter = AccessCounter()
        orig_reader = self.orig_store.reader()
        proj_reader = self.proj_store.reader()

        topk = TopK(k)
        verified = 0
        stopped_by = "exhausted"
        for pid, dist in self.ring.knn_iterate(q_proj, tree_counter, proj_reader):
            vec = orig_reader.get(pid)
            ip = float(vec @ query)
            verified += 1
            topk.offer(ip, pid)
            if not topk.full:
                continue
            if condition_a_holds(self.max_norm_sq, q_norm_sq, topk.kth_ip, c):
                stopped_by = "condition_a"
                break
            denominator = guarantee_denominator(
                self.max_norm_sq, q_norm_sq, topk.kth_ip, c
            )
            if condition_b_holds(dist * dist, denominator, self._chi2, p):
                stopped_by = "condition_b"
                break

        ids_out, ips_out = topk.result()
        stats = SearchStats(
            pages=tree_counter.pages + orig_reader.pages_touched + proj_reader.pages_touched,
            candidates=verified,
            extras={"stopped_by": stopped_by},
        )
        return SearchResult(ids=ids_out, scores=ips_out, stats=stats)

    def __repr__(self) -> str:
        return (
            f"ProMIPS(n={self.n}, d={self.dim}, m={self.m}, kp={self.ring.kp}, "
            f"n_key={self.params.n_key}, ksp={self.params.ksp})"
        )
