"""Sharded serving layer: horizontal partitioning with exact top-k merge.

A production deployment outgrows one index long before it outgrows one
machine's arithmetic: build times, rebuild pauses and per-query latency all
scale with ``n``, while the dataset partitions trivially.  ProMIPS is
especially shard-friendly — its index is a small projected file plus an
iDistance tree, so per-shard builds stay cheap — and "To Index or Not to
Index" (Abuzaid et al.) makes the case that partition-level execution is
where exact MIPS serving wins.

:class:`ShardedIndex` partitions the dataset across ``shards`` sub-indexes
(contiguous ranges or a deterministic multiplicative hash of the point id),
builds **any** spec-described method per shard through
:func:`repro.spec.build_index`, and answers ``search``/``search_many`` by
fanning the query set out over the shards — a thread pool for batches, since
NumPy releases the GIL inside the BLAS kernels every shard leans on — and
exact-merging the per-shard top-k lists.

The merge is *bit-identical* to the unsharded index for exact inner methods:
shard-local scores come out of the same fixed-shape GEMM panels the full
scan uses (an output element depends only on its own row and query), local
ids remap to global ids through a sorted member table so per-shard
tie-breaking by local id is exactly tie-breaking by global id, and the
cross-shard merge orders by ``(-score, global_id)`` — the same total order
``repro.core.engine.topk_ids_scores`` applies.  The shard-count-invariance
property tests pin this down for shard counts that do not divide ``n``.

Mutable serving works too: with ``inner='dynamic(...)'`` every shard is a
:class:`repro.core.dynamic.DynamicProMIPS`, and :meth:`insert` /
:meth:`delete` route by id — inserts to the least-loaded shard, deletes to
the owning shard via the member table.

Persistence nests one v2 sub-envelope per shard (method + spec + state
arrays, see :func:`repro.core.persist.pack_substate`) inside the composite's
own ``state()``, so a sharded index round-trips through the same
``save_index``/``load_index`` pair as every other method.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api import (
    BatchResult,
    SearchResult,
    SearchStats,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.core.engine import MERGE_SENTINEL, merge_topk_panels
from repro.core.persist import pack_substate, unpack_substate
from repro.core.rng import resolve_rng
from repro.spec import IndexSpec, build_index, register_method

__all__ = ["ShardedIndex"]

_ASSIGNMENTS = ("contiguous", "hash")
# Fibonacci-hash multiplier (golden-ratio based): mixes sequential ids into
# uniformly spread shard labels without Python's randomized hash().
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def _assign_members(n: int, n_shards: int, assignment: str) -> list[np.ndarray]:
    """Global point ids per shard, each array ascending.

    Ascending member order is load-bearing: shard-local id order then equals
    global id order inside the shard, so the inner index's tie-breaking by
    local id survives the remap unchanged.
    """
    if assignment == "contiguous":
        bounds = np.linspace(0, n, n_shards + 1).astype(np.int64)
        members = [
            np.arange(bounds[s], bounds[s + 1], dtype=np.int64)
            for s in range(n_shards)
        ]
    elif assignment == "hash":
        ids = np.arange(n, dtype=np.uint64)
        shard_of = ((ids * _HASH_MULTIPLIER) >> np.uint64(33)) % np.uint64(n_shards)
        members = [
            np.flatnonzero(shard_of == np.uint64(s)).astype(np.int64)
            for s in range(n_shards)
        ]
    else:
        raise ValueError(
            f"assignment must be one of {_ASSIGNMENTS}, got {assignment!r}"
        )
    # A hash split of a small dataset can leave shards empty; inner methods
    # reject empty data, so empties are dropped (the merge never misses them).
    return [m for m in members if m.size]


@register_method("sharded", aliases=("Sharded", "ShardedIndex"))
class ShardedIndex:
    """Horizontal partitioning over any registered inner method.

    Use :meth:`build` (or ``repro.build_index`` with a spec like
    ``"sharded(inner='promips(c=0.9)', shards=4)"``); the constructor wires
    pre-built shards together.

    Args:
        shards: built inner indexes, one per non-empty partition.
        members: per-shard ascending global-id arrays aligned with each
            shard's local ids.
        inner_spec: the inner method's declarative spec.
        requested_shards: the configured shard count (the effective count,
            ``len(shards)``, can be lower on small datasets).
        assignment: ``"contiguous"`` or ``"hash"``.
        n_threads: fan-out width for ``search_many``; ``None`` uses
            ``min(len(shards), cpu_count)``.
        next_id: next global id handed to :meth:`insert`.
    """

    def __init__(
        self,
        shards: list,
        members: list[np.ndarray],
        inner_spec: IndexSpec,
        requested_shards: int,
        assignment: str,
        n_threads: int | None = None,
        next_id: int | None = None,
    ) -> None:
        if not shards or len(shards) != len(members):
            raise ValueError(
                f"need one member table per shard, got {len(shards)} shards "
                f"and {len(members)} tables"
            )
        dims = {shard.dim for shard in shards}
        if len(dims) != 1:
            raise ValueError(f"shards disagree on dimensionality: {sorted(dims)}")
        self.shards = list(shards)
        # Member tables carry amortised spare capacity so the mutable path
        # appends in O(1); _shard_members(s) is the live prefix as a view.
        self._member_bufs = [np.array(m, dtype=np.int64) for m in members]
        self._member_counts = [m.size for m in self._member_bufs]
        self.inner_spec = inner_spec
        self.requested_shards = int(requested_shards)
        self.assignment = assignment
        self.n_threads = n_threads
        self.dim = dims.pop()
        self._next_id = (
            int(next_id)
            if next_id is not None
            else int(max(int(m[-1]) for m in self._member_bufs)) + 1
        )
        # Wall-clock seconds each shard spent answering the last
        # ``search_many`` call (the throughput harness reports these).
        self.last_shard_seconds: list[float] | None = None

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        inner: IndexSpec | str | dict = "promips()",
        shards: int = 4,
        assignment: str = "contiguous",
        n_threads: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "ShardedIndex":
        """Partition ``data`` and build one inner index per shard.

        Args:
            data: ``(n, d)`` dataset; global ids are the row numbers.
            inner: spec of the per-shard method (any registered method).
            shards: partition count; clamped to ``n`` so no shard is empty.
            assignment: ``"contiguous"`` row ranges or ``"hash"`` of the id.
            n_threads: default fan-out width for ``search_many``.
            rng: generator or seed; each shard builds from an independently
                spawned child stream, so builds are deterministic per seed
                regardless of shard count.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if assignment not in _ASSIGNMENTS:
            raise ValueError(
                f"assignment must be one of {_ASSIGNMENTS}, got {assignment!r}"
            )
        inner_spec = IndexSpec.coerce(inner)
        if inner_spec.method.lower() == "sharded":
            raise ValueError("sharded indexes cannot nest sharded inner methods")
        n = data.shape[0]
        members = _assign_members(n, min(int(shards), n), assignment)
        child_rngs = resolve_rng(rng).spawn(len(members))
        built = [
            build_index(inner_spec, np.ascontiguousarray(data[m]), rng=child)
            for m, child in zip(members, child_rngs)
        ]
        return cls(
            built, members, inner_spec, int(shards), assignment,
            n_threads=n_threads, next_id=n,
        )

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "ShardedIndex":
        """Build from a spec, e.g. ``sharded(inner='promips(c=0.9)', shards=4)``."""
        return cls.build(data, rng=resolve_rng(rng), **spec.params)

    def spec(self) -> IndexSpec:
        return IndexSpec(
            "sharded",
            {
                "inner": str(self.inner_spec),
                "shards": self.requested_shards,
                "assignment": self.assignment,
                "n_threads": self.n_threads,
            },
        )

    def state(self) -> dict[str, np.ndarray]:
        """One v2 sub-envelope per shard plus the member tables.

        Each shard serialises through :func:`repro.core.persist.pack_substate`
        with its *own* resolved spec (a per-shard ProMIPS can resolve a
        different ``m``), so reconstruction does not re-run any build.
        """
        out: dict[str, np.ndarray] = {}
        for i, shard in enumerate(self.shards):
            out.update(pack_substate(shard, f"shard{i}_"))
            out[f"members{i}"] = self._shard_members(i).copy()
        out["next_id"] = np.array([self._next_id], dtype=np.int64)
        return out

    @classmethod
    def from_state(cls, spec: IndexSpec, state: dict[str, np.ndarray]) -> "ShardedIndex":
        shards: list = []
        members: list[np.ndarray] = []
        while f"shard{len(shards)}___meta__" in state:
            i = len(shards)
            shards.append(unpack_substate(state, f"shard{i}_"))
            members.append(np.asarray(state[f"members{i}"], dtype=np.int64))
        if not shards:
            raise ValueError("sharded state holds no shard sub-envelopes")
        return cls(
            shards,
            members,
            IndexSpec.parse(spec.params["inner"]),
            int(spec.params.get("shards", len(shards))),
            spec.params.get("assignment", "contiguous"),
            n_threads=spec.params.get("n_threads"),
            next_id=int(state["next_id"][0]),
        )

    # ------------------------------------------------------------------- sizes

    @property
    def n_shards(self) -> int:
        """Effective shard count (≤ the configured ``shards`` on tiny data)."""
        return len(self.shards)

    def _shard_members(self, s: int) -> np.ndarray:
        """Shard ``s``'s local→global id table (ascending), as a view."""
        return self._member_bufs[s][: self._member_counts[s]]

    @staticmethod
    def _live_count(shard) -> int:
        live = getattr(shard, "n_live", None)
        return int(live) if live is not None else int(shard.n)

    @property
    def n_live(self) -> int:
        """Live points across all shards (tombstones excluded)."""
        return sum(self._live_count(shard) for shard in self.shards)

    def index_size_bytes(self) -> int:
        """Shard structures plus the global↔local member tables."""
        return sum(shard.index_size_bytes() for shard in self.shards) + sum(
            self._shard_members(s).nbytes for s in range(self.n_shards)
        )

    # ------------------------------------------------------------------- merge

    def _merge(self, shard_results: list[SearchResult], k: int) -> SearchResult:
        """Exact cross-shard top-k: order by ``(-score, global_id)``.

        Identical to the total order the unsharded engine applies, which is
        what makes sharding invisible for exact inner methods.  No shard can
        contribute more than its own top-k to the global top-k, so merging
        the per-shard short-lists loses nothing.
        """
        gids = np.concatenate(
            [self._shard_members(s)[r.ids] for s, r in enumerate(shard_results)]
        )
        scores = np.concatenate([r.scores for r in shard_results])
        order = np.lexsort((gids, -scores))[:k]
        per_shard_candidates = [r.stats.candidates for r in shard_results]
        stats = SearchStats(
            pages=sum(r.stats.pages for r in shard_results),
            candidates=sum(per_shard_candidates),
            extras={
                "shards": self.n_shards,
                "per_shard_candidates": per_shard_candidates,
            },
        )
        return SearchResult(ids=gids[order], scores=scores[order], stats=stats)

    # ------------------------------------------------------------------ search

    def search(self, query: np.ndarray, k: int = 1, **kwargs) -> SearchResult:
        """Top-k over all shards (each shard clamps ``k`` to its own size)."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n_live)
        results = [shard.search(query, k=k, **kwargs) for shard in self.shards]
        return self._merge(results, k)

    def search_many(
        self,
        queries: np.ndarray,
        k: int = 1,
        n_threads: int | None = None,
        **kwargs,
    ) -> BatchResult:
        """Fan a batch out over the shards and merge per query.

        Each shard answers the *whole* batch through its native
        ``search_many`` path; shards run concurrently on a thread pool
        (BLAS releases the GIL, so per-shard GEMMs overlap on real cores).
        Per-shard wall-clock seconds land in :attr:`last_shard_seconds`.

        Args:
            queries: ``(n_q, d)`` batch (one ``(d,)`` query is promoted).
            k: results per query.
            n_threads: fan-out width override for this call.
            **kwargs: forwarded to every shard (e.g. ProMIPS ``c=0.8``).
        """
        k = validate_k(k)
        queries = validate_queries(queries, self.dim)
        if queries.shape[0] == 0:
            return BatchResult.empty()
        k = min(k, self.n_live)

        timings = [0.0] * self.n_shards

        def run_shard(s: int) -> BatchResult:
            start = time.perf_counter()
            batch = self.shards[s].search_many(queries, k=k, **kwargs)
            timings[s] = time.perf_counter() - start
            return batch

        width = n_threads if n_threads is not None else self.n_threads
        if width is None:
            width = min(self.n_shards, os.cpu_count() or 1)
        # A pool wider than the shard count only oversubscribes (each shard
        # is one task) — clamp, so a persisted big-host n_threads tuning
        # stays bounded when the index reloads on a smaller machine.
        width = min(width, self.n_shards)
        if width > 1 and self.n_shards > 1:
            with ThreadPoolExecutor(max_workers=width) as pool:
                shard_batches = list(pool.map(run_shard, range(self.n_shards)))
        else:
            shard_batches = [run_shard(s) for s in range(self.n_shards)]
        self.last_shard_seconds = timings
        return self._merge_batches(shard_batches, queries.shape[0], k)

    def _merge_batches(
        self, shard_batches: list[BatchResult], n_q: int, k: int
    ) -> BatchResult:
        """Vectorized cross-shard merge of whole batches.

        The per-query order is the same ``(-score, global_id)`` of
        :meth:`_merge`, but applied to all queries at once: each shard's
        ``(n_q, k')`` id block remaps to global ids in one gather, the blocks
        concatenate into ``(n_q, Σk')`` panels, and one axis-wise lexsort
        selects every row's top-k.  Keeping the merge out of a per-query
        Python loop matters because on a many-core host it is the only
        serial stage left after the fan-out.
        """
        # Padded slots (an approximate shard can come up short of k) sort
        # last under (score=-inf, gid=sentinel) and are re-masked after the
        # cut by the shared engine merge.
        gid_blocks: list[np.ndarray] = []
        score_blocks: list[np.ndarray] = []
        for s, batch in enumerate(shard_batches):
            members = self._shard_members(s)
            local = batch.ids
            pad = local == BatchResult.PAD_ID
            gids = members[np.where(pad, 0, local)]
            gids[pad] = MERGE_SENTINEL
            gid_blocks.append(gids)
            score_blocks.append(np.where(pad, -np.inf, batch.scores))
        top_gids, top_scores = merge_topk_panels(gid_blocks, score_blocks, k)

        stats = []
        per_shard_stats = [batch.stats for batch in shard_batches]
        for qi in range(n_q):
            row = [shard_stats[qi] for shard_stats in per_shard_stats]
            per_shard_candidates = [s.candidates for s in row]
            stats.append(
                SearchStats(
                    pages=sum(s.pages for s in row),
                    candidates=sum(per_shard_candidates),
                    extras={
                        "shards": self.n_shards,
                        "per_shard_candidates": per_shard_candidates,
                    },
                )
            )
        return BatchResult(ids=top_gids, scores=top_scores, stats=stats)

    # ---------------------------------------------------------------- updates

    def _require_mutable(self) -> None:
        missing = [
            type(shard).__name__
            for shard in self.shards
            if not (hasattr(shard, "insert") and hasattr(shard, "delete"))
        ]
        if missing:
            raise TypeError(
                f"inner method {self.inner_spec.method!r} does not support "
                f"updates (shards {sorted(set(missing))} lack insert/delete); "
                "use inner='dynamic(...)'"
            )

    def insert(self, vector: np.ndarray) -> int:
        """Insert one point into the least-loaded shard; returns its global id.

        Ties break toward the lowest shard index, so routing is deterministic.
        The new global id is appended to the shard's member table, preserving
        the ascending local→global correspondence the merge relies on.
        """
        self._require_mutable()
        vector = validate_query(vector, self.dim)
        target = min(
            range(self.n_shards), key=lambda s: (self._live_count(self.shards[s]), s)
        )
        local = self.shards[target].insert(vector)
        gid = self._next_id
        self._next_id += 1
        count = self._member_counts[target]
        if local != count:
            raise RuntimeError(
                f"shard {target} assigned local id {local}, expected {count}"
            )
        buf = self._member_bufs[target]
        if count == buf.size:  # amortised doubling keeps inserts O(1)
            grown = np.empty(max(8, 2 * buf.size), dtype=np.int64)
            grown[:count] = buf
            self._member_bufs[target] = buf = grown
        buf[count] = gid
        self._member_counts[target] = count + 1
        return gid

    def maintenance_targets(self) -> list[tuple[str, object]]:
        """Per-shard rebuild hooks for :class:`repro.core.maintenance.
        MaintenanceEngine` (non-empty only for dynamic inners).

        The engine checks targets round-robin and rebuilds one at a time,
        so at most one shard pays build cost at any moment — the remaining
        shards keep answering at full speed and the cross-shard merge never
        sees a half-swapped shard (swaps happen under the serving lock).
        """
        return [
            (f"shard{s}", shard)
            for s, shard in enumerate(self.shards)
            if hasattr(shard, "begin_rebuild")
        ]

    def delete(self, global_id: int) -> None:
        """Delete a point by global id, routed to the owning shard.

        Raises:
            KeyError: unknown or already-deleted id.
            ValueError: deleting would empty the owning shard — the inner
                dynamic index refuses to tombstone its last live point, so
                unlike the unsharded index the composite cannot drain one
                partition completely (a documented sharding limitation; the
                error names the shard so callers can tell it apart from the
                composite running dry).
        """
        self._require_mutable()
        for s, shard in enumerate(self.shards):
            members = self._shard_members(s)
            pos = int(np.searchsorted(members, global_id))
            if pos < members.size and members[pos] == global_id:
                try:
                    shard.delete(pos)
                except ValueError as exc:
                    raise ValueError(
                        f"cannot delete id {global_id}: it is the last live "
                        f"point of shard {s} ({self.n_live} live points "
                        "remain overall); shards cannot be drained empty"
                    ) from exc
                except KeyError as exc:
                    # The inner index names the shard-local id; re-raise in
                    # the caller's global id space.
                    raise KeyError(
                        f"unknown or already-deleted id {global_id}"
                    ) from exc
                return
        raise KeyError(f"unknown id {global_id}")

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(shards={self.n_shards}, inner={self.inner_spec}, "
            f"assignment={self.assignment!r}, live={self.n_live})"
        )
