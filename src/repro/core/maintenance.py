"""Generational background maintenance: rebuilds off the request lock.

The paper's case for a lightweight index is cheap maintenance under
update-heavy workloads (§I, Fig. 4(b)) — but *when* that maintenance runs
matters as much as what it costs.  A delta-buffer index that re-bulk-loads
synchronously inside ``insert``/``delete`` stalls every concurrent query for
the whole build; LEMP-style serving work (Abuzaid et al., "To Index or Not
to Index") makes the point that amortised maintenance cost must never appear
on the query critical path.

This module supplies that property for any index implementing the
**maintenance protocol** (:class:`repro.core.dynamic.DynamicProMIPS` is the
canonical implementation):

* ``maintenance_due() -> str | None`` — why a rebuild is needed now
  (``"delta"`` buffer over threshold, ``"tombstones"`` ratio over
  threshold), or ``None``;
* ``begin_rebuild() -> RebuildTicket`` — snapshot the live vector set
  (called under the serving lock; O(live) copy, no index build);
* ``build_generation(ticket)`` — bulk-load the next generation from the
  snapshot (called **off** the lock; the expensive part);
* ``commit_rebuild(ticket, built) -> dict`` — atomically swap the new
  generation in and *replay* the mutations that landed during the build
  (under the lock again; O(drift));
* ``abort_rebuild(ticket)`` — drop an in-flight generation after a failed
  build, leaving the current one serving;
* ``defer_maintenance`` — attribute the engine sets ``True`` so the index
  stops rebuilding synchronously inside its own mutation methods.

Composites advertise their rebuildable parts through
``maintenance_targets()`` (e.g. :class:`repro.core.sharded.ShardedIndex`
exposes one target per dynamic shard).  The :class:`MaintenanceEngine`
checks targets round-robin and rebuilds **at most one at a time**, so a
sharded deployment never has two shards paying build cost concurrently —
rebuilds are staggered and queries only ever wait for the two short
lock-holding phases (snapshot and swap), never the build itself.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["RebuildTicket", "MaintenanceEngine", "maintenance_targets"]


@dataclass
class RebuildTicket:
    """Snapshot taken under the serving lock when a rebuild begins.

    Attributes:
        live_ids: ascending external ids live at snapshot time.
        vectors: their vectors, ``(len(live_ids), d)``, an independent copy
            so the build can run while the live buffer keeps mutating.
        next_id: the id counter at snapshot time — every id ``>= next_id``
            seen at commit was inserted *during* the build and replays into
            the new generation's delta buffer.
        prepared: id-mapping tables for the snapshot, pre-computed OFF the
            lock by ``build_generation`` so the commit's lock-held work
            stays O(drift) plus one C-speed dict copy rather than an
            O(live) Python loop.
    """

    live_ids: np.ndarray
    vectors: np.ndarray
    next_id: int
    prepared: dict | None = None


def maintenance_targets(index) -> list[tuple[str, object]]:
    """The rebuildable components of ``index`` as ``(label, target)`` pairs.

    Composites define ``maintenance_targets()`` themselves; a plain index
    implementing the maintenance protocol is its own single target; anything
    else (immutable methods) has none.
    """
    own = getattr(index, "maintenance_targets", None)
    if own is not None:
        return list(own())
    if hasattr(index, "begin_rebuild"):
        return [("index", index)]
    return []


class MaintenanceEngine:
    """Run generational rebuilds on a background thread, off the query lock.

    The engine owns the *scheduling* of maintenance; the index owns the
    *mechanics* (snapshot / build / swap+replay).  Attaching the engine sets
    ``defer_maintenance = True`` on every target, so mutations become pure
    O(1) buffer appends and the synchronous stop-the-world rebuild path
    never runs while the engine is responsible; :meth:`close` restores the
    standalone behaviour.

    Lock discipline per rebuild: ``lock`` is held for the snapshot, released
    for the whole build, and re-acquired for the swap — the serving runtime
    passes its request lock here, which is exactly what keeps query p99
    bounded during a rebuild (``benchmarks/bench_maintenance.py`` measures
    the bound).

    Args:
        index: the served index (or composite) to maintain.
        lock: the lock serialising index access (the serving runtime's
            request lock); a private one is created when maintaining an
            index nothing else touches concurrently.
        poll_interval_ms: how often the background thread re-checks
            thresholds when idle.
        on_swap: called after every committed generation swap — the serving
            runtime hooks cache invalidation here, because a new generation
            may rank differently than the one cached answers came from.
    """

    def __init__(
        self,
        index,
        lock: threading.Lock | None = None,
        *,
        poll_interval_ms: float = 50.0,
        on_swap=None,
    ) -> None:
        targets = maintenance_targets(index)
        if not targets:
            raise ValueError(
                f"{type(index).__name__} has no maintainable components; "
                "maintenance needs a 'dynamic(...)' index or a composite "
                "with dynamic shards"
            )
        if poll_interval_ms < 0:
            raise ValueError(
                f"poll_interval_ms must be >= 0, got {poll_interval_ms}"
            )
        self._targets = targets
        self._lock = lock if lock is not None else threading.Lock()
        self._on_swap = on_swap
        # Floor of 1ms: every idle check acquires the serving lock, so a
        # zero interval would busy-spin the thread against the query path.
        self.poll_interval = max(float(poll_interval_ms), 1.0) / 1e3
        self._cursor = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._state_lock = threading.Lock()
        self._in_flight: str | None = None
        self.rebuilds = 0
        self.reclaimed_bytes = 0
        self.replayed_inserts = 0
        self.replayed_deletes = 0
        self.errors = 0
        self.last_error: str | None = None
        self.last_rebuild_seconds: float | None = None
        self.last_reason: str | None = None
        for _, target in targets:
            target.defer_maintenance = True

    # ------------------------------------------------------------------ drive

    def run_once(self) -> dict | None:
        """Check targets round-robin; rebuild the first one due, if any.

        At most one rebuild per call (the stagger guarantee).  Returns the
        commit report (``target``, ``reason``, ``seconds``, replay counts,
        reclaimed bytes) or ``None`` when nothing was due.  A failed build
        aborts cleanly — the current generation keeps serving — counts
        toward :attr:`errors`, and re-raises for the caller.
        """
        n = len(self._targets)
        for step in range(n):
            pos = (self._cursor + step) % n
            label, target = self._targets[pos]
            with self._lock:
                reason = target.maintenance_due()
                if reason is None:
                    continue
                try:
                    ticket = target.begin_rebuild()
                except BaseException as exc:
                    # Advance past the failing target so it cannot starve
                    # the other due targets across retries.
                    self._cursor = (pos + 1) % n
                    with self._state_lock:
                        self.errors += 1
                        self.last_error = f"{label}: {exc!r}"
                    raise
                self._in_flight = label
            self._cursor = (pos + 1) % n
            start = time.perf_counter()
            try:
                built = target.build_generation(ticket)
                with self._lock:
                    report = target.commit_rebuild(ticket, built)
                    # Inside the lock: a search that computed against the
                    # old generation and races its cache put against this
                    # swap must see the bumped generation (and be refused),
                    # or a pre-swap ranking could be cached as fresh.
                    if self._on_swap is not None:
                        self._on_swap()
            except BaseException as exc:
                target.abort_rebuild(ticket)
                with self._state_lock:
                    self._in_flight = None
                    self.errors += 1
                    self.last_error = f"{label}: {exc!r}"
                raise
            elapsed = time.perf_counter() - start
            with self._state_lock:
                self._in_flight = None
                self.rebuilds += 1
                self.reclaimed_bytes += int(report.get("reclaimed_bytes", 0))
                self.replayed_inserts += int(report.get("replayed_inserts", 0))
                self.replayed_deletes += int(report.get("replayed_deletes", 0))
                self.last_rebuild_seconds = elapsed
                self.last_reason = f"{label}:{reason}"
            return {
                "target": label,
                "reason": reason,
                "seconds": elapsed,
                **report,
            }
        return None

    def _run(self) -> None:
        backoff = 0.0
        while not self._stop.is_set():
            try:
                ran = self.run_once()
                backoff = 0.0
            except Exception:
                # Counted (message kept in last_error) by run_once.
                # Exponential backoff: a build that keeps failing would
                # otherwise re-snapshot under the serving lock every poll
                # tick, forever.
                ran = None
                backoff = min(
                    max(2.0 * backoff, 10.0 * self.poll_interval), 5.0
                )
            if ran is None:
                self._stop.wait(max(self.poll_interval, backoff))

    def start(self) -> "MaintenanceEngine":
        """Start the background thread (idempotent; restartable after
        :meth:`close`, which re-takes ownership of maintenance scheduling
        from the targets)."""
        if self._thread is None:
            for _, target in self._targets:
                target.defer_maintenance = True
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-maintenance", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the thread and hand synchronous maintenance back to the
        targets.  Idempotent; an in-flight rebuild finishes first."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        for _, target in self._targets:
            target.defer_maintenance = False

    def quiesce(self, timeout: float = 10.0) -> bool:
        """Block until no target is due and no rebuild is in flight.

        With the background thread running this waits for it; without, it
        drives :meth:`run_once` inline.  Returns ``False`` on timeout.
        """
        deadline = time.monotonic() + float(timeout)
        while time.monotonic() < deadline:
            if self._thread is None:
                if self.run_once() is None:
                    return True
                continue
            with self._lock:
                busy = self._in_flight is not None or any(
                    target.maintenance_due() is not None
                    for _, target in self._targets
                )
            if not busy:
                return True
            time.sleep(0.005)
        return False

    # -------------------------------------------------------------- reporting

    @property
    def in_flight(self) -> str | None:
        """Label of the target currently rebuilding, or ``None``."""
        return self._in_flight

    def stats(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        with self._state_lock:
            return {
                "enabled": True,
                "targets": len(self._targets),
                "running": self._thread is not None,
                "in_flight": self._in_flight,
                "rebuilds": self.rebuilds,
                "reclaimed_bytes": self.reclaimed_bytes,
                "replayed_inserts": self.replayed_inserts,
                "replayed_deletes": self.replayed_deletes,
                "errors": self.errors,
                "last_error": self.last_error,
                "last_rebuild_seconds": self.last_rebuild_seconds,
                "last_reason": self.last_reason,
            }

    def __enter__(self) -> "MaintenanceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MaintenanceEngine(targets={len(self._targets)}, "
            f"rebuilds={self.rebuilds}, in_flight={self._in_flight!r})"
        )
