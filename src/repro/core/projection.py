"""2-stable random projections (Definition 2, Lemma 1/2 of the paper).

A 2-stable random projection computes ``f(o) = v · o`` with the entries of
``v`` drawn i.i.d. from ``N(0, 1)``.  Stacking ``m`` such projections gives
``P(o) ∈ R^m`` with the key property (Lemma 2)

    ``dis²(P(o), P(q)) / dis²(o, q)  ~  χ²(m)``,

which is what turns projected distances into probability statements about
original distances — the engine behind Condition B and Quick-Probe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StableProjection"]


class StableProjection:
    """An ``m``-fold 2-stable random projection ``R^d → R^m``.

    Args:
        dim: original dimensionality ``d``.
        proj_dim: projected dimensionality ``m``.
        rng: generator for the i.i.d. ``N(0,1)`` projection entries.
    """

    def __init__(self, dim: int, proj_dim: int, rng: np.random.Generator) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if proj_dim <= 0:
            raise ValueError(f"proj_dim must be positive, got {proj_dim}")
        self.dim = int(dim)
        self.proj_dim = int(proj_dim)
        self._matrix = rng.standard_normal((proj_dim, dim))

    @property
    def matrix(self) -> np.ndarray:
        """The ``(m, d)`` projection matrix (rows are the vectors ``v_i``)."""
        return self._matrix

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project one point ``(d,)`` or a batch ``(n, d)``.

        Returns an array of shape ``(m,)`` or ``(n, m)`` respectively.
        """
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        if points.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {points.shape[1]}, projection expects {self.dim}"
            )
        projected = points @ self._matrix.T
        return projected[0] if single else projected

    def size_bytes(self) -> int:
        """Footprint of the projection matrix (part of the index size)."""
        return self._matrix.nbytes

    def __repr__(self) -> str:
        return f"StableProjection(dim={self.dim}, proj_dim={self.proj_dim})"
