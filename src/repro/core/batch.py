"""Batch query execution with aggregate accounting.

Recommendation back-ends answer MIP queries for whole user cohorts at once;
this helper runs a query batch through any :class:`repro.api.MIPSIndex` and
aggregates the per-query statistics (mean/percentile pages, total
candidates), so callers don't re-implement the bookkeeping loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import MIPSIndex, SearchResult

__all__ = ["BatchStats", "search_batch"]


@dataclass(frozen=True)
class BatchStats:
    """Aggregate accounting for one batch.

    Attributes:
        n_queries: batch size.
        mean_pages / p95_pages: page-access distribution across queries.
        total_candidates: candidates verified over the whole batch.
    """

    n_queries: int
    mean_pages: float
    p95_pages: float
    total_candidates: int


def search_batch(
    index: MIPSIndex,
    queries: np.ndarray,
    k: int = 1,
    **search_kwargs,
) -> tuple[list[SearchResult], BatchStats]:
    """Run ``index.search`` over every row of ``queries``.

    Args:
        index: any MIPS index (ProMIPS or a baseline).
        queries: ``(n_q, d)`` array.
        k: results per query.
        **search_kwargs: forwarded per query (e.g. ProMIPS ``c=0.8``).

    Returns:
        The per-query results plus aggregated :class:`BatchStats`.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if queries.shape[0] == 0:
        raise ValueError("queries must be non-empty")
    results = [index.search(q, k=k, **search_kwargs) for q in queries]
    pages = np.array([r.stats.pages for r in results], dtype=np.float64)
    stats = BatchStats(
        n_queries=len(results),
        mean_pages=float(pages.mean()),
        p95_pages=float(np.percentile(pages, 95)),
        total_candidates=int(sum(r.stats.candidates for r in results)),
    )
    return results, stats
