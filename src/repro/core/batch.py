"""Batch query execution with aggregate accounting.

Recommendation back-ends answer MIP queries for whole user cohorts at once.
Since batching is part of the :class:`repro.api.MIPSIndex` protocol, this
module is a thin orchestration layer: :func:`search_many` routes a batch to
the index's native vectorized path when it has one (ProMIPS, Exact, PQ,
SimHash), and otherwise runs the generic fallback — optionally fanned out
over a thread pool, which helps because NumPy releases the GIL inside the
BLAS kernels every search leans on.  :func:`search_batch` keeps the original
list-of-results signature and aggregates :class:`BatchStats`.
"""

from __future__ import annotations

import inspect
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.api import BatchResult, BatchSearchMixin, MIPSIndex, SearchResult

__all__ = ["BatchStats", "search_batch", "search_many", "has_native_batch"]


@dataclass(frozen=True)
class BatchStats:
    """Aggregate accounting for one batch.

    Attributes:
        n_queries: batch size.
        mean_pages / p95_pages: page-access distribution across queries.
        total_candidates: candidates verified over the whole batch.
    """

    n_queries: int
    mean_pages: float
    p95_pages: float
    total_candidates: int

    @classmethod
    def from_batch(cls, batch: BatchResult) -> "BatchStats":
        # Deferred import: repro.eval pulls the harness in, which imports
        # this module back — at call time the cycle has long resolved.
        from repro.eval.metrics import p95

        if len(batch) == 0:
            return cls(n_queries=0, mean_pages=0.0, p95_pages=0.0, total_candidates=0)
        pages = [s.pages for s in batch.stats]
        return cls(
            n_queries=len(batch),
            mean_pages=float(np.mean(pages)),
            p95_pages=p95(pages),
            total_candidates=int(sum(s.candidates for s in batch.stats)),
        )


def has_native_batch(index: MIPSIndex) -> bool:
    """Whether the index overrides the generic ``search_many`` fallback."""
    impl = getattr(type(index), "search_many", None)
    return impl is not None and impl is not BatchSearchMixin.search_many


def search_many(
    index: MIPSIndex,
    queries: np.ndarray,
    k: int = 1,
    n_threads: int | None = None,
    **search_kwargs,
) -> BatchResult:
    """Answer a query batch through the fastest path the index offers.

    Args:
        index: any MIPS index (ProMIPS or a baseline).
        queries: ``(n_q, d)`` array (one ``(d,)`` query is promoted).
        k: results per query.
        n_threads: fan-out width.  Single-GEMM native paths ignore it (one
            GEMM already saturates the cores BLAS is configured for), but a
            native path that itself fans out — ``ShardedIndex`` — receives
            it as its pool width, and the generic fallback loop spreads
            over this many threads.
        **search_kwargs: forwarded to the index (e.g. ProMIPS ``c=0.8``).
    """
    queries = np.asarray(queries, dtype=np.float64)
    # An empty batch is answered uniformly (see repro.api.validate_queries);
    # a malformed non-empty one (e.g. (5, 0)) still reaches the index's own
    # validation and raises there.
    if queries.size == 0 and (queries.ndim == 1 or queries.shape[0] == 0):
        return BatchResult.empty()
    queries = np.atleast_2d(queries)
    if has_native_batch(index):
        native = type(index).search_many
        if (
            n_threads is not None
            and "n_threads" in inspect.signature(native).parameters
        ):
            return index.search_many(
                queries, k=k, n_threads=n_threads, **search_kwargs
            )
        return index.search_many(queries, k=k, **search_kwargs)
    if n_threads is not None and n_threads > 1 and queries.shape[0] > 1:
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            results = list(
                pool.map(lambda q: index.search(q, k=k, **search_kwargs), queries)
            )
        return BatchResult.from_results(results)
    if hasattr(index, "search_many"):
        return index.search_many(queries, k=k, **search_kwargs)
    # Indexes predating the protocol extension still answer batches.
    return BatchResult.from_results(
        [index.search(q, k=k, **search_kwargs) for q in queries]
    )


def search_batch(
    index: MIPSIndex,
    queries: np.ndarray,
    k: int = 1,
    n_threads: int | None = None,
    **search_kwargs,
) -> tuple[list[SearchResult], BatchStats]:
    """Run a batch and aggregate its statistics.

    Kept for callers that want per-query :class:`SearchResult` objects; new
    code can use :func:`search_many` / ``index.search_many`` directly and
    keep the columnar :class:`repro.api.BatchResult`.

    Returns:
        The per-query results plus aggregated :class:`BatchStats`.
    """
    batch = search_many(index, queries, k=k, n_threads=n_threads, **search_kwargs)
    return list(batch), BatchStats.from_batch(batch)
