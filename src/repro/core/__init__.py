"""The paper's contribution: projections, conditions, Quick-Probe, ProMIPS —
plus the shared batch query engine every index builds on."""

from repro.core.batch import BatchStats, has_native_batch, search_batch, search_many
from repro.core.engine import (
    CandidateVerifier,
    TopK,
    batch_inner_products,
    batch_topk,
    merge_topk_panels,
    project_batch,
    topk_ids_scores,
)
from repro.core.binary_codes import (
    BinaryCodeGroups,
    group_lower_bounds,
    pack_code,
    sign_bits,
)
from repro.core.conditions import (
    compensation_radius,
    condition_a_holds,
    condition_b_holds,
    guarantee_denominator,
)
from repro.core.dynamic import DynamicProMIPS
from repro.core.maintenance import (
    MaintenanceEngine,
    RebuildTicket,
    maintenance_targets,
)
from repro.core.optimal_dim import optimized_projection_dim, quickprobe_cost
from repro.core.persist import inspect_index, load_index, save_index
from repro.core.projection import StableProjection
from repro.core.rng import resolve_rng
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.core.quickprobe import ProbeOutcome, QuickProbe

__all__ = [
    "BatchStats",
    "search_batch",
    "search_many",
    "has_native_batch",
    "CandidateVerifier",
    "TopK",
    "batch_inner_products",
    "batch_topk",
    "merge_topk_panels",
    "project_batch",
    "topk_ids_scores",
    "DynamicProMIPS",
    "MaintenanceEngine",
    "RebuildTicket",
    "maintenance_targets",
    "load_index",
    "save_index",
    "inspect_index",
    "resolve_rng",
    "BinaryCodeGroups",
    "group_lower_bounds",
    "pack_code",
    "sign_bits",
    "compensation_radius",
    "condition_a_holds",
    "condition_b_holds",
    "guarantee_denominator",
    "optimized_projection_dim",
    "quickprobe_cost",
    "StableProjection",
    "ProMIPS",
    "ProMIPSParams",
    "ProbeOutcome",
    "QuickProbe",
]
