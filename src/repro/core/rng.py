"""Shared RNG coercion for every index constructor and ``from_spec``.

Every randomized method in the repository accepts the same spectrum of
``rng`` arguments — an existing :class:`numpy.random.Generator`, an integer
seed, or ``None`` for OS entropy — and resolves it through
:func:`resolve_rng`.  Centralising the coercion keeps the behaviour uniform
(a ``Generator`` passes through untouched, so several builds can share one
stream) and gives specs a single documented seeding story.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resolve_rng"]


def resolve_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Coerce ``rng`` to a :class:`numpy.random.Generator`.

    Args:
        rng: an existing generator (returned as-is, sharing its stream), an
            integer seed, or ``None`` for a fresh OS-seeded generator.

    Raises:
        TypeError: for anything else (a float seed is almost always a bug).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be a numpy Generator, an int seed, or None, got {type(rng).__name__}"
    )
