"""Dynamic updates for ProMIPS — the §I maintenance story, made concrete.

The paper motivates the lightweight index with update-heavy deployments
("in commonly used mobile devices or IoT devices, a huge amount of data will
be frequently inserted or deleted in a short time, where the heavyweight
index requiring more maintenance overhead may cause delays").  This module
supplies the standard engineering answer for a bulk-loaded structure:

* **inserts** land in a small in-memory *delta buffer* that queries scan
  exactly (it holds raw vectors, so no accuracy is lost);
* **deletes** are tombstones filtered from every result;
* a **compaction** re-bulk-loads the index over the live points only,
  clears the tombstone set, and reclaims the storage of dead rows — so
  the candidate over-fetch that absorbs tombstones (``k + #tombstones``)
  returns to ``k`` and the vector buffer shrinks back to the live set.
  Compaction triggers on *either* pressure source: delta size
  (``rebuild_threshold``, checked on insert) or tombstone ratio
  (``compact_threshold``, checked on delete) — a delete-only workload
  compacts just like an insert-only one.

All vectors (indexed, delta, and not-yet-compacted dead rows) live in one
growable 2-D buffer with amortised-O(1) appends; external ids are stable
across compactions and map to buffer rows through ``_row_of_external``.

For *serving*, the synchronous compaction above is the wrong shape: it runs
inside ``insert``/``delete`` and, behind a request lock, stalls every
concurrent query for the whole build.  The **generational protocol**
(:mod:`repro.core.maintenance`) splits it into three phases so an engine can
run the expensive part off the lock::

    ticket = index.begin_rebuild()        # under lock: O(live) snapshot
    built  = index.build_generation(ticket)  # off lock: the bulk load
    index.commit_rebuild(ticket, built)   # under lock: swap + replay drift

Mutations that land between ``begin`` and ``commit`` are *replayed* into
the new generation at commit time: inserts become its delta buffer,
deletes of snapshotted points become its (only) tombstones.  Setting
``defer_maintenance = True`` (the engine does this on attach) turns the
synchronous trigger off so mutations stay O(1).

Correctness note: the guarantee machinery (Conditions A/B) runs against the
*indexed* points; delta points are merged by exact inner product afterwards,
which can only improve the returned set, and ``‖oM‖²`` is kept as the max
over indexed **and** delta points so Condition A stays sound.  Tombstoned
points may still be *verified* (they live in the index until compaction) but
are never returned; the guarantee then applies relative to the surviving
points, matching delete semantics.
"""

from __future__ import annotations

import numpy as np

from dataclasses import asdict

from repro.api import (
    BatchResult,
    SearchResult,
    SearchStats,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.core.engine import (
    MERGE_SENTINEL,
    batch_inner_products,
    merge_topk_panels,
)
from repro.core.maintenance import RebuildTicket
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.core.rng import resolve_rng
from repro.spec import IndexSpec, register_method

__all__ = ["DynamicProMIPS"]


@register_method("dynamic", aliases=("Dynamic", "DynamicProMIPS"))
class DynamicProMIPS:
    """ProMIPS with insert/delete support via a delta buffer + tombstones.

    Args:
        data: initial ``(n, d)`` dataset.
        params: ProMIPS build parameters.
        rng: generator or seed used for (re)builds.
        rebuild_threshold: delta-buffer size triggering a compaction, as a
            fraction of the indexed size (checked on insert).
        compact_threshold: tombstone count triggering a compaction, as a
            fraction of the indexed size (checked on delete).
    """

    def __init__(
        self,
        data: np.ndarray,
        params: ProMIPSParams | None = None,
        rng: np.random.Generator | int | None = None,
        rebuild_threshold: float = 0.2,
        compact_threshold: float = 0.25,
    ) -> None:
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild_threshold must be in (0, 1], got {rebuild_threshold}"
            )
        if not 0.0 < compact_threshold <= 1.0:
            raise ValueError(
                f"compact_threshold must be in (0, 1], got {compact_threshold}"
            )
        self._rng = resolve_rng(rng)
        self.params = params or ProMIPSParams()
        self.rebuild_threshold = float(rebuild_threshold)
        self.compact_threshold = float(compact_threshold)

        data = np.asarray(data, dtype=np.float64)
        self._index = ProMIPS.build(data, self.params, rng=self._rng)
        self.dim = self._index.dim
        n = self._index.n
        # One growable 2-D buffer holds every stored vector; appends are
        # amortised O(1) (the initial array is full, so the first insert
        # copies into grown private storage and never mutates `data`).
        self._vec_buf = data
        self._n_rows = n
        # Stable external ids: indexed points get 0..n-1; inserts continue.
        self._row_of_external: dict[int, int] = {i: i for i in range(n)}
        self._install_generation(
            self._index, np.arange(n, dtype=np.int64), {}, set()
        )
        self._next_id = n
        self.rebuilds = 0
        self.reclaimed_bytes = 0
        # True while a MaintenanceEngine owns compaction scheduling: the
        # synchronous trigger inside insert/delete is suppressed.
        self.defer_maintenance = False
        self._rebuild_in_progress = False

    def _install_generation(
        self,
        index: ProMIPS,
        indexed_external: np.ndarray,
        delta: dict[int, int],
        tombstones: set[int],
        indexed_of_external: dict[int, int] | None = None,
    ) -> None:
        """Point the search path at a (new) generation's structures.

        ``indexed_of_external`` may be passed pre-computed (the generational
        path builds it off the serving lock) to keep this swap cheap.
        """
        self._index = index
        self._indexed_external = indexed_external
        self._indexed_of_external = (
            indexed_of_external
            if indexed_of_external is not None
            else {int(ext): idx for idx, ext in enumerate(indexed_external.tolist())}
        )
        self._delta = delta
        self._tombstones = tombstones
        mask = np.zeros(index.n, dtype=bool)
        for ext in tombstones:
            mask[self._indexed_of_external[ext]] = True
        self._tombstone_mask = mask

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "DynamicProMIPS":
        """Build from a spec: ProMIPS parameters plus the two maintenance
        thresholds, e.g. ``dynamic(c=0.9, rebuild_threshold=0.2,
        compact_threshold=0.25)``."""
        params = dict(spec.params)
        rebuild_threshold = params.pop("rebuild_threshold", 0.2)
        compact_threshold = params.pop("compact_threshold", 0.25)
        return cls(
            data,
            ProMIPSParams(**params),
            rng=resolve_rng(rng),
            rebuild_threshold=rebuild_threshold,
            compact_threshold=compact_threshold,
        )

    def spec(self) -> IndexSpec:
        return IndexSpec(
            "dynamic",
            {
                "rebuild_threshold": self.rebuild_threshold,
                "compact_threshold": self.compact_threshold,
                **asdict(self.params),
            },
        )

    def state(self) -> dict[str, np.ndarray]:
        """The wrapped index's state plus the mutable bookkeeping: every
        *reachable* stored vector (live, delta, and tombstoned — orphaned
        rows awaiting compaction are dropped, a logical compaction for
        free), the ids those rows belong to, the tombstone set, the delta
        ids, and the indexed→external id map.

        The inner index's data array is NOT stored — its rows are exactly
        the buffer rows of ``indexed_external``, so :meth:`from_state`
        reconstructs it instead of doubling the file's dominant payload."""
        inner = {
            f"promips_{k}": v
            for k, v in self._index.state().items()
            if k != "data"
        }
        ids, rows = self._sorted_id_rows()
        if rows.size == self._n_rows and np.array_equal(
            rows, np.arange(self._n_rows)
        ):
            vectors = self._vec_buf[: self._n_rows]  # view; savez copies
        else:
            vectors = self._vec_buf[rows]
        return {
            **inner,
            "inner_m": np.array([self._index.params.m], dtype=np.int64),
            "vectors": vectors,
            "row_external": ids,
            "tombstones": np.array(sorted(self._tombstones), dtype=np.int64),
            "delta_ids": np.array(sorted(self._delta), dtype=np.int64),
            "indexed_external": self._indexed_external.copy(),
            "next_id": np.array([self._next_id], dtype=np.int64),
            "rebuilds": np.array([self.rebuilds], dtype=np.int64),
            "reclaimed_bytes": np.array([self.reclaimed_bytes], dtype=np.int64),
        }

    @classmethod
    def from_state(
        cls, spec: IndexSpec, state: dict[str, np.ndarray]
    ) -> "DynamicProMIPS":
        """Reconstruct with bit-identical search behaviour.

        The rng for *future* rebuilds is freshly OS-seeded (the generator's
        position is not serialized); everything a search touches is restored
        exactly.
        """
        thresholds = ("rebuild_threshold", "compact_threshold")
        params = {k: v for k, v in spec.params.items() if k not in thresholds}
        inner_spec = IndexSpec(
            "promips", {**params, "m": int(state["inner_m"][0])}
        )
        vectors = np.asarray(state["vectors"], dtype=np.float64)
        # Pre-1.5 envelopes stored every vector positionally by external id
        # and no id counter; their layout is exactly row_external = 0..n-1,
        # next_id = n, so defaulting the missing keys keeps them loading.
        if "row_external" in state:
            row_external = np.asarray(state["row_external"], dtype=np.int64)
        else:
            row_external = np.arange(vectors.shape[0], dtype=np.int64)
        next_id = (
            int(state["next_id"][0])
            if "next_id" in state
            else vectors.shape[0]
        )
        indexed_external = np.asarray(state["indexed_external"], dtype=np.int64)
        row_of_external = {
            int(ext): row for row, ext in enumerate(row_external.tolist())
        }
        inner_state = {
            k[len("promips_"):]: v
            for k, v in state.items()
            if k.startswith("promips_")
        }
        inner_state["data"] = np.ascontiguousarray(
            vectors[[row_of_external[int(e)] for e in indexed_external.tolist()]]
        )
        inner = ProMIPS.from_state(inner_spec, inner_state)

        self = cls.__new__(cls)
        self._rng = resolve_rng(None)
        self.params = ProMIPSParams(**params)
        self.rebuild_threshold = float(spec.params.get("rebuild_threshold", 0.2))
        self.compact_threshold = float(spec.params.get("compact_threshold", 0.25))
        self.dim = inner.dim
        self._vec_buf = vectors
        self._n_rows = vectors.shape[0]
        self._row_of_external = row_of_external
        delta = {
            int(e): row_of_external[int(e)]
            for e in np.asarray(state["delta_ids"]).tolist()
        }
        tombstones = {int(e) for e in np.asarray(state["tombstones"]).tolist()}
        # Pre-1.5 files tombstoned deleted *delta* points too; today those
        # ids leave the row map entirely instead, so migrate them out of the
        # tombstone set (a tombstone now always names an indexed point).
        indexed_set = set(indexed_external.tolist())
        for ext in [e for e in tombstones if e not in indexed_set]:
            tombstones.discard(ext)
            row_of_external.pop(ext, None)
        self._install_generation(inner, indexed_external, delta, tombstones)
        self._next_id = next_id
        self.rebuilds = int(state["rebuilds"][0])
        self.reclaimed_bytes = int(state.get("reclaimed_bytes", [0])[0])
        self.defer_maintenance = False
        self._rebuild_in_progress = False
        return self

    # ------------------------------------------------------------- mutation

    def _sorted_id_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """The row map as aligned ``(external ids, buffer rows)`` arrays,
        ascending by id — C-speed extraction, safe to run under a lock."""
        n_map = len(self._row_of_external)
        ids = np.fromiter(self._row_of_external.keys(), np.int64, n_map)
        rows = np.fromiter(self._row_of_external.values(), np.int64, n_map)
        order = np.argsort(ids)
        return ids[order], rows[order]

    @property
    def n_live(self) -> int:
        """Number of live (non-deleted) points."""
        return len(self._row_of_external) - len(self._tombstones)

    @property
    def delta_size(self) -> int:
        return len(self._delta)

    @property
    def tombstone_count(self) -> int:
        """Deleted-but-still-indexed points awaiting compaction."""
        return len(self._tombstones)

    @property
    def indexed_points(self) -> int:
        """Points in the current bulk-loaded generation (live + tombstoned)."""
        return self._index.n

    @property
    def buffer_rows(self) -> int:
        """Rows held in the vector buffer (live + dead, pre-compaction)."""
        return self._n_rows

    def _append_row(self, vector: np.ndarray) -> int:
        if self._n_rows == self._vec_buf.shape[0]:
            grown = np.empty(
                (max(8, 2 * self._vec_buf.shape[0]), self.dim), dtype=np.float64
            )
            grown[: self._n_rows] = self._vec_buf[: self._n_rows]
            self._vec_buf = grown
        self._vec_buf[self._n_rows] = vector
        self._n_rows += 1
        return self._n_rows - 1

    def insert(self, vector: np.ndarray) -> int:
        """Insert one point; returns its external id.  O(1) amortised."""
        vector = validate_query(vector, self.dim)
        ext_id = self._next_id
        self._next_id += 1
        row = self._append_row(vector)
        self._row_of_external[ext_id] = row
        self._delta[ext_id] = row
        self._maybe_maintain()
        return ext_id

    def delete(self, external_id: int) -> None:
        """Delete a point; it disappears from all subsequent results.

        A delta point is dropped outright (its row is reclaimed at the next
        compaction); an indexed point is tombstoned.  Validates *before*
        mutating: deleting the last live point raises without tombstoning
        it, so the structure is never left empty (and therefore corrupt for
        every subsequent search).
        """
        if (
            external_id not in self._row_of_external
            or external_id in self._tombstones
        ):
            raise KeyError(f"unknown or already-deleted id {external_id}")
        if self.n_live == 1:
            raise ValueError("cannot delete the last live point")
        if external_id in self._delta:
            del self._delta[external_id]
            del self._row_of_external[external_id]
        else:
            self._tombstones.add(int(external_id))
            self._tombstone_mask[self._indexed_of_external[external_id]] = True
        self._maybe_maintain()

    def maintenance_due(self) -> str | None:
        """Why a compaction is due now (``"delta"``/``"tombstones"``) or None."""
        base = max(1, self._index.n)
        if len(self._delta) > self.rebuild_threshold * base:
            return "delta"
        if len(self._tombstones) > self.compact_threshold * base:
            return "tombstones"
        return None

    def _maybe_maintain(self) -> None:
        if not self.defer_maintenance and self.maintenance_due() is not None:
            self.compact()

    # --------------------------------------------------- generational rebuild

    def begin_rebuild(self) -> RebuildTicket:
        """Snapshot the live set for a new generation (cheap; under lock).

        Raises:
            RuntimeError: a rebuild is already in flight — generations are
                strictly sequential (the maintenance engine serialises them).
        """
        if self._rebuild_in_progress:
            raise RuntimeError("a rebuild is already in progress")
        self._rebuild_in_progress = True
        try:
            # Vectorized: this runs with the serving lock held, so the id
            # filtering must be C-speed array work, not a per-id Python loop.
            ids, rows = self._sorted_id_rows()
            if self._tombstones:
                tomb = np.fromiter(
                    self._tombstones, np.int64, len(self._tombstones)
                )
                live = ~np.isin(ids, tomb)
                ids, rows = ids[live], rows[live]
            return RebuildTicket(
                live_ids=ids,
                vectors=self._vec_buf[rows],  # fancy index: independent copy
                next_id=self._next_id,
            )
        except BaseException:
            # A failed snapshot (e.g. MemoryError on the copy) must not
            # wedge every future rebuild behind the in-progress guard.
            self._rebuild_in_progress = False
            raise

    def build_generation(self, ticket: RebuildTicket) -> ProMIPS:
        """Bulk-load the next generation (expensive; run OFF the lock).

        Also stages the new generation's vector buffer (snapshot rows
        already copied in, spare capacity for the drift accumulating while
        we build) and its external→index map on the ticket, so the commit's
        lock-held phase is O(drift) row copies plus C-speed id scans — not
        an O(live × d) memcpy stalling every query behind the lock.
        """
        built = ProMIPS.build(ticket.vectors, self.params, rng=self._rng)
        n_indexed = ticket.live_ids.size
        # _next_id is a plain int, safe to read without the lock: an upper
        # bound on inserts that have landed since the snapshot.  Double it
        # (more can land before commit) plus slack; drift beyond the staged
        # capacity falls back to one allocation at commit.
        drift_hint = max(0, self._next_id - ticket.next_id)
        capacity = n_indexed + min(2 * drift_hint + 8, max(64, n_indexed))
        buffer = np.empty((max(8, capacity), self.dim), dtype=np.float64)
        buffer[:n_indexed] = ticket.vectors
        ticket.prepared = {
            "snapshot_map": {
                int(e): pos for pos, e in enumerate(ticket.live_ids.tolist())
            },
            "buffer": buffer,
        }
        return built

    def commit_rebuild(self, ticket: RebuildTicket, built: ProMIPS) -> dict:
        """Swap the new generation in and replay drift (cheap; under lock:
        O(drift) row copies plus C-speed id scans and one dict copy — the
        buffer and map were staged off-lock by :meth:`build_generation`).

        Mutations that landed between ``begin_rebuild`` and here replay into
        the new generation: still-live inserts (ids ``>= ticket.next_id``)
        become its delta buffer; snapshotted points deleted meanwhile become
        its tombstones.  Everything else — the old tombstones, dropped delta
        rows — is compacted away and its buffer storage reclaimed.

        Returns:
            Accounting for the maintenance engine: ``reclaimed_bytes``,
            ``replayed_inserts``, ``replayed_deletes``, ``live_points``,
            ``indexed_points``.
        """
        try:
            live_ids = ticket.live_ids
            n_indexed = live_ids.size
            # Snapshotted points deleted during the build: in the new index,
            # so they re-enter as the only tombstones of the new generation.
            # Vectorized — this runs with the serving lock held.
            n_map = len(self._row_of_external)
            current = np.fromiter(self._row_of_external.keys(), np.int64, n_map)
            dead_mask = ~np.isin(live_ids, current)
            if self._tombstones:
                tomb = np.fromiter(
                    self._tombstones, np.int64, len(self._tombstones)
                )
                dead_mask |= np.isin(live_ids, tomb)
            dead = {int(e) for e in live_ids[dead_mask].tolist()}
            # Inserts that landed during the build, still live.
            replayed = sorted(e for e in self._delta if e >= ticket.next_id)

            prepared = ticket.prepared or {}
            staged = prepared.get("buffer")
            need = n_indexed + len(replayed)
            if staged is not None and staged.shape[0] >= need:
                buf = staged  # snapshot rows already in place, off-lock
            else:  # commit without build_generation, or drift > headroom
                buf = np.empty((max(8, need), self.dim), dtype=np.float64)
                buf[:n_indexed] = ticket.vectors
            snapshot_map = prepared.get("snapshot_map")
            if snapshot_map is None:  # commit without build_generation
                snapshot_map = {
                    int(e): pos for pos, e in enumerate(live_ids.tolist())
                }
            row_of_external = dict(snapshot_map)  # C-speed copy, then drift
            delta: dict[int, int] = {}
            for j, ext in enumerate(replayed):
                row = n_indexed + j
                buf[row] = self._vec_buf[self._row_of_external[ext]]
                row_of_external[ext] = row
                delta[ext] = row
            n_rows = n_indexed + len(replayed)
            # Reclaimed = allocated buffer storage actually given back:
            # dead rows, orphans, and the doubling buffer's spare capacity.
            reclaimed = (
                max(0, self._vec_buf.shape[0] - buf.shape[0]) * self.dim * 8
            )

            self._vec_buf = buf
            self._n_rows = n_rows
            self._row_of_external = row_of_external
            self._install_generation(
                built, live_ids.copy(), delta, dead,
                indexed_of_external=snapshot_map,
            )
            self.rebuilds += 1
            self.reclaimed_bytes += reclaimed
            return {
                "reclaimed_bytes": reclaimed,
                "replayed_inserts": len(replayed),
                "replayed_deletes": len(dead),
                "live_points": self.n_live,
                "indexed_points": built.n,
            }
        finally:
            self._rebuild_in_progress = False

    def abort_rebuild(self, ticket: RebuildTicket) -> None:
        """Drop an uncommitted generation; the current one keeps serving."""
        self._rebuild_in_progress = False

    def compact(self) -> dict:
        """Synchronous compaction: snapshot, bulk-load, swap — in one call.

        The standalone (non-served) maintenance path; blocks the caller for
        the build.  Returns the same accounting as :meth:`commit_rebuild`.
        """
        ticket = self.begin_rebuild()
        try:
            built = self.build_generation(ticket)
        except BaseException:
            self.abort_rebuild(ticket)
            raise
        return self.commit_rebuild(ticket, built)

    # --------------------------------------------------------------- search

    def search(self, query: np.ndarray, k: int = 1, **kwargs) -> SearchResult:
        """c-k-AMIP search over indexed + delta points, minus tombstones."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        return self._search_batch_core(query[None, :], k, kwargs)[0]

    def search_many(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> BatchResult:
        """Native vectorized batch path, bit-identical to looping
        :meth:`search`: the indexed candidates come from the inner index's
        own batch engine, the delta buffer is scanned with one fixed-panel
        GEMM for the whole batch, and the tombstone-masked merge runs as one
        axis-wise lexsort instead of a per-query Python loop."""
        k = validate_k(k)
        queries = validate_queries(queries, self.dim)
        if queries.shape[0] == 0:
            return BatchResult.empty()
        return self._search_batch_core(queries, k, kwargs)

    def _search_batch_core(
        self, queries: np.ndarray, k: int, kwargs: dict
    ) -> BatchResult:
        """Shared core of both entry points (which is what makes them agree
        bit for bit: identical GEMM shapes, identical merge order).

        The merge orders candidates by ``(-score, external_id)`` — the same
        total order the engine's top-k applies — over the indexed top
        ``k + #tombstones`` (over-fetched so tombstoned answers cannot crowd
        out live ones) plus every delta point.
        """
        n_q = queries.shape[0]
        k = min(k, self.n_live)
        index_k = min(self._index.n, k + len(self._tombstones))
        base = self._index.search_many(queries, k=index_k, **kwargs)

        # Indexed block: local ids -> external, pads and tombstones masked.
        pad = base.ids == BatchResult.PAD_ID
        safe = np.where(pad, 0, base.ids)
        dead = pad | self._tombstone_mask[safe]
        id_blocks = [np.where(dead, MERGE_SENTINEL, self._indexed_external[safe])]
        score_blocks = [np.where(dead, -np.inf, base.scores)]

        n_delta = len(self._delta)
        if n_delta:
            delta_ids = np.fromiter(self._delta.keys(), np.int64, n_delta)
            rows = np.fromiter(self._delta.values(), np.int64, n_delta)
            delta_scores = batch_inner_products(self._vec_buf[rows], queries)
            id_blocks.append(np.broadcast_to(delta_ids, (n_q, n_delta)))
            score_blocks.append(np.ascontiguousarray(delta_scores.T))

        top_ids, top_scores = merge_topk_panels(id_blocks, score_blocks, k)

        stats = [
            SearchStats(
                pages=s.pages,
                candidates=s.candidates + n_delta,
                extras={**s.extras, "delta_scanned": n_delta},
            )
            for s in base.stats
        ]
        return BatchResult(ids=top_ids, scores=top_scores, stats=stats)

    def index_size_bytes(self) -> int:
        """Everything beyond one copy of the live indexed data: the inner
        index's structures, every buffer row that is not live indexed data
        (delta copies, tombstoned rows, orphaned rows awaiting compaction,
        and the doubling buffer's allocated-but-unused capacity — all of it
        resident memory), and the id-mapping tables.  Before
        compaction-aware accounting this omitted the dead rows and the
        maps, underreporting exactly the storage a delete-heavy workload
        accumulates."""
        live_indexed = self._index.n - len(self._tombstones)
        aux_rows = self._vec_buf.shape[0] - live_indexed
        map_entries = (
            len(self._row_of_external)
            + len(self._indexed_of_external)
            + len(self._delta)
        )
        return (
            self._index.index_size_bytes()
            + aux_rows * self.dim * 8
            + self._indexed_external.nbytes
            + self._tombstone_mask.nbytes
            + 16 * map_entries  # two int64-sized words per mapping entry
        )

    def __repr__(self) -> str:
        return (
            f"DynamicProMIPS(live={self.n_live}, delta={self.delta_size}, "
            f"tombstones={self.tombstone_count}, rebuilds={self.rebuilds}, "
            f"reclaimed_bytes={self.reclaimed_bytes})"
        )
