"""Dynamic updates for ProMIPS — the §I maintenance story, made concrete.

The paper motivates the lightweight index with update-heavy deployments
("in commonly used mobile devices or IoT devices, a huge amount of data will
be frequently inserted or deleted in a short time, where the heavyweight
index requiring more maintenance overhead may cause delays").  This module
supplies the standard engineering answer for a bulk-loaded structure:

* **inserts** land in a small in-memory *delta buffer* that queries scan
  exactly (it holds raw vectors, so no accuracy is lost); when the buffer
  exceeds ``rebuild_threshold``, the whole index is re-bulk-loaded — an
  amortised cost that stays tiny because the ProMIPS pre-process is cheap
  (Fig. 4(b));
* **deletes** are tombstones filtered from every result; a rebuild compacts
  them away.

Correctness note: the guarantee machinery (Conditions A/B) runs against the
*indexed* points; delta points are merged by exact inner product afterwards,
which can only improve the returned set, and ``‖oM‖²`` is kept as the max
over indexed **and** delta points so Condition A stays sound.  Tombstoned
points may still be *verified* (they live in the index until rebuild) but
are never returned; the guarantee then applies relative to the surviving
points, matching delete semantics.
"""

from __future__ import annotations

import numpy as np

from dataclasses import asdict

from repro.api import (
    BatchSearchMixin,
    SearchResult,
    SearchStats,
    validate_k,
    validate_query,
)
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.core.rng import resolve_rng
from repro.spec import IndexSpec, register_method

__all__ = ["DynamicProMIPS"]


@register_method("dynamic", aliases=("Dynamic", "DynamicProMIPS"))
class DynamicProMIPS(BatchSearchMixin):
    """ProMIPS with insert/delete support via a delta buffer + tombstones.

    Args:
        data: initial ``(n, d)`` dataset.
        params: ProMIPS build parameters.
        rng: generator or seed used for (re)builds.
        rebuild_threshold: delta-buffer size triggering a rebuild, as a
            fraction of the indexed size.
    """

    def __init__(
        self,
        data: np.ndarray,
        params: ProMIPSParams | None = None,
        rng: np.random.Generator | int | None = None,
        rebuild_threshold: float = 0.2,
    ) -> None:
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild_threshold must be in (0, 1], got {rebuild_threshold}"
            )
        self._rng = resolve_rng(rng)
        self.params = params or ProMIPSParams()
        self.rebuild_threshold = float(rebuild_threshold)

        data = np.asarray(data, dtype=np.float64)
        self._index = ProMIPS.build(data, self.params, rng=self._rng)
        self.dim = self._index.dim
        # Stable external ids: indexed points get 0..n-1; inserts continue.
        self._vectors: list[np.ndarray] = [row for row in data]
        self._indexed_of_external = {i: i for i in range(len(data))}
        self._external_of_indexed = {i: i for i in range(len(data))}
        self._delta: dict[int, np.ndarray] = {}
        self._tombstones: set[int] = set()
        self._next_id = len(data)
        self.rebuilds = 0

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "DynamicProMIPS":
        """Build from a spec: ProMIPS parameters plus ``rebuild_threshold``,
        e.g. ``dynamic(c=0.9, rebuild_threshold=0.2)``."""
        params = dict(spec.params)
        rebuild_threshold = params.pop("rebuild_threshold", 0.2)
        return cls(
            data,
            ProMIPSParams(**params),
            rng=resolve_rng(rng),
            rebuild_threshold=rebuild_threshold,
        )

    def spec(self) -> IndexSpec:
        return IndexSpec(
            "dynamic",
            {"rebuild_threshold": self.rebuild_threshold, **asdict(self.params)},
        )

    def state(self) -> dict[str, np.ndarray]:
        """The wrapped index's state plus the mutable bookkeeping: every
        stored vector (live, delta, and tombstoned), the tombstone set, the
        delta ids, and the indexed→external id map.

        The inner index's data array is NOT stored — its rows are exactly
        ``vectors[indexed_external]``, so :meth:`from_state` reconstructs it
        instead of doubling the file's dominant payload."""
        inner = {
            f"promips_{k}": v
            for k, v in self._index.state().items()
            if k != "data"
        }
        return {
            **inner,
            "inner_m": np.array([self._index.params.m], dtype=np.int64),
            "vectors": np.stack(self._vectors),
            "tombstones": np.array(sorted(self._tombstones), dtype=np.int64),
            "delta_ids": np.array(sorted(self._delta), dtype=np.int64),
            "indexed_external": np.array(
                [self._external_of_indexed[i] for i in range(self._index.n)],
                dtype=np.int64,
            ),
            "rebuilds": np.array([self.rebuilds], dtype=np.int64),
        }

    @classmethod
    def from_state(
        cls, spec: IndexSpec, state: dict[str, np.ndarray]
    ) -> "DynamicProMIPS":
        """Reconstruct with bit-identical search behaviour.

        The rng for *future* rebuilds is freshly OS-seeded (the generator's
        position is not serialized); everything a search touches is restored
        exactly.
        """
        params = {k: v for k, v in spec.params.items() if k != "rebuild_threshold"}
        inner_spec = IndexSpec(
            "promips", {**params, "m": int(state["inner_m"][0])}
        )
        vectors = np.asarray(state["vectors"], dtype=np.float64)
        indexed_external = np.asarray(state["indexed_external"], dtype=np.int64)
        inner_state = {
            k[len("promips_"):]: v
            for k, v in state.items()
            if k.startswith("promips_")
        }
        inner_state["data"] = vectors[indexed_external]
        inner = ProMIPS.from_state(inner_spec, inner_state)

        self = cls.__new__(cls)
        self._rng = resolve_rng(None)
        self.params = ProMIPSParams(**params)
        self.rebuild_threshold = float(spec.params.get("rebuild_threshold", 0.2))
        self._index = inner
        self.dim = inner.dim
        self._vectors = [row for row in vectors]
        ext_list = indexed_external.tolist()
        self._indexed_of_external = {ext: idx for idx, ext in enumerate(ext_list)}
        self._external_of_indexed = {idx: ext for idx, ext in enumerate(ext_list)}
        self._delta = {
            int(i): vectors[i] for i in np.asarray(state["delta_ids"]).tolist()
        }
        self._tombstones = set(np.asarray(state["tombstones"]).tolist())
        self._next_id = vectors.shape[0]
        self.rebuilds = int(state["rebuilds"][0])
        return self

    # ------------------------------------------------------------- mutation

    @property
    def n_live(self) -> int:
        """Number of live (non-deleted) points."""
        return len(self._vectors) - len(self._tombstones)

    @property
    def delta_size(self) -> int:
        return len(self._delta)

    def insert(self, vector: np.ndarray) -> int:
        """Insert one point; returns its external id.  O(1) amortised."""
        vector = validate_query(vector, self.dim)
        ext_id = self._next_id
        self._next_id += 1
        self._vectors.append(vector)
        self._delta[ext_id] = vector
        if len(self._delta) > self.rebuild_threshold * max(1, self._index.n):
            self._rebuild()
        return ext_id

    def delete(self, external_id: int) -> None:
        """Tombstone a point; it disappears from all subsequent results.

        Validates *before* mutating: deleting the last live point raises
        without tombstoning it, so the structure is never left empty (and
        therefore corrupt for every subsequent search).
        """
        if not 0 <= external_id < self._next_id or external_id in self._tombstones:
            raise KeyError(f"unknown or already-deleted id {external_id}")
        if self.n_live == 1:
            raise ValueError("cannot delete the last live point")
        self._tombstones.add(external_id)
        self._delta.pop(external_id, None)

    def _rebuild(self) -> None:
        """Re-bulk-load the index over all live points."""
        live_ids = [
            i for i in range(self._next_id)
            if i not in self._tombstones and self._vectors[i] is not None
        ]
        data = np.vstack([self._vectors[i] for i in live_ids])
        self._index = ProMIPS.build(data, self.params, rng=self._rng)
        self._indexed_of_external = {ext: idx for idx, ext in enumerate(live_ids)}
        self._external_of_indexed = {idx: ext for idx, ext in enumerate(live_ids)}
        self._delta.clear()
        self.rebuilds += 1

    # --------------------------------------------------------------- search

    def search(self, query: np.ndarray, k: int = 1, **kwargs) -> SearchResult:
        """c-k-AMIP search over indexed + delta points, minus tombstones."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n_live)

        # Over-fetch from the index to absorb tombstoned answers.
        index_k = min(self._index.n, k + len(self._tombstones))
        base = self._index.search(query, k=index_k, **kwargs)

        merged: list[tuple[float, int]] = []
        for idx, score in zip(base.ids.tolist(), base.scores.tolist()):
            ext = self._external_of_indexed[idx]
            if ext not in self._tombstones:
                merged.append((score, ext))
        for ext, vec in self._delta.items():
            merged.append((float(vec @ query), ext))
        merged.sort(key=lambda t: (-t[0], t[1]))
        merged = merged[:k]

        stats = SearchStats(
            pages=base.stats.pages,
            candidates=base.stats.candidates + len(self._delta),
            extras={**base.stats.extras, "delta_scanned": len(self._delta)},
        )
        return SearchResult(
            ids=np.array([ext for _, ext in merged], dtype=np.int64),
            scores=np.array([score for score, _ in merged]),
            stats=stats,
        )

    def index_size_bytes(self) -> int:
        delta_bytes = len(self._delta) * self.dim * 8
        return self._index.index_size_bytes() + delta_bytes

    def __repr__(self) -> str:
        return (
            f"DynamicProMIPS(live={self.n_live}, delta={self.delta_size}, "
            f"tombstones={len(self._tombstones)}, rebuilds={self.rebuilds})"
        )
