"""Optimized projected dimension (§V-B).

With ``m``-bit binary codes the dataset splits into up to ``2^m`` groups.
Quick-Probe pays ``2^m (m + 1)`` to compute group lower bounds plus ``n/2^m``
to scan the one group it lands in, so the paper minimizes

    ``f(m) = 2^m (m + 1) + n / 2^m``

over integer ``m``.  ``f`` is strictly convex in ``m`` (its second derivative
is positive), so the integer minimiser is unique up to ties.  The paper
reports m = 6 for Netflix (n = 17 770) and P53 (n = 31 420), m = 8 for Yahoo
(n = 624 961) and m = 10 for Sift (n = 11 164 866); this function reproduces
exactly those values at those ``n``.
"""

from __future__ import annotations

__all__ = ["quickprobe_cost", "optimized_projection_dim"]


def quickprobe_cost(m: int, n: int) -> float:
    """The paper's cost model ``f(m) = 2^m (m + 1) + n / 2^m``."""
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    groups = 2.0**m
    return groups * (m + 1) + n / groups


def optimized_projection_dim(n: int, m_min: int = 2, m_max: int = 24) -> int:
    """``argmin_m f(m)`` over integers in ``[m_min, m_max]``.

    Args:
        n: dataset size.
        m_min: smallest admissible m (2 keeps the chi-square machinery
            non-degenerate).
        m_max: cap to keep the group table (``2^m`` entries) in memory.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 1 <= m_min <= m_max:
        raise ValueError(f"need 1 <= m_min <= m_max, got {m_min}..{m_max}")
    best_m = m_min
    best_cost = quickprobe_cost(m_min, n)
    for m in range(m_min + 1, m_max + 1):
        cost = quickprobe_cost(m, n)
        if cost < best_cost:
            best_cost = cost
            best_m = m
    return best_m
