"""Save/load a built index of **any** registered method.

The pre-process (projections, hash tables, k-means, codebooks, disk layout)
is the expensive part of the lifecycle; persisting its outputs lets a
service restart without re-building.  The format is a single ``.npz`` file
holding plain arrays plus a JSON-encoded envelope — no pickling, so files
are portable across Python versions and safe to load from untrusted
storage.

The envelope records the registered method name and its round-trippable
:class:`repro.spec.IndexSpec`; :func:`load_index` dispatches through the
method registry to the class's ``from_state``, so every method (ProMIPS,
Dynamic, H2-ALSH, Range-LSH, PQ-Based, Exact, SimHash) reloads with
bit-identical search behaviour.  Format version 1 (the ProMIPS-only layout
of earlier releases) still loads.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.spec import IndexSpec, get_method

__all__ = [
    "save_index",
    "load_index",
    "inspect_index",
    "pack_substate",
    "unpack_substate",
]

_FORMAT_VERSION = 2
_STATE_PREFIX = "state__"


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)


def _decode_meta(blob: np.ndarray) -> dict:
    return json.loads(bytes(np.asarray(blob).tobytes()).decode())


def save_index(index, path: str | Path, extra_meta: dict | None = None) -> Path:
    """Serialize any registered built index to ``path`` (a ``.npz`` file).

    Args:
        index: a built index implementing the registry contract
            (``spec()`` / ``state()``, see :mod:`repro.spec`).
        path: target file; the ``.npz`` suffix is ensured.
        extra_meta: optional JSON-serializable annotations stored in the
            envelope (e.g. the CLI records the dataset a ``build`` used so
            ``query`` can regenerate the workload); read back with
            :func:`inspect_index`.

    Returns:
        The path written.
    """
    method = getattr(type(index), "method_name", None)
    if method is None or not (hasattr(index, "spec") and hasattr(index, "state")):
        raise TypeError(
            f"{type(index).__name__} is not a registered method "
            "(missing @register_method / spec() / state())"
        )
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    meta = {
        "format_version": _FORMAT_VERSION,
        "method": method,
        "spec": index.spec().to_dict(),
        "extras": extra_meta or {},
    }
    state = index.state()
    bad = [k for k in state if not isinstance(state[k], np.ndarray)]
    if bad:
        raise TypeError(f"state() of {method!r} returned non-array entries: {bad}")
    np.savez_compressed(
        path,
        __meta__=_encode_meta(meta),
        **{f"{_STATE_PREFIX}{k}": v for k, v in state.items()},
    )
    return path


def pack_substate(index, prefix: str) -> dict[str, np.ndarray]:
    """Flatten a built index into a prefixed *sub-envelope* of plain arrays.

    Composite indexes (e.g. :class:`repro.core.sharded.ShardedIndex`) nest
    other registered methods inside their own ``state()``.  This helper
    serialises one inner index the same way :func:`save_index` would — a
    JSON meta blob naming the method and its spec, plus its state arrays —
    but into a flat dict under ``prefix`` instead of a file, so the composite
    still persists through the single v2 ``.npz`` envelope.

    Args:
        index: a built index implementing the registry contract.
        prefix: key prefix for this sub-envelope; end it with a delimiter
            (e.g. ``"shard0_"``) so prefixes cannot shadow each other.

    Returns:
        ``{f"{prefix}__meta__": ..., f"{prefix}state__{k}": ...}`` arrays,
        invertible with :func:`unpack_substate`.
    """
    method = getattr(type(index), "method_name", None)
    if method is None or not (hasattr(index, "spec") and hasattr(index, "state")):
        raise TypeError(
            f"{type(index).__name__} is not a registered method "
            "(missing @register_method / spec() / state())"
        )
    meta = {
        "format_version": _FORMAT_VERSION,
        "method": method,
        "spec": index.spec().to_dict(),
    }
    out: dict[str, np.ndarray] = {f"{prefix}__meta__": _encode_meta(meta)}
    for key, value in index.state().items():
        if not isinstance(value, np.ndarray):
            raise TypeError(f"state() of {method!r} returned non-array entry {key!r}")
        out[f"{prefix}{_STATE_PREFIX}{key}"] = value
    return out


def unpack_substate(state: dict[str, np.ndarray], prefix: str):
    """Reconstruct an index packed by :func:`pack_substate` under ``prefix``."""
    meta_key = f"{prefix}__meta__"
    if meta_key not in state:
        raise ValueError(f"no sub-envelope under prefix {prefix!r}")
    meta = _decode_meta(state[meta_key])
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported sub-envelope format {meta.get('format_version')!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    spec = IndexSpec.from_dict(meta["spec"])
    body_prefix = f"{prefix}{_STATE_PREFIX}"
    sub_state = {
        key[len(body_prefix):]: np.asarray(value)
        for key, value in state.items()
        if key.startswith(body_prefix)
    }
    return get_method(meta["method"]).from_state(spec, sub_state)


def load_index(path: str | Path):
    """Reconstruct an index saved by :func:`save_index`.

    The envelope names the method; the registered class's ``from_state``
    rebuilds the index, so the caller does not need to know what was saved.
    """
    path = Path(path)
    with np.load(path) as blob:
        if "__meta__" in blob.files:
            meta = _decode_meta(blob["__meta__"])
            if meta.get("format_version") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported index format {meta.get('format_version')!r} "
                    f"(expected {_FORMAT_VERSION})"
                )
            spec = IndexSpec.from_dict(meta["spec"])
            state = {
                key[len(_STATE_PREFIX):]: np.asarray(blob[key])
                for key in blob.files
                if key.startswith(_STATE_PREFIX)
            }
            cls = get_method(meta["method"])
            return cls.from_state(spec, state)
        if "meta" in blob.files:
            return _load_v1(blob)
        raise ValueError(f"{path} is not a saved index (no envelope found)")


def inspect_index(path: str | Path) -> dict:
    """The envelope of a saved index without reconstructing it.

    Returns a dict with ``format_version``, ``method``, ``spec`` (as a
    dict), and ``extras``.
    """
    path = Path(path)
    with np.load(path) as blob:
        if "__meta__" in blob.files:
            return _decode_meta(blob["__meta__"])
        if "meta" in blob.files:
            meta = _decode_meta(blob["meta"])
            return {
                "format_version": meta.get("format_version"),
                "method": "promips",
                "spec": {"method": "promips", "params": meta.get("params", {})},
                "extras": {},
            }
    raise ValueError(f"{path} is not a saved index (no envelope found)")


def _load_v1(blob) -> "object":
    """Load the ProMIPS-only format version 1 of earlier releases."""
    from repro.core.promips import ProMIPS

    meta = _decode_meta(blob["meta"])
    if meta.get("format_version") != 1:
        raise ValueError(
            f"unsupported index format {meta.get('format_version')!r} "
            f"(expected {_FORMAT_VERSION} or the legacy 1)"
        )
    spec = IndexSpec("promips", meta["params"])
    state = {
        "data": np.asarray(blob["data"], dtype=np.float64),
        "projection_matrix": np.asarray(blob["projection_matrix"], dtype=np.float64),
        **{key: np.asarray(blob[key]) for key in blob.files if key.startswith("ring_")},
    }
    return ProMIPS.from_state(spec, state)
