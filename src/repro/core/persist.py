"""Save/load a built ProMIPS index.

The pre-process (projection, grouping, two k-means stages, disk layout) is
the expensive part of the lifecycle; persisting its outputs lets a service
restart without re-building.  The format is a single ``.npz`` file holding
plain arrays plus a JSON-encoded parameter blob — no pickling, so files are
portable across Python versions and safe to load from untrusted storage.

On load the cheap derivations (projected points, binary-code groups) are
recomputed from the stored projection matrix, while both k-means stages are
restored from the stored geometry via :meth:`RingIDistance.from_state`.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.binary_codes import BinaryCodeGroups
from repro.core.projection import StableProjection
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.core.quickprobe import QuickProbe
from repro.index.ring_idistance import RingIDistance
from repro.storage.pagefile import VectorStore

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: ProMIPS, path: str | Path) -> Path:
    """Serialize a built index to ``path`` (a ``.npz`` file).

    Returns the path written (with the ``.npz`` suffix ensured).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    meta = {
        "format_version": _FORMAT_VERSION,
        "params": asdict(index.params),
    }
    ring_state = {f"ring_{k}": v for k, v in index.ring.state().items()}
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        data=index._data,
        projection_matrix=index.projection.matrix,
        **ring_state,
    )
    return path


def load_index(path: str | Path) -> ProMIPS:
    """Reconstruct a :class:`ProMIPS` index saved by :func:`save_index`."""
    path = Path(path)
    with np.load(path) as blob:
        meta = json.loads(bytes(blob["meta"].tobytes()).decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {meta.get('format_version')!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        params = ProMIPSParams(**meta["params"])
        data = np.asarray(blob["data"], dtype=np.float64)
        matrix = np.asarray(blob["projection_matrix"], dtype=np.float64)
        ring_state = {
            key[len("ring_"):]: blob[key] for key in blob.files
            if key.startswith("ring_")
        }

    projection = StableProjection.__new__(StableProjection)
    projection.dim = data.shape[1]
    projection.proj_dim = matrix.shape[0]
    projection._matrix = matrix

    projected = projection.project(data)
    l1_norms = np.abs(data).sum(axis=1)
    groups = BinaryCodeGroups(projected, l1_norms)
    quickprobe = QuickProbe(groups)
    ring = RingIDistance.from_state(projected, ring_state, order=params.tree_order)
    orig_store = VectorStore(
        data, params.page_size, layout_order=ring.layout_order, label="promips-orig"
    )
    proj_store = VectorStore(
        projected, params.page_size, layout_order=ring.layout_order,
        label="promips-proj",
    )
    return ProMIPS(
        data, params, projection, projected, groups, quickprobe, ring,
        orig_store, proj_store, l1_norms=l1_norms,
    )
