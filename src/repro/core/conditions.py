"""The probability-guaranteed searching conditions (§IV) and the
compensation radius of MIP-Search-II (§V-A).

Condition A (Formula 1, deterministic — Theorem 1):

    ``‖oM‖² + ‖q‖² − 2⟨oi, q⟩ / c ≤ 0``

Once any candidate's inner product makes this quantity non-positive, a
c-AMIP point is *certain* to be among the candidates already seen, because
``‖o*‖² + ‖q‖² − 2⟨o*, q⟩ = dis²(o*, q) ≥ 0`` and ``‖oM‖ ≥ ‖o*‖``.

Condition B (Formula 2, probabilistic — Theorem 2):

    ``Ψm( dis²(P(oi), P(q)) / (‖oM‖² + ‖q‖² − 2⟨omax, q⟩/c) ) ≥ p``

where ``Ψm`` is the chi-square CDF with ``m`` degrees of freedom (Lemma 2)
and ``omax`` the best candidate so far.  When it holds, the probability that
the true MIP point lies beyond the current search frontier *and* no c-AMIP
point has been collected is at most ``1 − p``.

For c-k-AMIP search both conditions substitute the current k-th best
candidate ``ok_max`` for ``omax`` (end of §IV).
"""

from __future__ import annotations

import math

from repro.stats.chi2 import ChiSquare

__all__ = [
    "condition_a_holds",
    "guarantee_denominator",
    "condition_b_holds",
    "compensation_radius",
]


def condition_a_holds(max_norm_sq: float, q_norm_sq: float, ip: float, c: float) -> bool:
    """Formula 1 with candidate inner product ``ip`` (``⟨oi, q⟩``)."""
    if not 0.0 < c < 1.0:
        raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {c}")
    if math.isinf(ip) and ip < 0:
        return False  # no candidate yet
    return max_norm_sq + q_norm_sq - 2.0 * ip / c <= 0.0


def guarantee_denominator(
    max_norm_sq: float, q_norm_sq: float, ip_max: float, c: float
) -> float:
    """``‖oM‖² + ‖q‖² − 2⟨omax, q⟩/c`` — the scale Condition B divides by.

    ``ip_max = −inf`` (no candidate yet) yields ``+inf``: Condition B can
    never fire before the first candidate is collected.
    """
    if not 0.0 < c < 1.0:
        raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {c}")
    if math.isinf(ip_max) and ip_max < 0:
        return math.inf
    return max_norm_sq + q_norm_sq - 2.0 * ip_max / c


def condition_b_holds(
    proj_dist_sq: float, denominator: float, chi2: ChiSquare, p: float
) -> bool:
    """Formula 2, given a pre-computed denominator.

    A non-positive denominator means Condition A already holds for ``omax``
    itself, which subsumes Condition B; we report True in that case.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"guaranteed probability must satisfy 0 < p < 1, got {p}")
    if proj_dist_sq < 0.0:
        raise ValueError(f"squared distance must be non-negative, got {proj_dist_sq}")
    if denominator <= 0.0:
        return True
    if math.isinf(denominator):
        return False
    return chi2.cdf(proj_dist_sq / denominator) >= p


def compensation_radius(denominator: float, chi2: ChiSquare, p: float) -> float:
    """``r' = sqrt(Ψm⁻¹(p) · (‖oM‖² + ‖q‖² − 2⟨omax,q⟩/c))`` (§V-A).

    This is the smallest projected-space radius at which Condition B is
    satisfied for the *current* ``omax``; MIP-Search-II extends its range
    search to ``r'`` when the Quick-Probe estimate fell short.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"guaranteed probability must satisfy 0 < p < 1, got {p}")
    if denominator <= 0.0:
        return 0.0
    if math.isinf(denominator):
        raise ValueError("compensation radius undefined without a candidate")
    return math.sqrt(chi2.ppf(p) * denominator)
