"""Index substrate: B+-tree and the two iDistance partition patterns."""

from repro.index.bptree import BPlusTree, LeafCursor
from repro.index.idistance import IDistanceIndex
from repro.index.ring_idistance import RingIDistance, SubPartition

__all__ = [
    "BPlusTree",
    "LeafCursor",
    "IDistanceIndex",
    "RingIDistance",
    "SubPartition",
]
