"""Standard iDistance (Jagadish et al., TODS 2005) — the Fig. 1 pattern.

The whole space is divided into ``kp`` k-means partitions centred at
reference points; each point is mapped to the one-dimensional key
``i·C + dis(p, O_i)`` and keys are organised in a single B+-tree.  A range
query inspects, per partition, the key interval that the query sphere can
reach.

ProMIPS replaces this pattern with the ring + sub-partition layout of
:mod:`repro.index.ring_idistance`; the standard variant is kept for the
ablation benchmark that quantifies what the new pattern buys.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.kmeans import kmeans
from repro.index.bptree import BPlusTree
from repro.storage.pagefile import AccessCounter, VectorReader

__all__ = ["IDistanceIndex"]


class IDistanceIndex:
    """Classic iDistance over an in-memory point set with paged accounting.

    Args:
        points: ``(n, m)`` array of (projected) points to index.
        n_partitions: number of k-means reference partitions (``kp``).
        rng: generator used for k-means seeding.
        order: B+-tree node fanout.
    """

    def __init__(
        self,
        points: np.ndarray,
        n_partitions: int,
        rng: np.random.Generator,
        order: int = 64,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty 2-D array, got {points.shape}")
        self._points = points
        self.n, self.dim = points.shape

        clustering = kmeans(points, n_partitions, rng)
        self.centers = clustering.centers
        self.radii = clustering.radii
        self.kp = clustering.n_clusters

        dist_to_center = np.linalg.norm(
            points - self.centers[clustering.labels], axis=1
        )
        # C separates partition key ranges; any value above the largest
        # in-partition distance works.
        self.C = float(self.radii.max()) * 1.000001 + 1.0
        keys = clustering.labels * self.C + dist_to_center

        sort_idx = np.argsort(keys, kind="stable")
        self.layout_order = sort_idx.astype(np.int64)
        self._tree = BPlusTree.bulk_load(
            [(float(keys[i]), int(i)) for i in sort_idx], order=order
        )
        self._labels = clustering.labels
        self._dist_to_center = dist_to_center

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    def index_size_bytes(self, page_size: int) -> int:
        """B+-tree footprint plus the partition metadata."""
        meta = self.centers.nbytes + self.radii.nbytes
        return self._tree.size_bytes(page_size) + meta

    def range_search(
        self,
        query: np.ndarray,
        radius: float,
        tree_counter: AccessCounter | None = None,
        reader: VectorReader | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ids and distances of all indexed points within ``radius`` of ``query``.

        Every candidate in the touched key intervals is fetched (charging
        pages through ``reader`` when given) and verified — this is exactly
        the "large unnecessary searching area" §VI criticises.
        """
        query = np.asarray(query, dtype=np.float64)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        found_ids: list[int] = []
        found_dists: list[float] = []
        center_dists = np.linalg.norm(self.centers - query[None, :], axis=1)
        for i in range(self.kp):
            if center_dists[i] - radius > self.radii[i]:
                continue  # sphere does not reach this partition
            # The ±ulp widening keeps boundary keys (computed in a different
            # expression order at build time) inside the scan; every fetched
            # point is distance-verified anyway.
            slack = 1e-9 * (1.0 + self.C * i)
            lo = self.C * i + max(0.0, center_dists[i] - radius) - slack
            hi = self.C * i + min(self.radii[i], center_dists[i] + radius) + slack
            for _, pid in self._tree.range(lo, hi, counter=tree_counter):
                vec = reader.get(pid) if reader is not None else self._points[pid]
                dist = float(np.linalg.norm(vec - query))
                if dist <= radius:
                    found_ids.append(pid)
                    found_dists.append(dist)
        return (
            np.asarray(found_ids, dtype=np.int64),
            np.asarray(found_dists, dtype=np.float64),
        )

    def knn(
        self,
        query: np.ndarray,
        k: int,
        tree_counter: AccessCounter | None = None,
        reader: VectorReader | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k nearest neighbours by iteratively growing the search radius."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, self.n)
        radius = max(float(self.radii.max()) / 16.0, 1e-12)
        while True:
            ids, dists = self.range_search(query, radius, tree_counter, reader)
            if len(ids) >= k:
                order = np.argsort(dists, kind="stable")[:k]
                if dists[order[-1]] <= radius or len(ids) == self.n:
                    return ids[order], dists[order]
            if radius > 4.0 * (self.C * self.kp + 1.0) and len(ids) == self.n:
                order = np.argsort(dists, kind="stable")[:k]
                return ids[order], dists[order]
            radius *= 2.0
            if not math.isfinite(radius):  # pragma: no cover - defensive
                raise RuntimeError("knn radius diverged")
