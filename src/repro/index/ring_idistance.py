"""iDistance with the paper's ring + sub-partition pattern (§VI, Fig. 3).

The pattern differs from standard iDistance in two ways:

1. **Quantized ring keys** (Formula 6): ``I(p) = ⌊i·C + dis(p, O_i)/ε⌋`` with
   ``ε = r_avg / Nkey`` derived from the average cluster radius, so each
   partition is sliced into rings of equal width and one key indexes a whole
   ring instead of a single point.
2. **Sub-partitions**: the points of a ring are clustered again with
   ``ksp``-means; each sub-partition keeps a pivot and radius, so a range
   query can discard whole sub-partitions whose bounding sphere misses the
   query sphere, and the points of a sub-partition are laid out contiguously
   on disk (sequential reads instead of random ones).

The B+-tree maps each ring key to the descriptors of its sub-partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.kmeans import kmeans
from repro.index.bptree import BPlusTree
from repro.storage.pagefile import AccessCounter, VectorReader

__all__ = ["SubPartition", "RingIDistance"]


@dataclass(frozen=True)
class SubPartition:
    """Descriptor of one sub-partition (a cluster inside a ring).

    Attributes:
        key: ring key this sub-partition belongs to (Formula 6).
        pivot: cluster centre in the projected space.
        radius: max distance of a member from the pivot.
        member_ids: point ids, stored contiguously on disk in this order.
    """

    key: int
    pivot: np.ndarray
    radius: float
    member_ids: np.ndarray


class RingIDistance:
    """The paper's iDistance variant (Algorithm 4).

    Args:
        points: ``(n, m)`` projected points to index.
        kp: number of first-stage partitions (paper default 5).
        n_key: rings per average radius, ``Nkey`` (paper default 40).
        ksp: sub-partitions per ring (paper default 10).
        rng: generator for the two k-means stages.
        epsilon: ring width override; default ``r_avg / n_key`` as in §VI.
        order: B+-tree fanout.
    """

    def __init__(
        self,
        points: np.ndarray,
        kp: int,
        n_key: int,
        ksp: int,
        rng: np.random.Generator,
        epsilon: float | None = None,
        order: int = 64,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty 2-D array, got {points.shape}")
        if n_key <= 0:
            raise ValueError(f"n_key must be positive, got {n_key}")
        self._points = points
        self.n, self.dim = points.shape
        self.n_key = int(n_key)
        self.ksp = int(ksp)

        clustering = kmeans(points, kp, rng)
        self.centers = clustering.centers
        self.kp = clustering.n_clusters

        dist_to_center = np.linalg.norm(points - self.centers[clustering.labels], axis=1)
        r_avg = float(clustering.radii.mean())
        if epsilon is None:
            epsilon = r_avg / n_key if r_avg > 0 else 1.0
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

        rings = np.floor(dist_to_center / self.epsilon).astype(np.int64)
        # C separates key ranges of different partitions (Formula 6's constant).
        self.C = int(rings.max()) + 2
        self.max_ring = np.full(self.kp, -1, dtype=np.int64)
        for i in range(self.kp):
            members = clustering.labels == i
            if members.any():
                self.max_ring[i] = int(rings[members].max())

        # Second clustering stage: ksp-means inside every (partition, ring).
        self.subpartitions: list[SubPartition] = []
        layout: list[np.ndarray] = []
        group_order = np.lexsort((rings, clustering.labels))
        boundaries = np.flatnonzero(
            np.diff(clustering.labels[group_order]) != 0
        ) + 1
        ring_change = np.flatnonzero(np.diff(rings[group_order]) != 0) + 1
        cuts = np.unique(np.concatenate(([0], boundaries, ring_change, [self.n])))
        tree_items: list[tuple[int, int]] = []
        for start, end in zip(cuts[:-1], cuts[1:]):
            member_idx = group_order[start:end]
            part = int(clustering.labels[member_idx[0]])
            ring = int(rings[member_idx[0]])
            key = part * self.C + ring
            sub = kmeans(points[member_idx], ksp, rng)
            for j in range(sub.n_clusters):
                local = sub.cluster_members(j)
                if local.size == 0:
                    continue
                ids = member_idx[local].astype(np.int64)
                sp = SubPartition(
                    key=key,
                    pivot=sub.centers[j],
                    radius=float(sub.radii[j]),
                    member_ids=ids,
                )
                tree_items.append((key, len(self.subpartitions)))
                self.subpartitions.append(sp)
                layout.append(ids)

        self.layout_order = np.concatenate(layout).astype(np.int64)
        tree_items.sort(key=lambda kv: kv[0])
        self._tree = BPlusTree.bulk_load(tree_items, order=order)
        self._cache_subpartition_arrays()

    def _cache_subpartition_arrays(self) -> None:
        """Vectorized views of the descriptors (hot path of range search)."""
        self._sp_pivots = np.stack([sp.pivot for sp in self.subpartitions])
        self._sp_radii = np.array([sp.radius for sp in self.subpartitions])

    # -------------------------------------------------------- persistence

    def state(self) -> dict[str, np.ndarray]:
        """Geometry of the index as plain arrays (for serialization).

        Together with the projected points this is sufficient to rebuild the
        index without re-running either k-means stage.
        """
        pivots = np.stack([sp.pivot for sp in self.subpartitions])
        return {
            "centers": self.centers,
            "epsilon": np.array([self.epsilon]),
            "C": np.array([self.C], dtype=np.int64),
            "n_key": np.array([self.n_key], dtype=np.int64),
            "ksp": np.array([self.ksp], dtype=np.int64),
            "max_ring": self.max_ring,
            "sp_keys": np.array([sp.key for sp in self.subpartitions], dtype=np.int64),
            "sp_pivots": pivots,
            "sp_radii": np.array([sp.radius for sp in self.subpartitions]),
            "sp_offsets": np.cumsum(
                [0] + [sp.member_ids.size for sp in self.subpartitions]
            ).astype(np.int64),
            "sp_members": np.concatenate(
                [sp.member_ids for sp in self.subpartitions]
            ).astype(np.int64),
            "layout_order": self.layout_order,
        }

    @classmethod
    def from_state(
        cls, points: np.ndarray, state: dict[str, np.ndarray], order: int = 64
    ) -> "RingIDistance":
        """Rebuild an index from :meth:`state` output (no clustering runs)."""
        self = object.__new__(cls)
        points = np.asarray(points, dtype=np.float64)
        self._points = points
        self.n, self.dim = points.shape
        self.centers = np.asarray(state["centers"], dtype=np.float64)
        self.kp = self.centers.shape[0]
        self.epsilon = float(state["epsilon"][0])
        self.C = int(state["C"][0])
        self.n_key = int(state["n_key"][0])
        self.ksp = int(state["ksp"][0])
        self.max_ring = np.asarray(state["max_ring"], dtype=np.int64)

        offsets = state["sp_offsets"]
        members = state["sp_members"]
        self.subpartitions = []
        tree_items: list[tuple[int, int]] = []
        for i, key in enumerate(state["sp_keys"].tolist()):
            ids = members[offsets[i] : offsets[i + 1]]
            self.subpartitions.append(
                SubPartition(
                    key=int(key),
                    pivot=np.asarray(state["sp_pivots"][i], dtype=np.float64),
                    radius=float(state["sp_radii"][i]),
                    member_ids=np.asarray(ids, dtype=np.int64),
                )
            )
            tree_items.append((int(key), i))
        self.layout_order = np.asarray(state["layout_order"], dtype=np.int64)
        tree_items.sort(key=lambda kv: kv[0])
        self._tree = BPlusTree.bulk_load(tree_items, order=order)
        self._cache_subpartition_arrays()
        return self

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    @property
    def n_subpartitions(self) -> int:
        return len(self.subpartitions)

    def index_size_bytes(self, page_size: int) -> int:
        """B+-tree nodes plus sub-partition descriptors (pivot, radius, extent)."""
        descriptor_bytes = sum(
            sp.pivot.nbytes + 8 + 16 for sp in self.subpartitions
        )
        meta = self.centers.nbytes + self.max_ring.nbytes
        return self._tree.size_bytes(page_size) + descriptor_bytes + meta

    def selectivity(self) -> float:
        """Observed ``µ = 1 / (kp·Nkey·ksp)`` analogue: mean sub-partition fraction."""
        if not self.subpartitions:
            return 0.0
        sizes = np.array([sp.member_ids.size for sp in self.subpartitions])
        return float(sizes.mean()) / self.n

    # ------------------------------------------------------------------ search

    def _candidate_subpartitions(
        self,
        query: np.ndarray,
        radius: float,
        tree_counter: AccessCounter | None,
    ) -> list[SubPartition]:
        """Sub-partitions whose bounding sphere intersects the query sphere."""
        center_dists = np.linalg.norm(self.centers - query[None, :], axis=1)
        touched: list[int] = []
        for i in range(self.kp):
            if self.max_ring[i] < 0:
                continue
            lo_ring = max(0, int((center_dists[i] - radius) / self.epsilon))
            # +1 guards the floor against a one-ulp undershoot of the ring
            # boundary; sub-partition sphere tests discard any excess.
            hi_ring = int((center_dists[i] + radius) / self.epsilon) + 1
            if lo_ring > self.max_ring[i]:
                continue
            hi_ring = min(hi_ring, int(self.max_ring[i]))
            lo_key = i * self.C + lo_ring
            hi_key = i * self.C + hi_ring
            for _, sp_idx in self._tree.range(lo_key, hi_key, counter=tree_counter):
                touched.append(sp_idx)
        if not touched:
            return []
        # One vectorized sphere-intersection test over all touched
        # descriptors replaces per-descriptor norm computations.
        sel = np.asarray(touched, dtype=np.int64)
        pivot_dists = np.linalg.norm(self._sp_pivots[sel] - query[None, :], axis=1)
        keep = pivot_dists <= radius + self._sp_radii[sel]
        return [self.subpartitions[i] for i in sel[keep].tolist()]

    def range_search(
        self,
        query: np.ndarray,
        radius: float,
        tree_counter: AccessCounter | None = None,
        reader: VectorReader | None = None,
        min_radius: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ids/distances of points with ``min_radius < dis(P(o), P(q)) <= radius``.

        ``min_radius > 0`` turns the search into an annulus scan, used by the
        compensation pass of MIP-Search-II so already-verified points are not
        reported twice.  Results are sorted by ascending distance, matching
        the order Algorithm 3 consumes them in.
        """
        query = np.asarray(query, dtype=np.float64)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        chosen = self._candidate_subpartitions(query, radius, tree_counter)
        if not chosen:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        # Fetch every chosen sub-partition in one batched read: pages are
        # charged identically (the reader dedups) and the distance test
        # vectorizes across the whole candidate set.
        ids = (
            chosen[0].member_ids
            if len(chosen) == 1
            else np.concatenate([sp.member_ids for sp in chosen])
        )
        vecs = reader.get_many(ids) if reader is not None else self._points[ids]
        dists = np.linalg.norm(vecs - query[None, :], axis=1)
        mask = (dists <= radius) & (dists > min_radius)
        ids = ids[mask]
        dists = dists[mask]
        order = np.argsort(dists, kind="stable")
        return ids[order], dists[order]

    def knn_iterate(
        self,
        query: np.ndarray,
        tree_counter: AccessCounter | None = None,
        reader: VectorReader | None = None,
        initial_radius: float | None = None,
    ):
        """Yield ``(point_id, distance)`` in strictly non-decreasing distance order.

        Implements the incremental NN search over this index that Algorithm 1
        (MIP-Search-I) requires: the radius doubles until the dataset is
        exhausted, and points are only emitted once their distance is covered
        by a completed range search.
        """
        query = np.asarray(query, dtype=np.float64)
        radius = initial_radius if initial_radius is not None else max(self.epsilon, 1e-12)
        emitted = 0
        # The annulus lower bound is strict; -1 keeps distance-0 points in
        # the first round.
        prev_radius = -1.0
        while emitted < self.n:
            ids, dists = self.range_search(
                query, radius, tree_counter, reader, min_radius=prev_radius
            )
            for pid, dist in zip(ids.tolist(), dists.tolist()):
                yield pid, dist
                emitted += 1
            prev_radius = radius
            radius *= 2.0
