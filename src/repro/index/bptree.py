"""B+-tree built from scratch, with per-operation page accounting.

iDistance (§II-C / §VI of the paper) organises one-dimensional keys in a
single B+-tree — the "lightweight index" that replaces the hundreds of hash
tables LSH methods need.  This implementation supports:

* bulk loading from key-sorted items (how every index here is constructed);
* point lookup of a key;
* inclusive range scans over ``[lo, hi]``;
* bidirectional leaf cursors (needed by incremental iDistance kNN search);
* page accounting — every node visited counts as one page read against an
  :class:`repro.storage.AccessCounter`.

Keys may be ints or floats; duplicate keys are allowed and kept in insertion
order within the key.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.storage.pagefile import AccessCounter

__all__ = ["BPlusTree", "LeafCursor"]

DEFAULT_ORDER = 64


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self, keys: list, values: list) -> None:
        self.keys = keys
        self.values = values
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self, keys: list, children: list) -> None:
        # keys[i] is the smallest key reachable under children[i+1].
        self.keys = keys
        self.children = children


def _bisect_left(keys: list, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: list, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class LeafCursor:
    """Bidirectional cursor over the leaf chain of a :class:`BPlusTree`.

    Crossing into a leaf charges one page to the counter; stepping within a
    leaf is free.  ``key``/``value`` return the current entry; ``valid`` is
    False once the cursor walks off either end.
    """

    def __init__(self, leaf: _Leaf | None, index: int, counter: AccessCounter | None) -> None:
        self._leaf = leaf
        self._index = index
        self._counter = counter
        if leaf is not None and counter is not None:
            counter.add()

    @property
    def valid(self) -> bool:
        return self._leaf is not None and 0 <= self._index < len(self._leaf.keys)

    @property
    def key(self):
        if not self.valid:
            raise IndexError("cursor is exhausted")
        return self._leaf.keys[self._index]

    @property
    def value(self):
        if not self.valid:
            raise IndexError("cursor is exhausted")
        return self._leaf.values[self._index]

    def advance(self) -> bool:
        """Move one entry forward; returns the new validity."""
        if self._leaf is None:
            return False
        self._index += 1
        if self._index >= len(self._leaf.keys):
            self._leaf = self._leaf.next
            self._index = 0
            if self._leaf is not None and self._counter is not None:
                self._counter.add()
        return self.valid

    def retreat(self) -> bool:
        """Move one entry backward; returns the new validity."""
        if self._leaf is None:
            return False
        self._index -= 1
        if self._index < 0:
            self._leaf = self._leaf.prev
            if self._leaf is not None:
                self._index = len(self._leaf.keys) - 1
                if self._counter is not None:
                    self._counter.add()
        return self.valid


class BPlusTree:
    """Bulk-loaded B+-tree with duplicate-key support and page accounting."""

    def __init__(self, root, height: int, n_entries: int, n_nodes: int, order: int,
                 first_leaf: _Leaf | None) -> None:
        self._root = root
        self.height = height
        self.n_entries = n_entries
        self.n_nodes = n_nodes
        self.order = order
        self._first_leaf = first_leaf

    @classmethod
    def bulk_load(cls, items: Iterable[tuple[Any, Any]], order: int = DEFAULT_ORDER) -> "BPlusTree":
        """Build a tree from ``(key, value)`` pairs sorted ascending by key.

        Args:
            items: key-sorted pairs; duplicates allowed.
            order: max entries per node (= page fanout).
        """
        if order < 2:
            raise ValueError(f"order must be >= 2, got {order}")
        pairs = list(items)
        for i in range(1, len(pairs)):
            if pairs[i][0] < pairs[i - 1][0]:
                raise ValueError("bulk_load requires items sorted by key")

        if not pairs:
            empty = _Leaf([], [])
            return cls(empty, height=1, n_entries=0, n_nodes=1, order=order, first_leaf=empty)

        # Build the leaf level.
        leaves: list[_Leaf] = []
        for start in range(0, len(pairs), order):
            chunk = pairs[start : start + order]
            leaves.append(_Leaf([k for k, _ in chunk], [v for _, v in chunk]))
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
            right.prev = left

        # Build internal levels bottom-up.
        n_nodes = len(leaves)
        level: list = leaves
        level_min_keys = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level) > 1:
            parents: list[_Internal] = []
            parent_min_keys: list = []
            for start in range(0, len(level), order):
                children = level[start : start + order]
                child_mins = level_min_keys[start : start + order]
                parents.append(_Internal(child_mins[1:], children))
                parent_min_keys.append(child_mins[0])
            n_nodes += len(parents)
            level = parents
            level_min_keys = parent_min_keys
            height += 1

        return cls(level[0], height=height, n_entries=len(pairs), n_nodes=n_nodes,
                   order=order, first_leaf=leaves[0])

    # ------------------------------------------------------------------ I/O

    def size_bytes(self, page_size: int) -> int:
        """Index size if each node occupies one page."""
        return self.n_nodes * page_size

    # -------------------------------------------------------------- descent

    def _descend(self, key, counter: AccessCounter | None) -> _Leaf:
        """Walk to the leaf holding the *first* entry with ``entry.key >= key``.

        Uses left-biased descent so that runs of duplicate keys spanning
        several leaves are approached from their first occurrence; the
        forward leaf walk of ``range``/``cursor_at`` absorbs the (at most
        one-leaf) undershoot.
        """
        node = self._root
        while isinstance(node, _Internal):
            if counter is not None:
                counter.add()
            node = node.children[_bisect_left(node.keys, key)]
        return node

    # -------------------------------------------------------------- queries

    def search(self, key, counter: AccessCounter | None = None) -> list:
        """All values stored under ``key`` (may span leaves)."""
        results: list = []
        for k, v in self.range(key, key, counter=counter):
            results.append(v)
        return results

    def range(self, lo, hi, counter: AccessCounter | None = None) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi`` in key order."""
        if hi < lo:
            return
        leaf = self._descend(lo, counter)
        if counter is not None:
            counter.add()  # the first leaf
        index = _bisect_left(leaf.keys, lo)
        while True:
            if index >= len(leaf.keys):
                leaf = leaf.next
                if leaf is None:
                    return
                if counter is not None:
                    counter.add()
                index = 0
                continue
            key = leaf.keys[index]
            if key > hi:
                return
            yield key, leaf.values[index]
            index += 1

    def cursor_at(self, key, counter: AccessCounter | None = None) -> LeafCursor:
        """Cursor positioned at the first entry with ``entry.key >= key``.

        If every key is smaller, the cursor lands one past the last entry of
        the final leaf (``valid`` is False but ``retreat`` recovers it).
        """
        leaf = self._descend(key, counter)
        index = _bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) and leaf.next is not None:
            leaf = leaf.next
            index = 0
        return LeafCursor(leaf, index, counter)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order (no page accounting; used by tests)."""
        leaf = self._first_leaf
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def __len__(self) -> int:
        return self.n_entries

    def __repr__(self) -> str:
        return (
            f"BPlusTree(entries={self.n_entries}, nodes={self.n_nodes}, "
            f"height={self.height}, order={self.order})"
        )
