"""ProMIPS reproduction: probability-guaranteed c-approximate MIP search.

Public API:

* :class:`repro.IndexSpec` / :func:`repro.build_index` — the declarative
  factory API: every method builds from a ``"name(key=value, ...)"`` spec.
* :func:`repro.save_index` / :func:`repro.load_index` — universal
  persistence: any built index round-trips through one ``.npz`` envelope.
* :class:`repro.ProMIPS` / :class:`repro.ProMIPSParams` — the paper's method.
* :class:`repro.ShardedIndex` — the sharded serving layer: horizontal
  partitioning over any registered method with exact parallel top-k merge.
* :class:`repro.ServingRuntime` / :func:`repro.make_server` — the online
  serving runtime: micro-batching coalescer + generation-aware result cache
  + latency telemetry behind a stdlib JSON HTTP API (``repro serve``).
* :class:`repro.MaintenanceEngine` — background generational maintenance
  for dynamic indexes: compactions build off the request lock and swap in
  atomically, so rebuilds never stall serving.
* :class:`repro.SearchResult` / :class:`repro.SearchStats` /
  :class:`repro.BatchResult` — common result types.
* ``repro.baselines`` — exact scan, H2-ALSH, Norm Ranging-LSH, PQ-based and
  SimHash search.
* ``repro.data`` — synthetic analogues of the four evaluation datasets.
* ``repro.eval`` — metrics and the experiment harness regenerating the paper's
  tables and figures.

Every index answers single queries (``search``) and query batches
(``search_many``); batch answers are bit-identical to looping ``search``.

Quickstart:

>>> import numpy as np
>>> import repro
>>> data = np.random.default_rng(0).standard_normal((1000, 32))
>>> index = repro.build_index("promips(c=0.9, p=0.5)", data, rng=1)
>>> result = index.search(data[0], k=5)
>>> len(result.ids)
5
>>> batch = index.search_many(data[:8], k=5)
>>> batch.ids.shape
(8, 5)
>>> path = repro.save_index(index, "/tmp/idx.npz")  # doctest: +SKIP
>>> repro.load_index(path).search(data[0], k=5).ids  # doctest: +SKIP
"""

from repro.api import BatchResult, MIPSIndex, SearchResult, SearchStats
from repro.core.batch import BatchStats, search_batch, search_many
from repro.core.dynamic import DynamicProMIPS
from repro.core.maintenance import MaintenanceEngine
from repro.core.persist import inspect_index, load_index, save_index
from repro.core.promips import ProMIPS, ProMIPSParams
from repro.core.rng import resolve_rng
from repro.core.sharded import ShardedIndex
from repro.serve import MicroBatcher, ResultCache, ServingRuntime, build_runtime, make_server
from repro.baselines.exact import ExactMIPS
from repro.baselines.h2alsh import H2ALSH
from repro.baselines.pq import PQBasedMIPS
from repro.baselines.rangelsh import RangeLSH
from repro.baselines.simhash import SimHashMIPS
from repro.data.datasets import load_dataset
from repro.eval.harness import default_registry, measure_throughput
from repro.spec import (
    IndexSpec,
    build_index,
    get_method,
    register_method,
    registered_methods,
)

__version__ = "1.5.0"

__all__ = [
    "MIPSIndex",
    "SearchResult",
    "SearchStats",
    "BatchResult",
    "IndexSpec",
    "build_index",
    "get_method",
    "register_method",
    "registered_methods",
    "resolve_rng",
    "ProMIPS",
    "ProMIPSParams",
    "BatchStats",
    "search_batch",
    "search_many",
    "DynamicProMIPS",
    "MaintenanceEngine",
    "ShardedIndex",
    "ServingRuntime",
    "MicroBatcher",
    "ResultCache",
    "build_runtime",
    "make_server",
    "load_index",
    "save_index",
    "inspect_index",
    "ExactMIPS",
    "H2ALSH",
    "PQBasedMIPS",
    "RangeLSH",
    "SimHashMIPS",
    "load_dataset",
    "default_registry",
    "measure_throughput",
    "__version__",
]
