"""Shared public types: search results, statistics, and the index protocol.

Every MIPS method in this repository — ProMIPS and the three baselines —
returns the same :class:`SearchResult` so the evaluation harness and the
examples can treat them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["SearchStats", "SearchResult", "MIPSIndex", "validate_query"]


@dataclass
class SearchStats:
    """Per-query accounting shared by all methods.

    Attributes:
        pages: distinct disk pages read (index pages + data pages).
        candidates: points whose exact inner product was computed.
        extras: method-specific diagnostics (e.g. ProMIPS' probe radius and
            whether the compensation pass ran).
    """

    pages: int = 0
    candidates: int = 0
    extras: dict = field(default_factory=dict)


@dataclass
class SearchResult:
    """Top-k answer of a c-k-AMIP search.

    Attributes:
        ids: ``(k',)`` point ids sorted by descending inner product
            (``k' <= k`` when the dataset is smaller than ``k``).
        scores: matching inner products ``⟨o_i, q⟩``.
        stats: per-query accounting.
    """

    ids: np.ndarray
    scores: np.ndarray
    stats: SearchStats

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if self.ids.shape != self.scores.shape:
            raise ValueError(
                f"ids and scores must align, got {self.ids.shape} vs {self.scores.shape}"
            )

    def __len__(self) -> int:
        return int(self.ids.size)


@runtime_checkable
class MIPSIndex(Protocol):
    """What the harness requires of a maximum-inner-product index."""

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Return the (approximate) top-k MIP points for ``query``."""
        ...

    def index_size_bytes(self) -> int:
        """Size of the auxiliary index structures (excluding the raw data)."""
        ...


def validate_query(query: np.ndarray, dim: int) -> np.ndarray:
    """Normalise a query to a finite 1-D float64 vector of the right width."""
    query = np.asarray(query, dtype=np.float64).reshape(-1)
    if query.shape[0] != dim:
        raise ValueError(f"query has dimension {query.shape[0]}, index expects {dim}")
    if not np.all(np.isfinite(query)):
        raise ValueError("query contains non-finite values")
    return query
