"""Shared public types: search results, statistics, and the index protocol.

Every MIPS method in this repository — ProMIPS and the baselines — returns
the same :class:`SearchResult` so the evaluation harness and the examples can
treat them interchangeably.

Batch execution is first-class: the :class:`MIPSIndex` protocol includes
``search_many(queries, k)`` returning a :class:`BatchResult`, and
:class:`BatchSearchMixin` supplies a generic fallback (loop over ``search``)
so every index answers batches even before it grows a natively vectorized
path.  Native implementations (ProMIPS, Exact, PQ, SimHash) route both the
single and the batch path through ``repro.core.engine``, which makes
``search_many(Q, k)`` bit-identical to looping ``search(q, k)``.  An empty
``(0, d)`` batch is valid everywhere and returns a ``(0, 0)``-shaped
:class:`BatchResult`.

Beyond search, every method implements the **registry contract** of
:mod:`repro.spec`: the class registers itself under a canonical method name
with the ``@register_method`` decorator and provides

* ``from_spec(data, spec, rng=None)`` — build from a declarative
  :class:`repro.spec.IndexSpec`;
* ``spec()`` — the round-trippable current configuration;
* ``state()`` / ``from_state(spec, state)`` — the built index as plain
  arrays, and its bit-identical reconstruction.

``repro.build_index`` dispatches specs through the registry, and
``repro.save_index`` / ``repro.load_index`` persist **any** registered
method through one versioned ``.npz`` envelope (see
:mod:`repro.core.persist`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "SearchStats",
    "SearchResult",
    "BatchResult",
    "MIPSIndex",
    "BatchSearchMixin",
    "validate_k",
    "validate_query",
    "validate_queries",
]


@dataclass
class SearchStats:
    """Per-query accounting shared by all methods.

    Attributes:
        pages: distinct disk pages read (index pages + data pages).
        candidates: points whose exact inner product was computed.
        extras: method-specific diagnostics (e.g. ProMIPS' probe radius and
            whether the compensation pass ran).
    """

    pages: int = 0
    candidates: int = 0
    extras: dict = field(default_factory=dict)


@dataclass
class SearchResult:
    """Top-k answer of a c-k-AMIP search.

    Attributes:
        ids: ``(k',)`` point ids sorted by descending inner product
            (``k' <= k`` when the dataset is smaller than ``k``).
        scores: matching inner products ``⟨o_i, q⟩``.
        stats: per-query accounting.
    """

    ids: np.ndarray
    scores: np.ndarray
    stats: SearchStats

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if self.ids.shape != self.scores.shape:
            raise ValueError(
                f"ids and scores must align, got {self.ids.shape} vs {self.scores.shape}"
            )

    def __len__(self) -> int:
        return int(self.ids.size)


@dataclass
class BatchResult:
    """Top-k answers of a whole query batch.

    Rows are queries.  Queries that returned fewer than the row width (an
    approximate method can come up short of ``k``) are right-padded with id
    ``-1`` / score ``-inf``; indexing strips the padding.

    Attributes:
        ids: ``(n_q, k')`` point ids per query, descending inner product.
        scores: matching ``(n_q, k')`` inner products.
        stats: per-query accounting, one :class:`SearchStats` per row.
    """

    ids: np.ndarray
    scores: np.ndarray
    stats: list[SearchStats]

    PAD_ID = -1

    def __post_init__(self) -> None:
        self.ids = np.atleast_2d(np.asarray(self.ids, dtype=np.int64))
        self.scores = np.atleast_2d(np.asarray(self.scores, dtype=np.float64))
        if self.ids.shape != self.scores.shape:
            raise ValueError(
                f"ids and scores must align, got {self.ids.shape} vs {self.scores.shape}"
            )
        if len(self.stats) != self.ids.shape[0]:
            raise ValueError(
                f"need one SearchStats per query, got {len(self.stats)} "
                f"for {self.ids.shape[0]} queries"
            )

    @classmethod
    def empty(cls) -> "BatchResult":
        """The answer to an empty query batch: a ``(0, 0)``-shaped result."""
        return cls(
            ids=np.empty((0, 0), dtype=np.int64),
            scores=np.empty((0, 0), dtype=np.float64),
            stats=[],
        )

    @classmethod
    def from_results(cls, results: list[SearchResult]) -> "BatchResult":
        """Assemble a batch from per-query results (the fallback adapter).

        An empty result list assembles to the empty batch, mirroring how
        ``search_many`` treats an empty query batch.
        """
        if not results:
            return cls.empty()
        width = max(len(r) for r in results)
        ids = np.full((len(results), width), cls.PAD_ID, dtype=np.int64)
        scores = np.full((len(results), width), -np.inf, dtype=np.float64)
        for i, r in enumerate(results):
            ids[i, : len(r)] = r.ids
            scores[i, : len(r)] = r.scores
        return cls(ids=ids, scores=scores, stats=[r.stats for r in results])

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def __getitem__(self, i: int) -> SearchResult:
        """The ``i``-th query's answer as a plain :class:`SearchResult`."""
        live = self.ids[i] != self.PAD_ID
        return SearchResult(
            ids=self.ids[i][live], scores=self.scores[i][live], stats=self.stats[i]
        )

    def __iter__(self) -> Iterator[SearchResult]:
        return (self[i] for i in range(len(self)))


@runtime_checkable
class MIPSIndex(Protocol):
    """What the harness requires of a maximum-inner-product index."""

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Return the (approximate) top-k MIP points for ``query``."""
        ...

    def search_many(self, queries: np.ndarray, k: int = 1) -> BatchResult:
        """Answer a whole ``(n_q, d)`` batch; row ``i`` matches ``search(queries[i])``."""
        ...

    def index_size_bytes(self) -> int:
        """Size of the auxiliary index structures (excluding the raw data)."""
        ...


class BatchSearchMixin:
    """Generic ``search_many`` fallback: loop ``search`` over the batch.

    Gives every index a batch path for free; methods with a natively
    vectorized batch implementation override :meth:`search_many` instead.
    ``repro.core.batch.search_batch`` detects this fallback and can fan it
    out over a thread pool.
    """

    def search_many(self, queries: np.ndarray, k: int = 1, **kwargs) -> BatchResult:
        queries = validate_queries(queries, self.dim)
        return BatchResult.from_results(
            [self.search(q, k=k, **kwargs) for q in queries]
        )


def validate_k(k) -> int:
    """Normalise a top-k request to a positive Python int — or raise.

    Every registered method's ``search``/``search_many`` funnels ``k``
    through this one check, so an invalid request fails identically
    everywhere (before this audit, ``k=2.5`` silently truncated in some
    methods and surfaced as obscure numpy ``TypeError``s in others).  The
    uniform error is a ``ValueError`` so the serving layer can map every
    bad-request shape to one HTTP 400 path.

    Accepted: positive ints (numpy integers included) and integral floats —
    JSON clients often deliver ``5.0``.  Rejected with the same message:
    zero, negatives, non-integral floats, bools, and non-numbers.
    """
    if isinstance(k, (bool, np.bool_)):
        raise ValueError(f"k must be a positive integer, got {k!r}")
    if isinstance(k, (float, np.floating)):
        if not float(k).is_integer():
            raise ValueError(f"k must be a positive integer, got {k!r}")
        k = int(k)
    if not isinstance(k, (int, np.integer)):
        raise ValueError(f"k must be a positive integer, got {k!r}")
    k = int(k)
    if k <= 0:
        raise ValueError(f"k must be a positive integer, got {k}")
    return k


def validate_query(query: np.ndarray, dim: int) -> np.ndarray:
    """Normalise a query to a finite 1-D float64 vector of the right width."""
    query = np.asarray(query, dtype=np.float64).reshape(-1)
    if query.shape[0] != dim:
        raise ValueError(f"query has dimension {query.shape[0]}, index expects {dim}")
    if not np.all(np.isfinite(query)):
        raise ValueError("query contains non-finite values")
    return query


def validate_queries(queries: np.ndarray, dim: int) -> np.ndarray:
    """Normalise a batch to a finite ``(n_q, dim)`` float64 array.

    A single ``(dim,)`` query is promoted to a one-row batch.  An empty
    batch is valid and normalises to ``(0, dim)`` — every ``search_many``
    answers it with the empty :class:`BatchResult`.
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1 and queries.size == 0:
        return np.empty((0, dim), dtype=np.float64)
    queries = np.atleast_2d(queries)
    if queries.ndim != 2:
        raise ValueError(f"queries must be a (n_q, d) array, got {queries.shape}")
    if queries.shape[0] == 0:
        return np.empty((0, dim), dtype=np.float64)
    if queries.shape[1] != dim:
        raise ValueError(
            f"queries have dimension {queries.shape[1]}, index expects {dim}"
        )
    if not np.all(np.isfinite(queries)):
        raise ValueError("queries contain non-finite values")
    return queries
