"""Synthetic analogues of the paper's four evaluation datasets (Table III).

The real files (Netflix/Yahoo PureSVD factors, P53 mutants, SIFT10M) are not
redistributable and this environment has no network access, so each dataset
is replaced by a generator reproducing the properties that drive MIPS
behaviour (see DESIGN.md §3 for the substitution log):

* **Latent-factor data** (Netflix, Yahoo): PureSVD item factors are
  ``Q = V·Σ^(1/2)`` of a low-rank ratings model — strongly anisotropic
  vectors with power-law spectrum and long-tailed norms.  The generator
  samples item/user factors from a shared low-rank Gaussian model with
  decaying singular values plus a popularity scale on items.
* **P53-like data**: very high-dimensional biological feature vectors with
  correlated blocks, sparse activation and heavy-tailed scales (d ≫ typical
  page capacity — the reason the paper uses 64KB pages for P53).
* **SIFT-like data**: non-negative, integer-quantized, strongly clustered
  local descriptors (mixture of Gaussians folded into the positive orthant).

Queries for the latent-factor datasets are *user* vectors from the same
model (the recommendation scenario of the paper's introduction); the other
two sample held-out points, matching the paper's "100 points randomly
selected as the query points".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_latent_factor",
    "make_p53_like",
    "make_sift_like",
    "sample_queries",
]


def make_latent_factor(
    n: int,
    dim: int,
    rng: np.random.Generator,
    n_queries: int = 0,
    spectrum_decay: float = 0.7,
    popularity_sigma: float = 0.06,
) -> tuple[np.ndarray, np.ndarray]:
    """PureSVD-style item factors plus user-vector queries.

    Items and users share the latent structure ``x = A·z`` with
    ``A = diag(σ)·O`` for a random rotation ``O`` and power-law spectrum
    ``σ_i = i^{−spectrum_decay}``; items are additionally scaled by a
    log-normal popularity factor, reproducing the long-tailed (but not
    pathological) 2-norm distribution of real PureSVD factors that Norm
    Ranging-LSH was designed around.

    Args:
        n: number of item vectors.
        dim: dimensionality (300 in the paper).
        rng: random generator.
        n_queries: number of user-vector queries to generate.
        spectrum_decay: power-law exponent of the singular values.
        popularity_sigma: log-normal sigma of the item popularity scale
            (larger = heavier norm tail).

    Returns:
        ``(items, queries)`` of shapes ``(n, dim)`` and ``(n_queries, dim)``.
    """
    if n <= 0 or dim <= 0:
        raise ValueError(f"n and dim must be positive, got n={n}, dim={dim}")
    spectrum = np.arange(1, dim + 1, dtype=np.float64) ** (-spectrum_decay)
    # Random orthogonal basis via QR of a Gaussian matrix.
    basis, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    mixing = basis * spectrum[None, :]

    # Latent genre structure: items concentrate around a modest number of
    # genre centroids inside the low-rank subspace (movies/songs cluster by
    # taste), which is what gives real MF factors their strong angular
    # alignment between similar items.
    n_genres = max(4, min(48, n // 200))
    genre_centers = rng.standard_normal((n_genres, dim)) * 1.2
    genre_of = rng.integers(n_genres, size=n)
    latent = genre_centers[genre_of] + 0.6 * rng.standard_normal((n, dim))
    items = latent @ mixing.T
    # PureSVD factors are rows of V·Σ with V column-orthonormal, so their
    # 2-norms concentrate sharply around a common scale (relative spread of
    # roughly ±10-15% on Netflix/Yahoo); only a mild popularity wobble
    # remains.  Re-normalize directions and apply a log-normal norm.
    items /= np.linalg.norm(items, axis=1, keepdims=True)
    items *= rng.lognormal(mean=0.0, sigma=popularity_sigma, size=n)[:, None]

    queries = np.empty((0, dim))
    if n_queries > 0:
        q_genres = rng.integers(n_genres, size=n_queries)
        q_latent = genre_centers[q_genres] + 0.6 * rng.standard_normal((n_queries, dim))
        queries = q_latent @ mixing.T
        queries /= np.linalg.norm(queries, axis=1, keepdims=True)
        queries *= rng.lognormal(mean=0.0, sigma=popularity_sigma, size=n_queries)[:, None]
    return items, queries


def make_p53_like(
    n: int,
    dim: int,
    rng: np.random.Generator,
    n_blocks: int = 32,
    density: float = 0.35,
) -> np.ndarray:
    """Very high-dimensional correlated biophysical-style features.

    Features come in correlated blocks (2D-electrostatic / surface maps of
    the real P53 data are spatially correlated), most coordinates of a point
    are near-baseline (sparse activation) and per-point scales are
    heavy-tailed.
    """
    if n <= 0 or dim <= 0:
        raise ValueError(f"n and dim must be positive, got n={n}, dim={dim}")
    n_blocks = max(1, min(n_blocks, dim))
    bounds = np.linspace(0, dim, n_blocks + 1).astype(int)
    # A small set of structural prototypes (wild-type + mutation families):
    # real P53 feature maps are perturbations of a handful of fold states,
    # which is what gives similar mutants strongly aligned feature vectors.
    n_protos = max(4, min(24, n // 100))
    proto_block_mean = rng.standard_normal((n_protos, n_blocks)) * 1.1
    proto_of = rng.integers(n_protos, size=n)
    data = np.empty((n, dim))
    block_active = rng.random((n, n_blocks)) < density
    for j, (a, b) in enumerate(zip(bounds[:-1], bounds[1:])):
        width = b - a
        shared = proto_block_mean[proto_of, j][:, None] + 0.35 * rng.standard_normal((n, 1))
        block = 0.9 * shared + 0.35 * rng.standard_normal((n, width))
        block *= block_active[:, j][:, None]
        data[:, a:b] = block
    # Feature energies concentrate over thousands of coordinates (CLT); a
    # mild log-normal wobble reproduces the residual per-protein variation.
    norms = np.linalg.norm(data, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    scale = np.sqrt(dim * density) * rng.lognormal(mean=0.0, sigma=0.08, size=(n, 1))
    data *= scale / norms
    return data


def make_sift_like(
    n: int,
    dim: int,
    rng: np.random.Generator,
    n_clusters: int = 64,
    max_value: int = 218,
) -> np.ndarray:
    """Non-negative, clustered, integer-quantized descriptor vectors.

    SIFT descriptors are gradient histograms: non-negative, bounded, and
    strongly clustered.  The generator folds a Gaussian mixture into the
    positive orthant and quantizes to integers.
    """
    if n <= 0 or dim <= 0:
        raise ValueError(f"n and dim must be positive, got n={n}, dim={dim}")
    n_clusters = max(1, min(n_clusters, n))
    centers = np.abs(rng.standard_normal((n_clusters, dim))) * 40.0
    assignment = rng.integers(n_clusters, size=n)
    data = centers[assignment] + 12.0 * rng.standard_normal((n, dim))
    np.abs(data, out=data)
    np.minimum(data, max_value, out=data)
    # SIFT descriptors carry near-constant gradient energy (the standard
    # pipeline normalizes and clips them), so their 2-norms are tight.
    norms = np.linalg.norm(data, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    target = 512.0 * rng.lognormal(mean=0.0, sigma=0.04, size=(n, 1))
    data *= target / norms
    return np.floor(data)


def sample_queries(
    data: np.ndarray, n_queries: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Select query points at random from a dataset (the paper's protocol).

    Returns ``(queries, query_ids)``; queries stay in the dataset, matching
    "100 points are randomly selected as the query points".
    """
    data = np.asarray(data)
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    if n_queries > data.shape[0]:
        raise ValueError(
            f"cannot sample {n_queries} queries from {data.shape[0]} points"
        )
    ids = rng.choice(data.shape[0], size=n_queries, replace=False)
    return data[ids].copy(), ids.astype(np.int64)
