"""Synthetic analogues of the paper's evaluation datasets (Table III)."""

from repro.data.datasets import DATASETS, Dataset, DatasetSpec, load_dataset, table3_rows
from repro.data.synthetic import (
    make_latent_factor,
    make_p53_like,
    make_sift_like,
    sample_queries,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "load_dataset",
    "table3_rows",
    "make_latent_factor",
    "make_p53_like",
    "make_sift_like",
    "sample_queries",
]
