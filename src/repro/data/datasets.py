"""Dataset registry mirroring Table III of the paper.

Each entry describes one of the four evaluation datasets in two profiles:

* ``paper`` — the original sizes (Netflix 17770×300 … Sift 11164866×128),
  available for users with the patience (and memory) to run them;
* ``sim`` — laptop-scale defaults used by the benchmark harness: same data
  *shape* (generator and its structural parameters), reduced ``n``/``d``.

The registry also records the per-dataset constants the paper fixes in
§VIII-A-4: page size (64KB on P53 because one 5408-dim point exceeds a 4KB
page) and the projected dimensionality the optimizer yields at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.synthetic import (
    make_latent_factor,
    make_p53_like,
    make_sift_like,
    sample_queries,
)

__all__ = ["Dataset", "DatasetSpec", "DATASETS", "load_dataset", "table3_rows"]


@dataclass(frozen=True)
class Dataset:
    """A generated dataset plus its evaluation queries.

    Attributes:
        name: registry key ("netflix", "yahoo", "p53", "sift").
        data: ``(n, d)`` float array.
        queries: ``(n_q, d)`` query vectors.
        page_size: disk page size the paper uses for this dataset.
    """

    name: str
    data: np.ndarray
    queries: np.ndarray
    page_size: int

    @property
    def n(self) -> int:
        return self.data.shape[0]

    @property
    def dim(self) -> int:
        return self.data.shape[1]

    @property
    def size_bytes(self) -> int:
        """Raw data size under the paper's float32 accounting."""
        return self.n * self.dim * 4


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry for one evaluation dataset.

    Attributes:
        name: dataset key.
        paper_n / paper_d: the sizes reported in Table III.
        paper_m: projected dimensionality reported in §VIII-A-4.
        sim_n / sim_d: laptop-scale defaults for the benches.
        page_size: 4KB, except 64KB on P53 (paper choice).
        generator: callable ``(n, d, n_queries, rng) -> (data, queries)``.
    """

    name: str
    paper_n: int
    paper_d: int
    paper_m: int
    sim_n: int
    sim_d: int
    page_size: int
    generator: Callable[[int, int, int, np.random.Generator], tuple[np.ndarray, np.ndarray]]


def _gen_latent(n: int, d: int, n_queries: int, rng: np.random.Generator):
    # Queries follow the paper's protocol for every dataset: "100 points are
    # randomly selected as the query points" — i.e. item vectors, not user
    # vectors.  (User-vector queries remain available through
    # repro.data.make_latent_factor for the recommender example.)
    items, _ = make_latent_factor(n, d, rng)
    queries, _ = sample_queries(items, n_queries, rng)
    return items, queries


def _gen_p53(n: int, d: int, n_queries: int, rng: np.random.Generator):
    data = make_p53_like(n, d, rng)
    queries, _ = sample_queries(data, n_queries, rng)
    return data, queries


def _gen_sift(n: int, d: int, n_queries: int, rng: np.random.Generator):
    data = make_sift_like(n, d, rng)
    queries, _ = sample_queries(data, n_queries, rng)
    return data, queries


DATASETS: dict[str, DatasetSpec] = {
    "netflix": DatasetSpec(
        name="netflix", paper_n=17770, paper_d=300, paper_m=6,
        sim_n=17770, sim_d=64, page_size=4096, generator=_gen_latent,
    ),
    "yahoo": DatasetSpec(
        name="yahoo", paper_n=624961, paper_d=300, paper_m=8,
        sim_n=60000, sim_d=64, page_size=4096, generator=_gen_latent,
    ),
    "p53": DatasetSpec(
        name="p53", paper_n=31420, paper_d=5408, paper_m=6,
        sim_n=8000, sim_d=1024, page_size=65536, generator=_gen_p53,
    ),
    "sift": DatasetSpec(
        name="sift", paper_n=11164866, paper_d=128, paper_m=10,
        sim_n=100000, sim_d=64, page_size=4096, generator=_gen_sift,
    ),
}


def load_dataset(
    name: str,
    profile: str = "sim",
    n_queries: int = 100,
    seed: int = 20210406,
    n: int | None = None,
    dim: int | None = None,
) -> Dataset:
    """Generate a registry dataset.

    Args:
        name: one of ``netflix``, ``yahoo``, ``p53``, ``sift``.
        profile: ``sim`` (bench defaults) or ``paper`` (full Table III size).
        n_queries: number of query vectors (paper: 100).
        seed: generation seed (default encodes the paper's arXiv date).
        n, dim: explicit size overrides (take precedence over the profile).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    if profile not in ("sim", "paper"):
        raise ValueError(f"profile must be 'sim' or 'paper', got {profile!r}")
    spec = DATASETS[name]
    use_n = n if n is not None else (spec.sim_n if profile == "sim" else spec.paper_n)
    use_d = dim if dim is not None else (spec.sim_d if profile == "sim" else spec.paper_d)
    rng = np.random.default_rng(seed)
    data, queries = spec.generator(use_n, use_d, n_queries, rng)
    return Dataset(
        name=name,
        data=np.asarray(data, dtype=np.float64),
        queries=np.asarray(queries, dtype=np.float64),
        page_size=spec.page_size,
    )


def table3_rows(profile: str = "sim", **load_kwargs) -> list[dict]:
    """Rows of Table III for the chosen profile (name, n, d, data size)."""
    rows = []
    for name, spec in DATASETS.items():
        if profile == "paper":
            n, d = spec.paper_n, spec.paper_d
            size = n * d * 4
            rows.append({"dataset": name, "n": n, "d": d, "size_mb": size / 2**20})
        else:
            ds = load_dataset(name, profile="sim", **load_kwargs)
            rows.append(
                {"dataset": name, "n": ds.n, "d": ds.dim, "size_mb": ds.size_bytes / 2**20}
            )
    return rows
