"""Plain-text tables matching the rows/series the paper's figures report."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: row values; floats are formatted with ``float_fmt``.
        title: optional caption printed above the table.
        float_fmt: format applied to float cells.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render one figure's line series as a table with one column per method."""
    headers = [x_name, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
