"""Experiment harness regenerating the paper's figures and tables.

The harness owns the full §VIII protocol: build each method once per
dataset, run the query workload, and aggregate the §VIII-A-3 metrics
(overall ratio, recall, page access, CPU time, total time).  "Total time"
adds a simulated I/O cost per page on top of the measured CPU time, which is
how the paper's total-time plots are dominated by page accesses.

Benchmarks call :func:`run_method` / :func:`build_method` directly; the
:class:`MethodRegistry` maps the paper's method names to declarative
:class:`repro.spec.IndexSpec` entries so every bench names methods exactly
as the figures do ("ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based") while the
actual construction goes through ``repro.build_index``.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from repro.api import MIPSIndex, validate_k
from repro.core.batch import has_native_batch, search_many
from repro.core.promips import ProMIPSParams
from repro.data.datasets import Dataset
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import latency_summary, overall_ratio, recall
from repro.spec import IndexSpec, build_index

__all__ = [
    "PAGE_LATENCY_SECONDS",
    "BuildReport",
    "QueryReport",
    "ThroughputReport",
    "MethodRegistry",
    "build_method",
    "run_method",
    "measure_throughput",
    "default_registry",
]

# Simulated cost of fetching one 4KB page from spinning disk (~0.1 ms keeps
# the CPU-vs-IO balance of the paper's commodity-ECS testbed).
PAGE_LATENCY_SECONDS = 1e-4


@dataclass
class BuildReport:
    """Outcome of building one method on one dataset."""

    method: str
    dataset: str
    build_seconds: float
    index_bytes: int

    @property
    def index_mb(self) -> float:
        return self.index_bytes / 2**20


@dataclass
class QueryReport:
    """Aggregated query metrics for one (method, dataset, k, c, p) cell."""

    method: str
    dataset: str
    k: int
    overall_ratio: float
    recall: float
    pages: float
    cpu_ms: float
    total_ms: float
    candidates: float
    extras: dict = field(default_factory=dict)


class MethodRegistry:
    """Name → spec map, with legacy builder-callable support.

    Entries are declarative: an :class:`repro.spec.IndexSpec` (or parseable
    spec string), or a *spec factory* ``(dataset) -> IndexSpec`` for
    parameters that depend on the dataset (page size, training-set scaling).
    Construction always goes through ``repro.build_index``, so every
    registered name shares the registry contract (persistence included).

    Legacy builder callables ``(dataset, seed) -> index`` still register —
    they are detected by arity — but cannot report a spec.
    """

    def __init__(self) -> None:
        # name -> ("spec", IndexSpec) | ("factory", (ds) -> IndexSpec)
        #       | ("builder", (ds, seed) -> index); one ordered dict keeps
        # names() in registration order across entry kinds.
        self._entries: dict[str, tuple[str, object]] = {}

    def register(
        self,
        name: str,
        spec: IndexSpec | str | Callable[[Dataset], IndexSpec] | Callable[[Dataset, int], MIPSIndex],
    ) -> None:
        """Register a spec, spec string, spec factory, or legacy builder."""
        if callable(spec) and not isinstance(spec, IndexSpec):
            if len(inspect.signature(spec).parameters) >= 2:
                self._entries[name] = ("builder", spec)
            else:
                self._entries[name] = ("factory", spec)
        else:
            self._entries[name] = ("spec", IndexSpec.coerce(spec))

    def names(self) -> list[str]:
        return list(self._entries)

    def spec_for(self, name: str, dataset: Dataset) -> IndexSpec | None:
        """The concrete spec this registry would build ``name`` from.

        ``None`` for legacy builder entries (they have no declarative form).
        """
        if name not in self._entries:
            raise KeyError(f"unknown method {name!r}; known: {self.names()}")
        kind, entry = self._entries[name]
        if kind == "spec":
            return entry
        if kind == "factory":
            return entry(dataset)
        return None

    def build(self, name: str, dataset: Dataset, seed: int = 1) -> MIPSIndex:
        """Build a registered name — or an inline spec like ``"promips(c=0.8)"``
        (bare canonical method names such as ``"promips"`` also resolve)."""
        if name not in self._entries:
            try:
                spec = IndexSpec.parse(name)
            except ValueError:
                raise KeyError(
                    f"unknown method {name!r}; known: {self.names()}"
                ) from None
            # Unknown spec names raise KeyError from the method registry.
            return build_index(spec, dataset.data, rng=seed)
        kind, entry = self._entries[name]
        if kind == "builder":
            return entry(dataset, seed)
        spec = entry(dataset) if kind == "factory" else entry
        return build_index(spec, dataset.data, rng=seed)


def default_registry(
    c: float = 0.9,
    p: float = 0.5,
    promips_params: ProMIPSParams | None = None,
    include_extras: bool = False,
) -> MethodRegistry:
    """The four methods of the paper under its §VIII-A-4 defaults.

    PQ's training-heavy knobs scale with the dataset so that simulated builds
    stay minutes-free while preserving the paper's 16-subspace / 16-probe
    configuration; that is why its entry is a spec *factory* rather than a
    fixed spec.

    Args:
        include_extras: also register the off-paper methods ("Exact",
            "SimHash", and the "Sharded" serving layer over the exact scan) —
            useful for throughput comparisons where the exact scan's one-GEMM
            batch path is the reference.
    """
    registry = MethodRegistry()

    def promips_spec(ds: Dataset) -> IndexSpec:
        if promips_params is not None:
            return IndexSpec("promips", asdict(promips_params))
        return IndexSpec("promips", {"c": c, "p": p, "page_size": ds.page_size})

    def pq_spec(ds: Dataset) -> IndexSpec:
        n = ds.data.shape[0]
        n_coarse = int(np.clip(n // 256, 8, 128))
        # Let typical cells train their own rotation + codebooks (the LOPQ
        # configuration of the paper); this is what makes PQ the heaviest
        # index in Fig. 4 — rotation matrices are d² floats per cell.  The
        # per-cell codebook size scales with the cell population (256
        # centroids on a 260-point cell would be one centroid per point).
        min_local_train = max(64, (n // n_coarse) // 2)
        n_centroids = int(np.clip((n // n_coarse) // 8, 16, 256))
        return IndexSpec(
            "pq",
            {
                "n_coarse": n_coarse,
                "n_centroids": n_centroids,
                "min_local_train": min_local_train,
                "page_size": ds.page_size,
            },
        )

    registry.register("ProMIPS", promips_spec)
    registry.register(
        "H2-ALSH", lambda ds: IndexSpec("h2alsh", {"c": c, "page_size": ds.page_size})
    )
    registry.register(
        "Range-LSH",
        lambda ds: IndexSpec("rangelsh", {"c": c, "page_size": ds.page_size}),
    )
    registry.register("PQ-Based", pq_spec)
    if include_extras:
        registry.register(
            "Exact", lambda ds: IndexSpec("exact", {"page_size": ds.page_size})
        )
        registry.register(
            "SimHash", lambda ds: IndexSpec("simhash", {"page_size": ds.page_size})
        )
        registry.register(
            "Sharded",
            lambda ds: IndexSpec(
                "sharded",
                {"inner": f"exact(page_size={ds.page_size})", "shards": 4},
            ),
        )
    return registry


def build_method(
    registry: MethodRegistry, name: str, dataset: Dataset, seed: int = 1
) -> tuple[MIPSIndex, BuildReport]:
    """Build a method and time its pre-process (Fig. 4 numbers)."""
    start = time.perf_counter()
    index = registry.build(name, dataset, seed)
    elapsed = time.perf_counter() - start
    report = BuildReport(
        method=name,
        dataset=dataset.name,
        build_seconds=elapsed,
        index_bytes=index.index_size_bytes(),
    )
    return index, report


def run_method(
    index: MIPSIndex,
    dataset: Dataset,
    ground_truth: GroundTruth,
    k: int,
    method: str = "",
    search_kwargs: dict | None = None,
    page_latency: float = PAGE_LATENCY_SECONDS,
    batch: bool = False,
) -> QueryReport:
    """Run every workload query at one ``k`` and aggregate the §VIII metrics.

    Args:
        batch: answer the whole workload through the index's ``search_many``
            path instead of looping ``search``.  Results (and therefore
            ratio/recall/pages) are bit-identical to the looped path for the
            natively vectorized methods; only the CPU column changes, which
            is exactly the quantity batching is meant to improve.
    """
    k = validate_k(k)
    search_kwargs = search_kwargs or {}
    ratios: list[float] = []
    recalls: list[float] = []
    pages: list[int] = []
    candidates: list[int] = []

    if batch:
        start = time.perf_counter()
        results = search_many(index, dataset.queries, k=k, **search_kwargs)
        elapsed = time.perf_counter() - start
        cpu_per_query = [elapsed / len(results)] * len(results)
        per_query = list(results)
    else:
        cpu_per_query = []
        per_query = []
        for query in dataset.queries:
            start = time.perf_counter()
            per_query.append(index.search(query, k=k, **search_kwargs))
            cpu_per_query.append(time.perf_counter() - start)

    for qi, result in enumerate(per_query):
        exact_ids, exact_ips = ground_truth.topk(qi, k)
        ratios.append(overall_ratio(result.scores, exact_ips))
        recalls.append(recall(result.ids, exact_ids))
        pages.append(result.stats.pages)
        candidates.append(result.stats.candidates)
    mean_pages = float(np.mean(pages))
    mean_cpu = float(np.mean(cpu_per_query))
    return QueryReport(
        method=method,
        dataset=dataset.name,
        k=k,
        overall_ratio=float(np.mean(ratios)),
        recall=float(np.mean(recalls)),
        pages=mean_pages,
        cpu_ms=mean_cpu * 1e3,
        total_ms=(mean_cpu + mean_pages * page_latency) * 1e3,
        candidates=float(np.mean(candidates)),
        extras={"batch": batch},
    )


@dataclass
class ThroughputReport:
    """Single-vs-batch throughput of one method on one workload.

    Attributes:
        loop_qps: queries/sec answering the workload one ``search`` at a time.
        batch_qps: queries/sec through ``search_many``.
        speedup: ``batch_qps / loop_qps``.
        native_batch: whether the index has a vectorized ``search_many`` (as
            opposed to the generic loop fallback).
        shard_seconds: per-shard wall-clock seconds of the final timed batch
            (sharded indexes only; ``None`` for single-index methods).
        latency_p50_ms / latency_p95_ms / latency_p99_ms: per-query latency
            percentiles of the best looped run, through the same
            :func:`repro.eval.metrics.percentile` rule the serving telemetry
            reports, so harness and ``/stats`` numbers are comparable.
    """

    method: str
    dataset: str
    n_queries: int
    k: int
    loop_qps: float
    batch_qps: float
    speedup: float
    native_batch: bool
    shard_seconds: list[float] | None = None
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0


def measure_throughput(
    index: MIPSIndex,
    queries: np.ndarray,
    k: int,
    method: str = "",
    dataset: str = "",
    repeats: int = 3,
    search_kwargs: dict | None = None,
) -> ThroughputReport:
    """Time the looped single-query path against ``search_many``.

    Both paths answer the identical workload after one untimed warm-up each
    (first calls pay allocator and BLAS-thread start-up costs); the best of
    ``repeats`` runs is kept (min is the standard noise-robust choice).
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    search_kwargs = search_kwargs or {}
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n_queries = queries.shape[0]

    index.search(queries[0], k=k, **search_kwargs)
    loop_best = np.inf
    best_latencies: list[float] = []
    for _ in range(repeats):
        latencies = []
        start = time.perf_counter()
        for query in queries:
            q_start = time.perf_counter()
            index.search(query, k=k, **search_kwargs)
            latencies.append(time.perf_counter() - q_start)
        elapsed = time.perf_counter() - start
        if elapsed < loop_best:
            loop_best = elapsed
            best_latencies = latencies

    search_many(index, queries, k=k, **search_kwargs)
    batch_best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        search_many(index, queries, k=k, **search_kwargs)
        batch_best = min(batch_best, time.perf_counter() - start)

    loop_qps = n_queries / loop_best if loop_best > 0 else float("inf")
    batch_qps = n_queries / batch_best if batch_best > 0 else float("inf")
    shard_seconds = getattr(index, "last_shard_seconds", None)
    latency = latency_summary(best_latencies)
    return ThroughputReport(
        method=method,
        dataset=dataset,
        n_queries=n_queries,
        k=k,
        loop_qps=loop_qps,
        batch_qps=batch_qps,
        speedup=batch_qps / loop_qps if loop_qps > 0 else float("inf"),
        native_batch=has_native_batch(index),
        shard_seconds=list(shard_seconds) if shard_seconds is not None else None,
        latency_p50_ms=latency["p50_ms"],
        latency_p95_ms=latency["p95_ms"],
        latency_p99_ms=latency["p99_ms"],
    )
