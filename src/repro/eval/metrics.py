"""Evaluation metrics of §VIII-A-3.

* **Overall ratio** — ``(1/k) Σ_i ⟨o_i, q⟩ / ⟨o*_i, q⟩`` over ranks ``i``:
  how close each returned inner product is to the exact one at the same rank.
* **Recall** — ``t/k`` with ``t`` the number of returned points that belong
  to the exact top-k set.

Both are per-query quantities in ``[0, 1]``-ish (the ratio can exceed 1 only
through ties/numerical noise and is clipped); the harness averages them over
the query workload exactly as the paper's figures do.

The module also owns the shared **percentile helpers** (:func:`percentile`,
:func:`p50`/:func:`p95`/:func:`p99`, :func:`latency_summary`) that the
serving telemetry, the throughput harness and the batch statistics all report
through, so "p95" means the same linear-interpolation quantile everywhere.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "overall_ratio",
    "recall",
    "guarantee_success",
    "percentile",
    "p50",
    "p95",
    "p99",
    "latency_summary",
]


def overall_ratio(returned_scores: np.ndarray, exact_scores: np.ndarray) -> float:
    """Rank-wise inner-product ratio, averaged over the k ranks.

    Args:
        returned_scores: inner products of the returned points, descending.
        exact_scores: exact top-k inner products, descending; must be at
            least as long as ``returned_scores``.

    Missing answers (method returned fewer than k points) count as ratio 0,
    which penalises under-filled results the way the paper's metric implies.
    """
    returned = np.asarray(returned_scores, dtype=np.float64)
    exact = np.asarray(exact_scores, dtype=np.float64)
    if exact.size == 0:
        raise ValueError("exact_scores must be non-empty")
    if returned.size > exact.size:
        raise ValueError(
            f"more returned scores ({returned.size}) than exact ones ({exact.size})"
        )
    k = exact.size
    ratios = np.zeros(k)
    matched = exact[: returned.size]
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = np.where(matched != 0.0, returned / matched, 1.0)
    # Negative exact scores flip the inequality; a returned score can also
    # exceed the exact one at its rank (it was found at a better rank) —
    # clip into [0, 1] so the aggregate stays interpretable.
    ratios[: returned.size] = np.clip(raw, 0.0, 1.0)
    return float(ratios.mean())


def recall(returned_ids: np.ndarray, exact_ids: np.ndarray) -> float:
    """``t/k``: fraction of the exact top-k that was returned."""
    exact_ids = np.asarray(exact_ids)
    if exact_ids.size == 0:
        raise ValueError("exact_ids must be non-empty")
    hit = len(set(np.asarray(returned_ids).tolist()) & set(exact_ids.tolist()))
    return hit / exact_ids.size


def guarantee_success(
    returned_scores: np.ndarray, exact_scores: np.ndarray, c: float
) -> float:
    """Fraction of ranks whose returned score meets the c-AMIP guarantee.

    A rank ``i`` succeeds when ``⟨o_i, q⟩ ≥ c·⟨o*_i, q⟩``.  ProMIPS promises
    success probability at least ``p`` — the property-style tests and the
    ablation bench check this directly.
    """
    returned = np.asarray(returned_scores, dtype=np.float64)
    exact = np.asarray(exact_scores, dtype=np.float64)
    if exact.size == 0:
        raise ValueError("exact_scores must be non-empty")
    if returned.size == 0:
        return 0.0
    matched = exact[: returned.size]
    ok = returned >= c * matched - 1e-9 * np.abs(matched)
    return float(np.sum(ok)) / exact.size


def percentile(values, q: float) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    Deliberately a tiny pure implementation (sort + interpolate between the
    two straddling order statistics) so the telemetry hot path never builds
    an array, but numerically identical to ``numpy.percentile``'s default
    ``"linear"`` method — the unit tests pin that equivalence down.

    Args:
        values: a non-empty sequence of numbers.
        q: percentile rank in ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile rank must be in [0, 100], got {q}")
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    rank = (len(data) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    return data[lo] + (data[hi] - data[lo]) * (rank - lo)


def p50(values) -> float:
    """Median by the shared :func:`percentile` rule."""
    return percentile(values, 50.0)


def p95(values) -> float:
    """95th percentile by the shared :func:`percentile` rule."""
    return percentile(values, 95.0)


def p99(values) -> float:
    """99th percentile by the shared :func:`percentile` rule."""
    return percentile(values, 99.0)


def latency_summary(seconds) -> dict:
    """p50/p95/p99 of a latency sample, in milliseconds.

    The shared shape every latency reporter uses (serving telemetry ``/stats``,
    the throughput harness, the serving-latency bench), so numbers line up
    across reports.  An empty sample summarises to zeros rather than raising —
    a freshly started server has served nothing yet.
    """
    data = [float(v) for v in seconds]
    if not data:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    return {
        "count": len(data),
        "p50_ms": p50(data) * 1e3,
        "p95_ms": p95(data) * 1e3,
        "p99_ms": p99(data) * 1e3,
    }
