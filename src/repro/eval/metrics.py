"""Evaluation metrics of §VIII-A-3.

* **Overall ratio** — ``(1/k) Σ_i ⟨o_i, q⟩ / ⟨o*_i, q⟩`` over ranks ``i``:
  how close each returned inner product is to the exact one at the same rank.
* **Recall** — ``t/k`` with ``t`` the number of returned points that belong
  to the exact top-k set.

Both are per-query quantities in ``[0, 1]``-ish (the ratio can exceed 1 only
through ties/numerical noise and is clipped); the harness averages them over
the query workload exactly as the paper's figures do.
"""

from __future__ import annotations

import numpy as np

__all__ = ["overall_ratio", "recall", "guarantee_success"]


def overall_ratio(returned_scores: np.ndarray, exact_scores: np.ndarray) -> float:
    """Rank-wise inner-product ratio, averaged over the k ranks.

    Args:
        returned_scores: inner products of the returned points, descending.
        exact_scores: exact top-k inner products, descending; must be at
            least as long as ``returned_scores``.

    Missing answers (method returned fewer than k points) count as ratio 0,
    which penalises under-filled results the way the paper's metric implies.
    """
    returned = np.asarray(returned_scores, dtype=np.float64)
    exact = np.asarray(exact_scores, dtype=np.float64)
    if exact.size == 0:
        raise ValueError("exact_scores must be non-empty")
    if returned.size > exact.size:
        raise ValueError(
            f"more returned scores ({returned.size}) than exact ones ({exact.size})"
        )
    k = exact.size
    ratios = np.zeros(k)
    matched = exact[: returned.size]
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = np.where(matched != 0.0, returned / matched, 1.0)
    # Negative exact scores flip the inequality; a returned score can also
    # exceed the exact one at its rank (it was found at a better rank) —
    # clip into [0, 1] so the aggregate stays interpretable.
    ratios[: returned.size] = np.clip(raw, 0.0, 1.0)
    return float(ratios.mean())


def recall(returned_ids: np.ndarray, exact_ids: np.ndarray) -> float:
    """``t/k``: fraction of the exact top-k that was returned."""
    exact_ids = np.asarray(exact_ids)
    if exact_ids.size == 0:
        raise ValueError("exact_ids must be non-empty")
    hit = len(set(np.asarray(returned_ids).tolist()) & set(exact_ids.tolist()))
    return hit / exact_ids.size


def guarantee_success(
    returned_scores: np.ndarray, exact_scores: np.ndarray, c: float
) -> float:
    """Fraction of ranks whose returned score meets the c-AMIP guarantee.

    A rank ``i`` succeeds when ``⟨o_i, q⟩ ≥ c·⟨o*_i, q⟩``.  ProMIPS promises
    success probability at least ``p`` — the property-style tests and the
    ablation bench check this directly.
    """
    returned = np.asarray(returned_scores, dtype=np.float64)
    exact = np.asarray(exact_scores, dtype=np.float64)
    if exact.size == 0:
        raise ValueError("exact_scores must be non-empty")
    if returned.size == 0:
        return 0.0
    matched = exact[: returned.size]
    ok = returned >= c * matched - 1e-9 * np.abs(matched)
    return float(np.sum(ok)) / exact.size
