"""Exact top-k ground truth with blocked evaluation and caching."""

from __future__ import annotations

import numpy as np

__all__ = ["GroundTruth"]


class GroundTruth:
    """Exact MIP answers for a fixed dataset/query workload.

    Computes all queries' exact top-``k_max`` in one blocked pass (memory
    stays bounded for big datasets) and serves per-query prefixes from the
    cache.

    Args:
        data: ``(n, d)`` dataset.
        queries: ``(n_q, d)`` queries.
        k_max: largest k any experiment will request (paper sweeps to 100).
        block: dataset rows per matmul block.
    """

    def __init__(
        self,
        data: np.ndarray,
        queries: np.ndarray,
        k_max: int = 100,
        block: int = 16384,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        queries = np.asarray(queries, dtype=np.float64)
        if data.ndim != 2 or queries.ndim != 2:
            raise ValueError("data and queries must be 2-D arrays")
        if data.shape[1] != queries.shape[1]:
            raise ValueError(
                f"dimension mismatch: data {data.shape[1]} vs queries {queries.shape[1]}"
            )
        n, n_q = data.shape[0], queries.shape[0]
        k_max = min(k_max, n)
        self.k_max = k_max
        self.n_queries = n_q

        top_ids = np.zeros((n_q, 0), dtype=np.int64)
        top_ips = np.zeros((n_q, 0), dtype=np.float64)
        for start in range(0, n, block):
            chunk = data[start : start + block]
            ips = queries @ chunk.T  # (n_q, chunk)
            ids = np.arange(start, start + chunk.shape[0], dtype=np.int64)
            cand_ips = np.hstack([top_ips, ips])
            cand_ids = np.hstack([top_ids, np.broadcast_to(ids, ips.shape)])
            keep = min(k_max, cand_ips.shape[1])
            part = np.argpartition(-cand_ips, keep - 1, axis=1)[:, :keep]
            rows = np.arange(n_q)[:, None]
            top_ips = cand_ips[rows, part]
            top_ids = cand_ids[rows, part]
        order = np.lexsort((top_ids, -top_ips), axis=1)
        rows = np.arange(n_q)[:, None]
        self._ids = top_ids[rows, order]
        self._ips = top_ips[rows, order]

    def topk(self, query_index: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``(ids, inner_products)`` of query ``query_index`` at ``k``."""
        if not 0 <= query_index < self.n_queries:
            raise IndexError(f"query_index {query_index} out of range")
        if not 1 <= k <= self.k_max:
            raise ValueError(f"k must be in [1, {self.k_max}], got {k}")
        return self._ids[query_index, :k], self._ips[query_index, :k]
