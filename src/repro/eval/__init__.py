"""Evaluation harness: metrics, ground truth, experiment runner, reporting."""

from repro.eval.ground_truth import GroundTruth
from repro.eval.harness import (
    PAGE_LATENCY_SECONDS,
    BuildReport,
    MethodRegistry,
    QueryReport,
    build_method,
    default_registry,
    run_method,
)
from repro.eval.metrics import guarantee_success, overall_ratio, recall
from repro.eval.reporting import format_series, format_table

__all__ = [
    "GroundTruth",
    "PAGE_LATENCY_SECONDS",
    "BuildReport",
    "MethodRegistry",
    "QueryReport",
    "build_method",
    "default_registry",
    "run_method",
    "guarantee_success",
    "overall_ratio",
    "recall",
    "format_series",
    "format_table",
]
