"""Norm Ranging-LSH (Yan et al., NeurIPS 2018) — benchmark method 2.

Simple-LSH normalizes by the *global* maximum norm, so datasets with
long-tailed 2-norm distributions squash most points onto a tiny cap of the
unit sphere ("excessive normalization").  Range-LSH fixes this by splitting
the dataset into sub-datasets by *norm rank* (32 equal-size partitions under
a 16-bit code length in the paper's experiments), applying Simple-LSH with
the *local* maximum norm ``U_j`` inside each, and sharing one set of SimHash
hyperplanes across sub-datasets.

Probing uses the single-table multi-probe strategy the paper credits for
Range-LSH's low page accesses: every (sub-dataset ``j``, Hamming level ``h``)
bucket has the inner-product upper bound

    ``bound(j, h) = U_j · ‖q‖ · cos(π·h / b)``

and buckets are probed in descending bound order, stopping when the running
k-th best inner product reaches ``c``·bound of the next bucket (or a
candidate budget runs out).  Data are organized on disk sequentially per
sub-dataset in descending ``U_j`` order, exactly as the reproduced paper
describes its Range-LSH setup.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.api import (
    BatchSearchMixin,
    SearchResult,
    SearchStats,
    validate_k,
    validate_query,
)
from repro.baselines.simhash import SimHash, hamming_distance
from repro.baselines.transforms import (
    simple_lsh_transform_data,
    simple_lsh_transform_query,
)
from repro.core.rng import resolve_rng
from repro.spec import IndexSpec, register_method
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorStore

__all__ = ["RangeLSH"]

_CODE_BYTES = 2  # 16-bit codes in the paper's configuration


@register_method("rangelsh", aliases=("Range-LSH", "RangeLSH", "NormRangingLSH"))
class RangeLSH(BatchSearchMixin):
    """Norm-ranging LSH with shared SimHash codes and bound-ordered probing.

    Args:
        data: ``(n, d)`` dataset.
        c: MIPS approximation ratio used by the probe-termination bound.
        n_parts: number of norm-rank sub-datasets (paper: 32).
        n_bits: SimHash code length (paper: 16).
        rng: generator for the hyperplanes.
        page_size: page size for the accounting.
        candidate_fraction: hard verification budget as a fraction of ``n``
            (the bound-based stop usually fires first).
        hyperplanes: pre-drawn hyperplane matrix (persistence path); when
            given, ``rng`` is unused.
    """

    def __init__(
        self,
        data: np.ndarray,
        rng: np.random.Generator | int | None = None,
        c: float = 0.9,
        n_parts: int = 32,
        n_bits: int = 16,
        page_size: int = DEFAULT_PAGE_SIZE,
        candidate_fraction: float = 0.1,
        hyperplanes: np.ndarray | None = None,
    ) -> None:
        if not 0.0 < c < 1.0:
            raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {c}")
        if n_parts <= 0:
            raise ValueError(f"n_parts must be positive, got {n_parts}")
        if not 0.0 < candidate_fraction <= 1.0:
            raise ValueError(
                f"candidate_fraction must be in (0, 1], got {candidate_fraction}"
            )
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self.c = float(c)
        self.n_bits = int(n_bits)
        self.page_size = int(page_size)
        self.candidate_fraction = float(candidate_fraction)

        norms = np.linalg.norm(data, axis=1)
        desc = np.argsort(-norms, kind="stable")
        self._subset_ids = [ids.astype(np.int64) for ids in np.array_split(desc, n_parts)
                            if ids.size]
        self.n_parts = len(self._subset_ids)
        self.simhash = SimHash(
            self.dim + 1, n_bits, resolve_rng(rng), hyperplanes=hyperplanes
        )

        self._subset_codes: list[np.ndarray] = []
        self._subset_max_norm = np.empty(self.n_parts)
        for j, ids in enumerate(self._subset_ids):
            local_max = float(norms[ids].max())
            transformed, used = simple_lsh_transform_data(data[ids], local_max or None)
            self._subset_max_norm[j] = used
            self._subset_codes.append(self.simhash.encode(transformed))

        # Disk layout: sub-datasets sequential, in descending max-norm order
        # (= descending norm order overall, since subsets are rank ranges).
        self._store = VectorStore(data, page_size, layout_order=desc, label="rangelsh")
        self._code_pages = [
            -(-ids.size * _CODE_BYTES // page_size) for ids in self._subset_ids
        ]

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "RangeLSH":
        """Build from a spec, e.g. ``rangelsh(c=0.9, n_parts=32, n_bits=16)``."""
        return cls(data, rng=resolve_rng(rng), **spec.params)

    def spec(self) -> IndexSpec:
        return IndexSpec(
            "rangelsh",
            {
                "c": self.c,
                "n_parts": self.n_parts,
                "n_bits": self.n_bits,
                "page_size": self.page_size,
                "candidate_fraction": self.candidate_fraction,
            },
        )

    def state(self) -> dict[str, np.ndarray]:
        """Data + shared hyperplanes; partition and codes re-derive exactly
        (the norm ranking and the sign projections are deterministic)."""
        return {"data": self._data, "hyperplanes": self.simhash.hyperplanes}

    @classmethod
    def from_state(cls, spec: IndexSpec, state: dict[str, np.ndarray]) -> "RangeLSH":
        return cls(
            np.asarray(state["data"], dtype=np.float64),
            hyperplanes=np.asarray(state["hyperplanes"], dtype=np.float64),
            **spec.params,
        )

    def index_size_bytes(self) -> int:
        """Bit vectors (b bits per point) + hyperplanes + subset metadata."""
        codes = self.n * _CODE_BYTES
        return codes + self.simhash.size_bytes() + self._subset_max_norm.nbytes

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """c-k-AMIP search by probing (subset, Hamming-level) buckets."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n)
        q_norm = float(np.linalg.norm(query))
        q_code = int(self.simhash.encode(simple_lsh_transform_query(query)))

        # Rank every non-empty (subset, hamming level) bucket by its bound.
        buckets: list[tuple[float, int, int]] = []  # (-bound, subset, level)
        hammings: list[np.ndarray] = []
        probed_subsets: set[int] = set()
        for j, codes in enumerate(self._subset_codes):
            hammings.append(hamming_distance(codes, q_code))
        levels = np.cos(np.pi * np.arange(self.n_bits + 1) / self.n_bits)
        for j in range(self.n_parts):
            counts = np.bincount(hammings[j], minlength=self.n_bits + 1)
            for h in np.flatnonzero(counts):
                bound = self._subset_max_norm[j] * q_norm * float(levels[h])
                buckets.append((-bound, j, h))
        buckets.sort(key=lambda t: t[0])

        heap: list[tuple[float, int]] = []
        reader = self._store.reader()
        candidates = 0
        code_pages = 0
        # The verification budget scales with both the dataset (fraction)
        # and the request size: k=100 needs proportionally more probes than
        # k=10 to keep the recall band of the paper's Fig. 6.
        budget = max(int(self.candidate_fraction * self.n), 12 * k)
        buckets_probed = 0

        for neg_bound, j, h in buckets:
            bound = -neg_bound
            # The SimHash cosine bound is an estimate, not a certificate: it
            # ranks the probing sequence (descending bound), while
            # termination is budget-driven as in the released Range-LSH
            # implementation.  A zero-or-negative bound can only be reached
            # once every positive-estimate bucket was probed.
            if len(heap) >= k and bound <= 0.0:
                break
            if candidates >= budget:
                break
            buckets_probed += 1
            if j not in probed_subsets:
                probed_subsets.add(j)
                code_pages += self._code_pages[j]
            member_mask = hammings[j] == h
            gids = self._subset_ids[j][member_mask]
            vecs = reader.get_many(gids)
            ips = vecs @ query
            candidates += len(gids)
            for gid, ip in zip(gids.tolist(), ips.tolist()):
                if len(heap) < k:
                    heapq.heappush(heap, (float(ip), gid))
                elif ip > heap[0][0]:
                    heapq.heapreplace(heap, (float(ip), gid))

        ranked = sorted(heap, key=lambda t: (-t[0], t[1]))
        ids = np.array([gid for _, gid in ranked], dtype=np.int64)
        ips = np.array([ip for ip, _ in ranked], dtype=np.float64)
        stats = SearchStats(
            pages=reader.pages_touched + code_pages,
            candidates=candidates,
            extras={
                "buckets_probed": buckets_probed,
                "subsets_probed": len(probed_subsets),
            },
        )
        return SearchResult(ids=ids, scores=ips, stats=stats)

    def __repr__(self) -> str:
        return (
            f"RangeLSH(n={self.n}, d={self.dim}, parts={self.n_parts}, "
            f"bits={self.n_bits})"
        )
