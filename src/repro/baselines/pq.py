"""PQ-based MIPS baseline — benchmark method 3.

The reproduced paper builds this baseline as: "we adopt the asymmetric
transformation in H2-ALSH to convert MIP search into NN search, and select
the latest product quantization-based NN search technique [19] (locally
optimized product quantization, Kalantidis & Avrithis, CVPR 2014)".  Its
configuration there: 16 subspaces, 256 centroids per subspace, 16 probed
cells.

Pieces implemented here:

* :class:`ProductQuantizer` — classic PQ: split dimensions into subspaces,
  one k-means codebook per subspace, ADC lookup tables at query time.
* :func:`train_opq_rotation` — parametric OPQ: alternate PQ fitting with an
  orthogonal Procrustes solve of ``min_R ‖XR − decode(encode(XR))‖_F``.
* :class:`PQBasedMIPS` — the full baseline: QNF transform → coarse k-means
  cells → per-cell rotation of residuals (locally optimized, as in LOPQ) →
  per-cell (or global-fallback) PQ codebooks → inverted lists on disk →
  ADC scan of probed cells → exact re-ranking of the short-list.

There is no accuracy guarantee — the paper includes it precisely as the
guarantee-free comparison point.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    BatchResult,
    SearchResult,
    SearchStats,
    validate_k,
    validate_query,
    validate_queries,
)
from repro.cluster.kmeans import assign_to_centers, kmeans
from repro.baselines.transforms import qnf_transform_data, qnf_transform_query
from repro.core.engine import batch_inner_products
from repro.core.rng import resolve_rng
from repro.spec import IndexSpec, register_method
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorStore

__all__ = ["ProductQuantizer", "train_opq_rotation", "PQBasedMIPS"]


class ProductQuantizer:
    """Product quantizer over ``n_subspaces`` dimension chunks.

    Args:
        dim: input dimensionality.
        n_subspaces: number of chunks (reduced automatically if ``dim`` is
            smaller).
        n_centroids: codebook size per subspace (capped at the training-set
            size during :meth:`fit`).
    """

    def __init__(self, dim: int, n_subspaces: int, n_centroids: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if n_subspaces <= 0 or n_centroids <= 0:
            raise ValueError("n_subspaces and n_centroids must be positive")
        self.dim = int(dim)
        self.n_subspaces = min(int(n_subspaces), self.dim)
        self.n_centroids = int(n_centroids)
        bounds = np.linspace(0, self.dim, self.n_subspaces + 1).astype(int)
        self._slices = [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]
        self.codebooks: list[np.ndarray] | None = None

    def fit(self, train: np.ndarray, rng: np.random.Generator) -> "ProductQuantizer":
        """Train one k-means codebook per subspace."""
        train = np.asarray(train, dtype=np.float64)
        if train.ndim != 2 or train.shape[1] != self.dim:
            raise ValueError(f"train must be (n, {self.dim}), got {train.shape}")
        ks = min(self.n_centroids, train.shape[0])
        self.codebooks = [
            kmeans(train[:, sl], ks, rng, max_iter=25).centers for sl in self._slices
        ]
        return self

    def _require_fit(self) -> list[np.ndarray]:
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer is not fitted; call fit() first")
        return self.codebooks

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Quantize points to ``(n, n_subspaces)`` centroid indices."""
        codebooks = self._require_fit()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        codes = np.empty((points.shape[0], self.n_subspaces), dtype=np.uint16)
        for s, sl in enumerate(self._slices):
            codes[:, s] = assign_to_centers(points[:, sl], codebooks[s])
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct points from codes."""
        codebooks = self._require_fit()
        codes = np.atleast_2d(codes)
        out = np.empty((codes.shape[0], self.dim))
        for s, sl in enumerate(self._slices):
            out[:, sl] = codebooks[s][codes[:, s]]
        return out

    def adc_tables(self, query: np.ndarray) -> list[np.ndarray]:
        """Per-subspace squared-distance lookup tables for a query."""
        codebooks = self._require_fit()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(f"query has dimension {query.shape[0]}, expected {self.dim}")
        tables = []
        for s, sl in enumerate(self._slices):
            diff = codebooks[s] - query[sl][None, :]
            tables.append(np.einsum("ij,ij->i", diff, diff))
        return tables

    def adc_distances(self, codes: np.ndarray, tables: list[np.ndarray]) -> np.ndarray:
        """Asymmetric (query-to-code) squared distances via the tables."""
        codes = np.atleast_2d(codes)
        dists = np.zeros(codes.shape[0])
        for s in range(self.n_subspaces):
            dists += tables[s][codes[:, s]]
        return dists

    def size_bytes(self) -> int:
        """Codebook footprint (float32 accounting, as stored on disk)."""
        if self.codebooks is None:
            return 0
        return sum(cb.size * 4 for cb in self.codebooks)


def train_opq_rotation(
    train: np.ndarray,
    n_subspaces: int,
    n_centroids: int,
    rng: np.random.Generator,
    n_iter: int = 3,
) -> np.ndarray:
    """Parametric OPQ: learn an orthogonal ``R`` minimizing quantization error.

    Alternates (1) fitting a PQ to ``train @ R`` and (2) solving the
    orthogonal Procrustes problem ``min_R ‖train·R − recon‖_F``, whose
    solution is ``R = U·Vᵀ`` for ``trainᵀ·recon = U·Σ·Vᵀ``.
    """
    train = np.asarray(train, dtype=np.float64)
    dim = train.shape[1]
    rotation = np.eye(dim)
    for _ in range(max(0, n_iter)):
        rotated = train @ rotation
        pq = ProductQuantizer(dim, n_subspaces, n_centroids).fit(rotated, rng)
        recon = pq.decode(pq.encode(rotated))
        u, _, vt = np.linalg.svd(train.T @ recon)
        rotation = u @ vt
    return rotation


class _Cell:
    __slots__ = ("center", "rotation", "pq", "codes", "member_ids", "list_pages")

    def __init__(self, center, rotation, pq, codes, member_ids, list_pages) -> None:
        self.center = center
        self.rotation = rotation
        self.pq = pq
        self.codes = codes
        self.member_ids = member_ids
        self.list_pages = list_pages


@register_method("pq", aliases=("PQ-Based", "PQBased", "PQBasedMIPS"))
class PQBasedMIPS:
    """The paper's PQ-based baseline: QNF reduction + LOPQ-style IVF search.

    Args:
        data: ``(n, d)`` dataset.
        rng: generator or seed.
        n_subspaces: PQ subspaces (paper: 16).
        n_centroids: codebook size per subspace (paper: 256).
        n_coarse: coarse-quantizer cells; ``None`` picks
            ``clip(n // 256, 8, 256)``.
        n_probe: probed cells per query (paper: 16).
        rerank: exact-verification short-list floor as a multiple of ``k``.
        rerank_fraction: additional short-list floor as a fraction of the
            ADC-scanned candidates.  The reproduced paper's PQ baseline
            verifies a large share of the probed points against the full
            vectors ("we have to check many PQ-encoded residuals, which
            incurs more page accesses"), which is what makes PQ the
            page-heaviest method in its Fig. 7 while staying the CPU-cheapest
            (Fig. 8).
        opq_iters: OPQ alternations per cell (0 disables local rotations).
        min_local_train: smallest cell that trains its own rotation+codebooks;
            smaller cells fall back to the global codebooks.
        page_size: page size for the accounting.
    """

    def __init__(
        self,
        data: np.ndarray,
        rng: np.random.Generator | int | None = None,
        n_subspaces: int = 16,
        n_centroids: int = 256,
        n_coarse: int | None = None,
        n_probe: int = 16,
        rerank: int = 10,
        rerank_fraction: float = 0.5,
        opq_iters: int = 2,
        min_local_train: int = 256,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        rng = resolve_rng(rng)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self.n_probe = int(n_probe)
        self.rerank = int(rerank)
        self.rerank_fraction = float(rerank_fraction)
        self.page_size = int(page_size)
        self.n_centroids = int(n_centroids)
        self.opq_iters = int(opq_iters)
        self.min_local_train = int(min_local_train)

        transformed, self.max_norm = qnf_transform_data(data)
        tdim = transformed.shape[1]
        if n_coarse is None:
            n_coarse = int(np.clip(self.n // 256, 8, 256))
        coarse = kmeans(transformed, n_coarse, rng, max_iter=25)
        self.coarse_centers = coarse.centers
        self.n_coarse = coarse.n_clusters

        # Global fallback codebooks over all residuals.
        residuals = transformed - coarse.centers[coarse.labels]
        self._global_pq = ProductQuantizer(tdim, n_subspaces, n_centroids).fit(
            residuals, rng
        )
        identity = np.eye(tdim)

        self.cells: list[_Cell] = []
        layout_chunks: list[np.ndarray] = []
        code_bytes_per_point = self._global_pq.n_subspaces * 2 + 4  # codes + id
        for j in range(self.n_coarse):
            member_ids = coarse.cluster_members(j)
            cell_res = residuals[member_ids]
            if member_ids.size >= min_local_train and opq_iters > 0:
                rotation = train_opq_rotation(
                    cell_res, n_subspaces, n_centroids, rng, n_iter=opq_iters
                )
                pq = ProductQuantizer(tdim, n_subspaces, n_centroids).fit(
                    cell_res @ rotation, rng
                )
            else:
                rotation = identity
                pq = self._global_pq
            codes = pq.encode(cell_res @ rotation)
            list_pages = -(-int(member_ids.size) * code_bytes_per_point // page_size)
            self.cells.append(
                _Cell(
                    center=self.coarse_centers[j],
                    rotation=rotation,
                    pq=pq,
                    codes=codes,
                    member_ids=member_ids.astype(np.int64),
                    list_pages=max(1, list_pages),
                )
            )
            layout_chunks.append(member_ids)

        layout = np.concatenate(layout_chunks).astype(np.int64)
        self._store = VectorStore(data, page_size, layout_order=layout, label="pq-orig")
        # ‖c_j‖² for the norm-expanded coarse scan of the batch path.
        self._center_norm_sq = np.einsum(
            "ij,ij->i", self.coarse_centers, self.coarse_centers
        )

    @property
    def n_subspaces(self) -> int:
        return self._global_pq.n_subspaces

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "PQBasedMIPS":
        """Build from a spec, e.g. ``pq(n_subspaces=16, n_probe=16)``."""
        return cls(data, rng=resolve_rng(rng), **spec.params)

    def spec(self) -> IndexSpec:
        """Round-trippable config (``n_coarse`` resolved to the actual count)."""
        return IndexSpec(
            "pq",
            {
                "n_subspaces": self.n_subspaces,
                "n_centroids": self.n_centroids,
                "n_coarse": self.n_coarse,
                "n_probe": self.n_probe,
                "rerank": self.rerank,
                "rerank_fraction": self.rerank_fraction,
                "opq_iters": self.opq_iters,
                "min_local_train": self.min_local_train,
                "page_size": self.page_size,
            },
        )

    def state(self) -> dict[str, np.ndarray]:
        """Every trained artifact: coarse centroids, codebooks (global and
        per-cell), local rotations, codes, and inverted lists.

        PQ training is the one rng-heavy build in the repository, so unlike
        the hash-based methods its state stores the trained outputs rather
        than the seeds that produced them.
        """
        state: dict[str, np.ndarray] = {
            "data": self._data,
            "coarse_centers": self.coarse_centers,
            "cell_uses_global": np.array(
                [cell.pq is self._global_pq for cell in self.cells], dtype=np.uint8
            ),
        }
        for s, codebook in enumerate(self._global_pq.codebooks):
            state[f"global_cb{s}"] = codebook
        for j, cell in enumerate(self.cells):
            state[f"cell{j}_members"] = cell.member_ids
            state[f"cell{j}_codes"] = cell.codes
            if cell.pq is not self._global_pq:
                state[f"cell{j}_rotation"] = cell.rotation
                for s, codebook in enumerate(cell.pq.codebooks):
                    state[f"cell{j}_cb{s}"] = codebook
        return state

    @classmethod
    def from_state(cls, spec: IndexSpec, state: dict[str, np.ndarray]) -> "PQBasedMIPS":
        """Reconstruct without re-training (bit-identical ADC scans)."""
        params = dict(spec.params)
        self = cls.__new__(cls)
        data = np.asarray(state["data"], dtype=np.float64)
        self._data = data
        self.n, self.dim = data.shape
        self.n_probe = int(params.get("n_probe", 16))
        self.rerank = int(params.get("rerank", 10))
        self.rerank_fraction = float(params.get("rerank_fraction", 0.5))
        self.page_size = int(params.get("page_size", DEFAULT_PAGE_SIZE))
        self.n_centroids = int(params.get("n_centroids", 256))
        self.opq_iters = int(params.get("opq_iters", 2))
        self.min_local_train = int(params.get("min_local_train", 256))
        n_subspaces = int(params.get("n_subspaces", 16))

        # QNF scale, exactly as qnf_transform_data derives it.
        max_norm = float(np.linalg.norm(data, axis=1).max())
        self.max_norm = max_norm if max_norm > 0 else 1.0

        self.coarse_centers = np.asarray(state["coarse_centers"], dtype=np.float64)
        self.n_coarse = self.coarse_centers.shape[0]
        tdim = self.coarse_centers.shape[1]

        def load_pq(prefix: str) -> ProductQuantizer:
            pq = ProductQuantizer(tdim, n_subspaces, self.n_centroids)
            pq.codebooks = [
                np.asarray(state[f"{prefix}cb{s}"], dtype=np.float64)
                for s in range(pq.n_subspaces)
            ]
            return pq

        self._global_pq = load_pq("global_")
        uses_global = np.asarray(state["cell_uses_global"]).astype(bool)
        identity = np.eye(tdim)
        code_bytes_per_point = self._global_pq.n_subspaces * 2 + 4
        self.cells = []
        layout_chunks = []
        for j in range(self.n_coarse):
            member_ids = np.asarray(state[f"cell{j}_members"], dtype=np.int64)
            codes = np.asarray(state[f"cell{j}_codes"], dtype=np.uint16)
            if uses_global[j]:
                rotation, pq = identity, self._global_pq
            else:
                rotation = np.asarray(state[f"cell{j}_rotation"], dtype=np.float64)
                pq = load_pq(f"cell{j}_")
            list_pages = -(-int(member_ids.size) * code_bytes_per_point // self.page_size)
            self.cells.append(
                _Cell(
                    center=self.coarse_centers[j],
                    rotation=rotation,
                    pq=pq,
                    codes=codes,
                    member_ids=member_ids,
                    list_pages=max(1, list_pages),
                )
            )
            layout_chunks.append(member_ids)

        layout = np.concatenate(layout_chunks).astype(np.int64)
        self._store = VectorStore(
            data, self.page_size, layout_order=layout, label="pq-orig"
        )
        self._center_norm_sq = np.einsum(
            "ij,ij->i", self.coarse_centers, self.coarse_centers
        )
        return self

    def index_size_bytes(self) -> int:
        """Rotations + codebooks + codes + coarse centroids — the "many local
        rotation matrices and cells" the paper blames for PQ's index size."""
        total = self.coarse_centers.size * 4
        counted_global = False
        for cell in self.cells:
            if cell.pq is self._global_pq:
                if not counted_global:
                    total += self._global_pq.size_bytes()
                    counted_global = True
            else:
                total += cell.pq.size_bytes()
                total += cell.rotation.size * 4
            total += cell.codes.size * 2 + cell.member_ids.size * 4
        return total

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """ADC search over the probed cells, then exact re-ranking."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        return self.search_many(query[None, :], k=k)[0]

    def search_many(self, queries: np.ndarray, k: int = 1) -> BatchResult:
        """ADC search for a whole batch (bit-identical to looping ``search``).

        Batch-wide work runs vectorized: the coarse scan is one norm-expanded
        GEMM over all queries, and every probed cell computes its ADC
        distances for *all* queries that probe it at once — one lookup-table
        gather per subspace per cell instead of one per query.  The exact
        re-ranking of each query's short-list stays per query (short-lists
        rarely overlap).
        """
        k = validate_k(k)
        queries = validate_queries(queries, self.dim)
        k = min(k, self.n)
        # Bound peak memory: the per-cell ADC accumulators scale with
        # (queries in flight) × (cell population), so the batch is processed
        # in blocks — bit-identity is unaffected (all scoring is per query
        # or per (cell, query)).
        block = 256
        results: list[SearchResult] = []
        for start in range(0, queries.shape[0], block):
            results.extend(self._search_block(queries[start : start + block], k))
        return BatchResult.from_results(results)

    def _search_block(self, queries: np.ndarray, k: int) -> list[SearchResult]:
        n_q = queries.shape[0]
        q_ts = np.stack([qnf_transform_query(q, self.max_norm) for q in queries])

        # Coarse scan: ‖c‖² − 2⟨c, q⟩ + ‖q‖² through one shape-stable GEMM.
        coarse_ip = batch_inner_products(self.coarse_centers, q_ts)  # (n_c, n_q)
        qt_norm_sq = np.array([float(q_t @ q_t) for q_t in q_ts])
        coarse_d = self._center_norm_sq[:, None] - 2.0 * coarse_ip + qt_norm_sq[None, :]
        n_probe = min(self.n_probe, self.n_coarse)
        probe_order = np.argsort(coarse_d, axis=0, kind="stable")[:n_probe]
        probes = [probe_order[:, i] for i in range(n_q)]

        # Group queries by probed cell, then run each cell's ADC scan for all
        # of its queries in one accumulation pass over the inverted list.
        cell_queries: dict[int, list[int]] = {}
        for i, probe in enumerate(probes):
            for j in probe.tolist():
                if self.cells[j].member_ids.size:
                    cell_queries.setdefault(j, []).append(i)

        cell_dists: dict[tuple[int, int], np.ndarray] = {}
        for j, q_idx in cell_queries.items():
            cell = self.cells[j]
            codes = cell.codes
            tables = []
            for i in q_idx:
                q_res = (q_ts[i] - cell.center) @ cell.rotation
                tables.append(cell.pq.adc_tables(q_res))
            acc = np.zeros((len(q_idx), codes.shape[0]))
            for s in range(cell.pq.n_subspaces):
                table_s = np.stack([t[s] for t in tables])  # (n_qj, k_s)
                acc += table_s[:, codes[:, s]]
            for row, i in enumerate(q_idx):
                cell_dists[(j, i)] = acc[row]

        results: list[SearchResult] = []
        for i in range(n_q):
            query = queries[i]
            approx_ids: list[np.ndarray] = []
            approx_dists: list[np.ndarray] = []
            code_pages = 0
            for j in probes[i].tolist():
                cell = self.cells[j]
                if cell.member_ids.size == 0:
                    continue
                code_pages += cell.list_pages
                approx_ids.append(cell.member_ids)
                approx_dists.append(cell_dists[(j, i)])

            if approx_ids:
                all_ids = np.concatenate(approx_ids)
                all_dists = np.concatenate(approx_dists)
            else:  # pragma: no cover - probe always finds non-empty cells
                all_ids = np.empty(0, dtype=np.int64)
                all_dists = np.empty(0)

            shortlist = max(
                self.rerank * k, int(self.rerank_fraction * all_ids.size), k
            )
            shortlist = min(shortlist, all_ids.size)
            part = (
                np.argpartition(all_dists, shortlist - 1)[:shortlist]
                if shortlist
                else []
            )
            reader = self._store.reader()
            short_ids = all_ids[part]
            vecs = reader.get_many(short_ids)
            ips = vecs @ query
            order = np.argsort(-ips, kind="stable")[:k]
            stats = SearchStats(
                pages=code_pages + reader.pages_touched,
                candidates=int(all_ids.size),
                extras={"cells_probed": int(len(probes[i])), "reranked": int(shortlist)},
            )
            results.append(
                SearchResult(ids=short_ids[order], scores=ips[order], stats=stats)
            )
        return results

    def __repr__(self) -> str:
        return (
            f"PQBasedMIPS(n={self.n}, d={self.dim}, cells={self.n_coarse}, "
            f"subspaces={self._global_pq.n_subspaces}, probe={self.n_probe})"
        )
