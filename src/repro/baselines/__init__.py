"""Benchmark methods from the paper's evaluation (§VIII-A-1).

* :class:`ExactMIPS` — brute-force ground truth.
* :class:`H2ALSH` — QNF transform + homocentric hypersphere shells + QALSH.
* :class:`RangeLSH` — norm-ranging subsets + Simple-LSH/SimHash codes.
* :class:`PQBasedMIPS` — QNF transform + LOPQ-style IVF product quantization.
* :class:`SimHashMIPS` — Simple-LSH + SimHash codes with exact re-ranking
  (off-paper; the lightest-index comparison point).

Exact, PQ and SimHash implement natively vectorized ``search_many`` batch
paths; the rest inherit the generic fallback from the API layer.
"""

from repro.baselines.alsh import L2ALSH, SignALSH, simple_lsh
from repro.baselines.e2lsh import E2LSH
from repro.baselines.exact import ExactMIPS, exact_topk
from repro.baselines.h2alsh import H2ALSH
from repro.baselines.pq import PQBasedMIPS, ProductQuantizer, train_opq_rotation
from repro.baselines.qalsh import (
    QALSH,
    QALSHParams,
    derive_qalsh_params,
    qalsh_collision_probability,
)
from repro.baselines.rangelsh import RangeLSH
from repro.baselines.simhash import (
    SimHash,
    SimHashMIPS,
    hamming_distance,
    hamming_to_cosine,
)
from repro.baselines.transforms import (
    qnf_distance_to_ip,
    qnf_transform_data,
    qnf_transform_query,
    simple_lsh_transform_data,
    simple_lsh_transform_query,
)

__all__ = [
    "L2ALSH",
    "SignALSH",
    "simple_lsh",
    "E2LSH",
    "ExactMIPS",
    "exact_topk",
    "H2ALSH",
    "PQBasedMIPS",
    "ProductQuantizer",
    "train_opq_rotation",
    "QALSH",
    "QALSHParams",
    "derive_qalsh_params",
    "qalsh_collision_probability",
    "RangeLSH",
    "SimHash",
    "SimHashMIPS",
    "hamming_distance",
    "hamming_to_cosine",
    "qnf_distance_to_ip",
    "qnf_transform_data",
    "qnf_transform_query",
    "simple_lsh_transform_data",
    "simple_lsh_transform_query",
]
