"""First-generation ALSH baselines from the paper's related work (§IX).

These are the methods whose *transformation errors* motivated H2-ALSH and,
in turn, ProMIPS; having them executable makes the §IX narrative testable:

* **L2-ALSH** (Shrivastava & Li, NIPS 2014): asymmetric MIPS→NNS reduction
  ``P(x) = [Ux̂ ; ‖Ux̂‖² ; ‖Ux̂‖⁴ ; … m terms]``,
  ``Q(q) = [q/‖q‖ ; ½ ; ½ ; …]``, solved with E2LSH.  The appended powers
  vanish only asymptotically — the residual ``‖Ux̂‖^{2^{m+1}}`` is the
  *transformation error*, and scaling everything into the unit ball causes
  the *distortion error* (§IX: "the Euclidean distance between most data
  points and the query point will be close to each other").
  Defaults m = 3, U = 0.83 follow the original paper.

* **Sign-ALSH** (Shrivastava & Li, UAI 2015): the MCS variant
  ``P(x) = [Ux̂ ; ½−‖Ux̂‖² ; ½−‖Ux̂‖⁴ ; …]``, ``Q(q) = [q/‖q‖ ; 0 ; …]``,
  solved with SimHash.  Defaults m = 2, U = 0.75.

* **Simple-LSH** (Neyshabur & Srebro, ICML 2015): the symmetric reduction
  already used inside Range-LSH, here with a single *global* maximum norm —
  exhibiting the long-tail excessive-normalization problem Range-LSH fixes
  (it is literally :class:`repro.baselines.rangelsh.RangeLSH` with one
  partition).

All three return exact inner products for their candidates, so quality
differences against ProMIPS come purely from candidate selection.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.api import (
    BatchSearchMixin,
    SearchResult,
    SearchStats,
    validate_k,
    validate_query,
)
from repro.baselines.e2lsh import E2LSH
from repro.baselines.rangelsh import RangeLSH
from repro.baselines.simhash import SimHash, hamming_distance
from repro.core.rng import resolve_rng
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorStore

__all__ = ["L2ALSH", "SignALSH", "simple_lsh"]


def _scaled_unit(data: np.ndarray, u: float) -> tuple[np.ndarray, float]:
    """Scale the dataset into the radius-``u`` ball; returns (scaled, factor)."""
    max_norm = float(np.linalg.norm(data, axis=1).max())
    factor = u / max_norm if max_norm > 0 else 1.0
    return data * factor, factor


def _power_tail(scaled: np.ndarray, m: int) -> np.ndarray:
    """``[‖x‖² ; ‖x‖⁴ ; … ‖x‖^{2^m}]`` columns of the ALSH transforms."""
    norms_sq = np.einsum("ij,ij->i", scaled, scaled)
    cols = []
    power = norms_sq.copy()
    for _ in range(m):
        cols.append(power.copy())
        power = power * power
    return np.stack(cols, axis=1)


class L2ALSH(BatchSearchMixin):
    """L2-ALSH(U, m) + E2LSH — the NIPS 2014 baseline.

    Args:
        data: ``(n, d)`` dataset.
        rng: generator or seed.
        m: number of appended power terms (paper default 3).
        u: scaling radius (paper default 0.83).
        n_tables / n_bits: E2LSH configuration.
        page_size: page accounting.
    """

    def __init__(
        self,
        data: np.ndarray,
        rng: np.random.Generator | int | None = None,
        m: int = 3,
        u: float = 0.83,
        n_tables: int = 16,
        n_bits: int = 6,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if not 0.0 < u < 1.0:
            raise ValueError(f"U must lie in (0, 1), got {u}")
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        rng = resolve_rng(rng)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self.m = int(m)
        self.u = float(u)

        scaled, self._factor = _scaled_unit(data, u)
        transformed = np.hstack([scaled, _power_tail(scaled, m)])
        self._lsh = E2LSH(transformed, rng, n_tables=n_tables, n_bits=n_bits,
                          page_size=page_size)
        self._store = VectorStore(data, page_size, label="l2alsh")

    def index_size_bytes(self) -> int:
        return self._lsh.index_size_bytes()

    def _transform_query(self, query: np.ndarray) -> np.ndarray:
        q_norm = float(np.linalg.norm(query))
        unit = query / q_norm if q_norm > 0 else query
        return np.concatenate([unit, np.full(self.m, 0.5)])

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """c-k-AMIP via E2LSH collisions + exact verification."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n)
        index_pages = [0]
        cands = self._lsh.candidates(self._transform_query(query), index_pages)
        reader = self._store.reader()
        heap: list[tuple[float, int]] = []
        if cands.size:
            ips = reader.get_many(cands) @ query
            for pid, ip in zip(cands.tolist(), ips.tolist()):
                if len(heap) < k:
                    heapq.heappush(heap, (ip, pid))
                elif ip > heap[0][0]:
                    heapq.heapreplace(heap, (ip, pid))
        ranked = sorted(heap, key=lambda t: (-t[0], t[1]))
        stats = SearchStats(
            pages=index_pages[0] + reader.pages_touched,
            candidates=int(cands.size),
        )
        return SearchResult(
            ids=np.array([pid for _, pid in ranked], dtype=np.int64),
            scores=np.array([ip for ip, _ in ranked]),
            stats=stats,
        )

    def __repr__(self) -> str:
        return f"L2ALSH(n={self.n}, d={self.dim}, m={self.m}, U={self.u})"


class SignALSH(BatchSearchMixin):
    """Sign-ALSH(U, m) + SimHash — the UAI 2015 baseline.

    Args:
        data: ``(n, d)`` dataset.
        rng: generator or seed.
        m: appended terms (paper default 2).
        u: scaling radius (paper default 0.75).
        n_bits: SimHash code length.
        candidate_fraction: verification budget.
        page_size: page accounting.
    """

    def __init__(
        self,
        data: np.ndarray,
        rng: np.random.Generator | int | None = None,
        m: int = 2,
        u: float = 0.75,
        n_bits: int = 24,
        candidate_fraction: float = 0.1,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if not 0.0 < u < 1.0:
            raise ValueError(f"U must lie in (0, 1), got {u}")
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        rng = resolve_rng(rng)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self.m = int(m)
        self.u = float(u)
        self.candidate_fraction = float(candidate_fraction)

        scaled, self._factor = _scaled_unit(data, u)
        transformed = np.hstack([scaled, 0.5 - _power_tail(scaled, m)])
        self.simhash = SimHash(self.dim + m, n_bits, rng)
        self._codes = self.simhash.encode(transformed)
        self._store = VectorStore(data, page_size, label="signalsh")
        self._code_pages = -(-self.n * 8 // page_size)

    def index_size_bytes(self) -> int:
        return self.n * 8 + self.simhash.size_bytes()

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """c-k-AMIP via Hamming ranking + exact verification."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n)
        q_norm = float(np.linalg.norm(query))
        unit = query / q_norm if q_norm > 0 else query
        q_code = int(self.simhash.encode(np.concatenate([unit, np.zeros(self.m)])))
        hams = hamming_distance(self._codes, q_code)
        budget = max(int(self.candidate_fraction * self.n), 12 * k)
        order = np.argsort(hams, kind="stable")[:budget]
        reader = self._store.reader()
        ips = reader.get_many(order) @ query
        top = np.argsort(-ips, kind="stable")[:k]
        stats = SearchStats(
            pages=self._code_pages + reader.pages_touched,
            candidates=int(order.size),
        )
        return SearchResult(ids=order[top], scores=ips[top], stats=stats)

    def __repr__(self) -> str:
        return f"SignALSH(n={self.n}, d={self.dim}, m={self.m}, U={self.u})"


def simple_lsh(
    data: np.ndarray,
    rng: np.random.Generator | int | None = None,
    n_bits: int = 16,
    page_size: int = DEFAULT_PAGE_SIZE,
    candidate_fraction: float = 0.1,
) -> RangeLSH:
    """Simple-LSH = Range-LSH with a single global partition.

    One global maximum norm normalizes everything — reproducing the
    excessive-normalization weakness on long-tailed data that Range-LSH's
    norm-ranked subsets repair.
    """
    return RangeLSH(
        data,
        rng=rng,
        n_parts=1,
        n_bits=n_bits,
        page_size=page_size,
        candidate_fraction=candidate_fraction,
    )
