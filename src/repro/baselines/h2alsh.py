"""H2-ALSH (Huang et al., KDD 2018) — benchmark method 1.

H2-ALSH decomposes the dataset into *homocentric hypersphere* shells by norm:
shell ``S_j`` holds the points with ``‖o‖ ∈ (M_j/c0, M_j]`` where ``M_j`` is
the largest remaining norm and ``c0`` the interval ratio (fixed to 2.0 in the
paper's experiments).  Each shell is QNF-transformed with its own ``M_j`` —
eliminating both transformation and distortion error inside the shell — and
indexed with a disk-resident :class:`repro.baselines.qalsh.QALSH` for NN
search in ``R^{d+1}``.

A query walks the shells in descending ``M_j``; since every inner product in
shell ``j`` is at most ``M_j·‖q‖``, the walk stops as soon as the running
k-th best inner product reaches ``c`` times that upper bound.  Inner products
are recovered exactly from transformed distances via
``⟨o, q⟩ = (2M² − dis²(õ, q̃))·‖q‖ / (2M)``, so no second lookup of the
original vectors is needed — matching the original implementation, where the
transformed shells are what lives on disk.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.api import (
    BatchSearchMixin,
    SearchResult,
    SearchStats,
    validate_k,
    validate_query,
)
from repro.baselines.qalsh import QALSH, derive_qalsh_params
from repro.baselines.transforms import (
    qnf_distance_to_ip,
    qnf_transform_data,
    qnf_transform_query,
)
from repro.core.rng import resolve_rng
from repro.spec import IndexSpec, register_method
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorStore

__all__ = ["H2ALSH"]


class _Shell:
    __slots__ = ("max_norm", "global_ids", "qalsh", "store")

    def __init__(self, max_norm: float, global_ids: np.ndarray, qalsh: QALSH,
                 store: VectorStore) -> None:
        self.max_norm = max_norm
        self.global_ids = global_ids
        self.qalsh = qalsh
        self.store = store


@register_method("h2alsh", aliases=("H2-ALSH", "H2ALSH"))
class H2ALSH(BatchSearchMixin):
    """Homocentric-hypersphere ALSH with QNF transform and QALSH shells.

    Args:
        data: ``(n, d)`` dataset.
        c: MIPS approximation ratio used by the early-termination bound.
        c0: norm-interval ratio of the hypersphere partition (paper: 2.0).
        rng: generator (projections inherit determinism from it).
        page_size: disk page size for the accounting.
        max_shells: safety cap; the last shell absorbs any remainder.
        min_shell_size: shells smaller than this are merged into the next one
            (QALSH parameter derivation degenerates on singleton shells).
        shell_vectors: pre-drawn QALSH projection vectors, one array per
            shell (persistence path); when given, ``rng`` is unused.
    """

    def __init__(
        self,
        data: np.ndarray,
        rng: np.random.Generator | int | None = None,
        c: float = 0.9,
        c0: float = 2.0,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_shells: int = 64,
        min_shell_size: int = 16,
        shell_vectors: list[np.ndarray] | None = None,
    ) -> None:
        if not 0.0 < c < 1.0:
            raise ValueError(f"approximation ratio must satisfy 0 < c < 1, got {c}")
        if c0 <= 1.0:
            raise ValueError(f"c0 must exceed 1, got {c0}")
        rng = resolve_rng(rng)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self.c = float(c)
        self.c0 = float(c0)
        self.page_size = int(page_size)
        self.max_shells = int(max_shells)
        self.min_shell_size = int(min_shell_size)

        norms = np.linalg.norm(data, axis=1)
        desc = np.argsort(-norms, kind="stable")
        self.shells: list[_Shell] = []
        start = 0
        while start < self.n:
            max_norm = float(norms[desc[start]])
            if len(self.shells) == max_shells - 1 or max_norm <= 0.0:
                end = self.n
            else:
                lower = max_norm / self.c0
                end = start + int(np.searchsorted(-norms[desc[start:]], -lower, side="left"))
                end = max(end, start + 1)
                if end - start < min_shell_size:
                    end = min(self.n, start + min_shell_size)
                if self.n - end < min_shell_size:
                    end = self.n
            ids = desc[start:end]
            shell_data = data[ids]
            transformed, used_norm = qnf_transform_data(shell_data, max_norm or None)
            params = derive_qalsh_params(len(ids), c=self.c0)
            vectors = None
            if shell_vectors is not None:
                if len(self.shells) >= len(shell_vectors):
                    raise ValueError(
                        f"got {len(shell_vectors)} shell_vectors but the data "
                        f"partitions into more shells"
                    )
                vectors = shell_vectors[len(self.shells)]
            qalsh = QALSH(
                transformed, rng, params=params, page_size=page_size, vectors=vectors
            )
            store = VectorStore(
                transformed, page_size, label=f"h2alsh-shell{len(self.shells)}"
            )
            self.shells.append(
                _Shell(max_norm=used_norm, global_ids=ids.astype(np.int64),
                       qalsh=qalsh, store=store)
            )
            start = end
        if shell_vectors is not None and len(shell_vectors) != len(self.shells):
            raise ValueError(
                f"got {len(shell_vectors)} shell_vectors for {len(self.shells)} shells"
            )

    @property
    def n_shells(self) -> int:
        return len(self.shells)

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "H2ALSH":
        """Build from a spec, e.g. ``h2alsh(c=0.9, c0=2.0)``."""
        return cls(data, rng=resolve_rng(rng), **spec.params)

    def spec(self) -> IndexSpec:
        return IndexSpec(
            "h2alsh",
            {
                "c": self.c,
                "c0": self.c0,
                "page_size": self.page_size,
                "max_shells": self.max_shells,
                "min_shell_size": self.min_shell_size,
            },
        )

    def state(self) -> dict[str, np.ndarray]:
        """Data + each shell's QALSH projection vectors.

        The shell partition, QNF transforms and hash-table orderings are
        deterministic given the data and the spec, so the vectors are the
        only randomness to pin down.
        """
        state: dict[str, np.ndarray] = {"data": self._data}
        for j, shell in enumerate(self.shells):
            state[f"shell{j}_vectors"] = shell.qalsh.projection_vectors
        return state

    @classmethod
    def from_state(cls, spec: IndexSpec, state: dict[str, np.ndarray]) -> "H2ALSH":
        shell_vectors = []
        while f"shell{len(shell_vectors)}_vectors" in state:
            shell_vectors.append(
                np.asarray(state[f"shell{len(shell_vectors)}_vectors"], np.float64)
            )
        return cls(
            np.asarray(state["data"], dtype=np.float64),
            shell_vectors=shell_vectors,
            **spec.params,
        )

    def index_size_bytes(self) -> int:
        """All shells' hash tables — the "large number of hash tables" cost."""
        return sum(shell.qalsh.index_size_bytes() for shell in self.shells)

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """c-k-AMIP search over the shells with early termination."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        k = min(k, self.n)
        q_norm = float(np.linalg.norm(query))

        heap: list[tuple[float, int]] = []  # (ip, global_id) min-heap
        index_pages = [0]
        data_pages = 0
        candidates = 0
        shells_probed = 0

        for shell in self.shells:
            upper_bound = shell.max_norm * q_norm
            if len(heap) >= k and heap[0][0] >= self.c * upper_bound:
                break
            shells_probed += 1
            q_t = qnf_transform_query(query, shell.max_norm)
            reader = shell.store.reader()
            local_ids, dists, verified = shell.qalsh.search(
                q_t, k, reader=reader, index_pages=index_pages
            )
            data_pages += reader.pages_touched
            candidates += verified
            for local_id, dist in zip(local_ids.tolist(), dists.tolist()):
                ip = qnf_distance_to_ip(dist * dist, shell.max_norm, q_norm)
                gid = int(shell.global_ids[local_id])
                if len(heap) < k:
                    heapq.heappush(heap, (ip, gid))
                elif ip > heap[0][0]:
                    heapq.heapreplace(heap, (ip, gid))

        ranked = sorted(heap, key=lambda t: (-t[0], t[1]))
        ids = np.array([gid for _, gid in ranked], dtype=np.int64)
        # Report exact inner products for the returned ids (the QNF inversion
        # is exact up to floating point; recomputing keeps metrics honest).
        ips = self._data[ids] @ query if len(ids) else np.empty(0)
        order = np.argsort(-ips, kind="stable")
        stats = SearchStats(
            pages=index_pages[0] + data_pages,
            candidates=candidates,
            extras={"shells_probed": shells_probed, "n_shells": self.n_shells},
        )
        return SearchResult(ids=ids[order], scores=ips[order], stats=stats)

    def __repr__(self) -> str:
        return f"H2ALSH(n={self.n}, d={self.dim}, shells={self.n_shells}, c0={self.c0})"
