"""E2LSH — classic (K, L) p-stable locality-sensitive hashing for Euclidean
NN search (Datar et al., SoCG 2004).

The first generation of ALSH methods (L2-ALSH, and the comparison row of the
paper's Table II) reduce MIPS to Euclidean NN and solve it with E2LSH, so a
faithful reproduction of those baselines needs the real substrate:

* ``L`` independent hash tables;
* each table hashes a point to a ``K``-tuple of buckets
  ``h_i(x) = ⌊(a_i·x + b_i)/w⌋`` with ``a_i ~ N(0, I)``, ``b_i ~ U[0, w)``;
* a query probes its own bucket in every table and verifies the union of
  colliding points.

This is exactly the "large number of hash tables" architecture whose index
footprint and page behaviour ProMIPS's single B+-tree is designed to avoid.
"""

from __future__ import annotations

import numpy as np

from repro.api import validate_k
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorReader

__all__ = ["E2LSH"]


class E2LSH:
    """(K, L) p-stable LSH index over a fixed point set.

    Args:
        points: ``(n, d)`` points to index.
        rng: generator for hash parameters.
        n_tables: number of tables ``L``.
        n_bits: hash functions per table ``K``.
        bucket_width: ``w``; ``None`` derives it from a sample of pairwise
            distances (w ≈ the median nearest-ish distance keeps buckets
            informative at any data scale).
        page_size: page size for bucket-read accounting.
    """

    def __init__(
        self,
        points: np.ndarray,
        rng: np.random.Generator,
        n_tables: int = 8,
        n_bits: int = 8,
        bucket_width: float | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty 2-D array, got {points.shape}")
        if n_tables <= 0 or n_bits <= 0:
            raise ValueError("n_tables and n_bits must be positive")
        self._points = points
        self.n, self.dim = points.shape
        self.n_tables = int(n_tables)
        self.n_bits = int(n_bits)
        self.page_size = int(page_size)

        if bucket_width is None:
            sample = points[rng.choice(self.n, size=min(self.n, 256), replace=False)]
            diffs = sample[:, None, :] - sample[None, :, :]
            dists = np.sqrt((diffs**2).sum(axis=2))
            positive = dists[dists > 0]
            bucket_width = float(np.median(positive)) / 2.0 if positive.size else 1.0
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.bucket_width = float(bucket_width)

        self._vectors = rng.standard_normal((self.n_tables, self.n_bits, self.dim))
        self._offsets = rng.uniform(0.0, self.bucket_width, size=(self.n_tables, self.n_bits))
        self._tables: list[dict[tuple, np.ndarray]] = []
        for t in range(self.n_tables):
            codes = np.floor(
                (points @ self._vectors[t].T + self._offsets[t]) / self.bucket_width
            ).astype(np.int64)
            buckets: dict[tuple, list[int]] = {}
            for pid, code in enumerate(map(tuple, codes)):
                buckets.setdefault(code, []).append(pid)
            self._tables.append(
                {code: np.array(ids, dtype=np.int64) for code, ids in buckets.items()}
            )

    def index_size_bytes(self) -> int:
        """All tables: one (bucket-key, id) entry per point per table."""
        entry = self.n_bits * 8 + 8
        return self.n_tables * self.n * entry + self._vectors.nbytes

    def _query_codes(self, query: np.ndarray) -> list[tuple]:
        return [
            tuple(
                np.floor(
                    (self._vectors[t] @ query + self._offsets[t]) / self.bucket_width
                ).astype(np.int64)
            )
            for t in range(self.n_tables)
        ]

    def candidates(self, query: np.ndarray, index_pages: list[int] | None = None) -> np.ndarray:
        """Union of colliding points over all tables (ids, unsorted)."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(f"query has dimension {query.shape[0]}, expected {self.dim}")
        found: set[int] = set()
        pages = 0
        entry_bytes = 8
        for t, code in enumerate(self._query_codes(query)):
            bucket = self._tables[t].get(code)
            pages += 1  # bucket directory lookup
            if bucket is not None:
                found.update(bucket.tolist())
                pages += -(-bucket.size * entry_bytes // self.page_size)
        if index_pages is not None:
            index_pages[0] += pages
        return np.fromiter(found, dtype=np.int64, count=len(found))

    def knn(
        self,
        query: np.ndarray,
        k: int,
        reader: VectorReader | None = None,
        index_pages: list[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """c-ANN search: verify the collision candidates exactly.

        Returns ``(ids, distances, n_verified)`` ascending by distance; may
        return fewer than ``k`` when collisions are scarce.
        """
        k = validate_k(k)
        cands = self.candidates(query, index_pages=index_pages)
        if cands.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0), 0
        vecs = reader.get_many(cands) if reader is not None else self._points[cands]
        dists = np.linalg.norm(vecs - query[None, :], axis=1)
        order = np.argsort(dists, kind="stable")[:k]
        return cands[order], dists[order], int(cands.size)
