"""QALSH — query-aware LSH for c-approximate NN search (Huang et al., PVLDB 2015).

H2-ALSH solves the NN sub-problems of its norm shells with the disk-resident
QALSH, and the paper we reproduce states explicitly: "To evaluate the page
access, we employ the disk-resident QALSH in the implementation of H2-ALSH."

QALSH draws ``m`` query-*oblivious* projections ``h_i(o) = a_i · o`` but makes
the *bucketing* query-aware: for a query ``q``, point ``o`` collides under
``h_i`` at search radius ``R`` iff ``|h_i(o) − h_i(q)| ≤ w·R/2``.  A point
becomes a candidate once it collides in at least ``l`` of the ``m``
projections (collision counting); *virtual rehashing* grows ``R`` by factor
``c`` per round, which widens every window without rebuilding anything.

Parameters follow the QALSH paper: with target error probability ``δ``,
candidate-fraction ``β`` and approximation ratio ``c``:

    ``p1 = pr_collision(1)``, ``p2 = pr_collision(c)``,
    ``m = ⌈ (√ln(2/β) + √ln(1/δ))² / (2(p1 − p2)²) ⌉``,
    ``l = ⌈ α·m ⌉`` with ``α = (√ln(2/β)·p1 + √ln(1/δ)·p2) / (√ln(2/β) + √ln(1/δ))``

where ``pr_collision(x) = 2Φ(w/(2x)) − 1`` and ``w = sqrt(8c²·ln c / (c²−1))``
is the variance-optimal bucket width.

Disk model: each projection's ``(h_i(o), id)`` pairs are a key-sorted
B+-tree leaf level; a query descends once per tree (height pages) and then
scans leaf pages outward from the query's position, which is exactly how the
windows of virtual rehashing touch pages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api import validate_k
from repro.core.rng import resolve_rng
from repro.stats.special import std_normal_cdf
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorReader

__all__ = ["QALSHParams", "qalsh_collision_probability", "derive_qalsh_params", "QALSH"]

# A (key, id) leaf entry: float32 projection + int32 id.
_ENTRY_BYTES = 8


@dataclass(frozen=True)
class QALSHParams:
    """Derived QALSH parameters.

    Attributes:
        c: approximation ratio for the NN search (> 1).
        w: bucket width.
        n_hash: number of hash functions (``m`` in the QALSH paper).
        threshold: collision-count threshold (``l``).
        beta: candidate fraction (budget ``β·n + k - 1`` exact verifications).
        delta: target error probability.
    """

    c: float
    w: float
    n_hash: int
    threshold: int
    beta: float
    delta: float


def qalsh_collision_probability(w: float, x: float) -> float:
    """``Pr[|a·(o−q)| ≤ w·x/2 / x] = 2Φ(w/(2x)) − 1`` for distance ``x``."""
    if x <= 0:
        return 1.0
    return 2.0 * std_normal_cdf(w / (2.0 * x)) - 1.0


def derive_qalsh_params(
    n: int,
    c: float = 2.0,
    delta: float = 0.1,
    beta: float | None = None,
    max_hash: int = 120,
) -> QALSHParams:
    """Instantiate the QALSH formulas for a dataset of size ``n``.

    ``max_hash`` caps the table count so that simulated builds stay cheap; the
    cap only binds for tiny ``β`` (huge ``n``) and is recorded in the params.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if c <= 1.0:
        raise ValueError(f"QALSH approximation ratio must exceed 1, got {c}")
    if beta is None:
        beta = min(1.0, 100.0 / n)
    w = math.sqrt(8.0 * c * c * math.log(c) / (c * c - 1.0))
    p1 = qalsh_collision_probability(w, 1.0)
    p2 = qalsh_collision_probability(w, c)
    term_beta = math.sqrt(math.log(2.0 / beta))
    term_delta = math.sqrt(math.log(1.0 / delta))
    n_hash = math.ceil((term_beta + term_delta) ** 2 / (2.0 * (p1 - p2) ** 2))
    n_hash = max(4, min(n_hash, max_hash))
    alpha = (term_beta * p1 + term_delta * p2) / (term_beta + term_delta)
    threshold = max(1, math.ceil(alpha * n_hash))
    return QALSHParams(c=c, w=w, n_hash=n_hash, threshold=threshold, beta=beta, delta=delta)


class QALSH:
    """Disk-resident QALSH index over a point set.

    Args:
        points: ``(n, d)`` points to index (H2-ALSH passes QNF-transformed
            shells).
        params: derived :class:`QALSHParams`; ``None`` uses
            :func:`derive_qalsh_params` defaults.
        rng: generator or seed for the projection vectors.
        page_size: leaf page size for page accounting.
        vectors: pre-drawn ``(n_hash, d)`` projection vectors (persistence
            path); when given, ``rng`` is unused.
    """

    def __init__(
        self,
        points: np.ndarray,
        rng: np.random.Generator | int | None = None,
        params: QALSHParams | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        vectors: np.ndarray | None = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty 2-D array, got {points.shape}")
        self._points = points
        self.n, self.dim = points.shape
        self.params = params or derive_qalsh_params(self.n)
        self.page_size = int(page_size)
        self.entries_per_page = max(1, self.page_size // _ENTRY_BYTES)

        if vectors is None:
            self._vectors = resolve_rng(rng).standard_normal(
                (self.params.n_hash, self.dim)
            )
        else:
            vectors = np.asarray(vectors, dtype=np.float64)
            if vectors.shape != (self.params.n_hash, self.dim):
                raise ValueError(
                    f"vectors must have shape ({self.params.n_hash}, {self.dim}), "
                    f"got {vectors.shape}"
                )
            self._vectors = vectors
        projections = points @ self._vectors.T  # (n, n_hash)
        self._sorted_proj = np.empty_like(projections.T)
        self._sorted_ids = np.empty((self.params.n_hash, self.n), dtype=np.int64)
        for i in range(self.params.n_hash):
            order = np.argsort(projections[:, i], kind="stable")
            self._sorted_proj[i] = projections[order, i]
            self._sorted_ids[i] = order

        leaf_pages = -(-self.n // self.entries_per_page)
        # Height of a B+-tree whose leaves hold the entries; fanout matches
        # one page of (separator, child) pairs.
        fanout = max(2, self.entries_per_page)
        height = 1
        level = leaf_pages
        while level > 1:
            level = -(-level // fanout)
            height += 1
        self.tree_height = height
        self.leaf_pages_per_table = leaf_pages

    @property
    def projection_vectors(self) -> np.ndarray:
        """The ``(n_hash, d)`` projection vectors (persistence state)."""
        return self._vectors

    def index_size_bytes(self) -> int:
        """All hash tables: (projection, id) pairs plus the projection vectors."""
        tables = self.params.n_hash * self.n * _ENTRY_BYTES
        return tables + self._vectors.nbytes

    def _initial_radius(self, gaps: np.ndarray) -> float:
        """A data-adaptive starting radius for virtual rehashing.

        QALSH assumes distances start at 1 after dataset normalization; here
        shells have arbitrary scale, so the first radius is set from the
        closest projections: the window ``w·R/2`` should just admit the
        nearest few entries per table.
        """
        finite = gaps[np.isfinite(gaps)]
        if finite.size == 0:
            return 1.0
        base = float(np.median(finite))
        return max(2.0 * base / self.params.w, 1e-12)

    def search(
        self,
        query: np.ndarray,
        k: int,
        reader: VectorReader | None = None,
        index_pages: list[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """c-k-ANN search with collision counting and virtual rehashing.

        Args:
            query: ``(d,)`` query in the indexed space.
            k: neighbours requested.
            reader: reader over the *indexed* points for verification page
                accounting (optional; the verification itself uses the
                in-memory array).
            index_pages: single-element list accumulating hash-table page
                reads (descents + leaf windows), if provided.

        Returns:
            ``(ids, distances, n_verified)`` sorted ascending by distance.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(f"query has dimension {query.shape[0]}, expected {self.dim}")
        k = validate_k(k)
        k = min(k, self.n)
        params = self.params
        m = params.n_hash

        q_proj = self._vectors @ query  # (m,)
        positions = np.array(
            [np.searchsorted(self._sorted_proj[i], q_proj[i]) for i in range(m)],
            dtype=np.int64,
        )
        left = positions - 1  # next entry to inspect on the left
        right = positions.copy()  # next entry to inspect on the right

        counts = np.zeros(self.n, dtype=np.int32)
        is_candidate = np.zeros(self.n, dtype=bool)
        verified: dict[int, float] = {}
        budget = int(params.beta * self.n) + k - 1

        nearest_gaps = np.full(m, np.inf)
        for i in range(m):
            if right[i] < self.n:
                nearest_gaps[i] = abs(self._sorted_proj[i][right[i]] - q_proj[i])
            if left[i] >= 0:
                nearest_gaps[i] = min(
                    nearest_gaps[i], abs(q_proj[i] - self._sorted_proj[i][left[i]])
                )
        radius = self._initial_radius(nearest_gaps)

        def verify_batch(pids: np.ndarray) -> None:
            if pids.size == 0:
                return
            if reader is not None:
                vecs = reader.get_many(pids)
            else:
                vecs = self._points[pids]
            dists = np.linalg.norm(vecs - query[None, :], axis=1)
            for pid, dist in zip(pids.tolist(), dists.tolist()):
                verified[pid] = float(dist)

        while True:
            half_window = params.w * radius / 2.0
            # Virtual rehashing round: widen every table's window to
            # ±w·R/2 around the query projection and bulk-count the newly
            # admitted entries.
            for i in range(m):
                proj = self._sorted_proj[i]
                ids = self._sorted_ids[i]
                new_right = int(np.searchsorted(proj, q_proj[i] + half_window, side="right"))
                new_left = int(np.searchsorted(proj, q_proj[i] - half_window, side="left")) - 1
                if new_right > right[i]:
                    np.add.at(counts, ids[right[i] : new_right], 1)
                    right[i] = new_right
                if new_left < left[i]:
                    np.add.at(counts, ids[new_left + 1 : left[i] + 1], 1)
                    left[i] = new_left
            crossed = np.flatnonzero((counts >= params.threshold) & ~is_candidate)
            if crossed.size:
                is_candidate[crossed] = True
                verify_batch(crossed)
            # Terminal tests of c-k-ANN: enough close answers, or budget.
            if len(verified) > budget:
                break
            if len(verified) >= k:
                kth = np.partition(
                    np.fromiter(verified.values(), dtype=np.float64, count=len(verified)),
                    k - 1,
                )[k - 1]
                if kth <= params.c * radius:
                    break
            if bool(np.all(left < 0) and np.all(right >= self.n)):
                break
            radius *= params.c

        # Charge hash-table pages: one descent per table plus the scanned
        # leaf window (contiguous entries around the query position).
        if index_pages is not None:
            pages = 0
            for i in range(m):
                span = int(right[i] - (left[i] + 1))
                span_pages = -(-span // self.entries_per_page) if span > 0 else 1
                pages += self.tree_height + span_pages
            index_pages[0] += pages

        if not verified and self.n > 0:
            # Degenerate guard: collision threshold never reached (can only
            # happen with extreme parameters); fall back to the single
            # closest projected entry.
            fallback = int(self._sorted_ids[0][min(max(int(positions[0]), 0), self.n - 1)])
            verify_batch(np.array([fallback], dtype=np.int64))

        id_arr = np.fromiter(verified.keys(), dtype=np.int64, count=len(verified))
        dist_arr = np.fromiter(verified.values(), dtype=np.float64, count=len(verified))
        order = np.argsort(dist_arr, kind="stable")[:k]
        return id_arr[order], dist_arr[order], len(verified)
