"""MIPS→NN and MIPS→MCS reductions used by the baseline methods (§IX).

* **QNF transformation** (H2-ALSH, KDD 2018): an asymmetric MIPS→NNS
  reduction without transformation error.  With ``M ≥ max ‖o‖``:

  - data:  ``õ = [o ; sqrt(M² − ‖o‖²)] ∈ R^{d+1}`` (every ``õ`` has norm M),
  - query: ``q̃ = [λq ; 0]`` with ``λ = M/‖q‖``,

  giving ``dis²(õ, q̃) = 2M² − 2λ⟨o, q⟩`` — Euclidean NN order on the
  transformed points is exactly MIP order on the originals.

* **Simple-LSH transformation** (Neyshabur & Srebro, ICML 2015): a symmetric
  MIPS→MCS reduction.  With ``U ≥ max ‖x‖``:

  - data:  ``x̃ = [x/U ; sqrt(1 − ‖x/U‖²)]`` (unit norm),
  - query: ``q̃ = [q/‖q‖ ; 0]`` (unit norm),

  giving ``cos(x̃, q̃) = ⟨x, q⟩ / (U·‖q‖)`` — cosine order is MIP order.
  Norm Ranging-LSH applies it per norm-range subset with a *local* U to fix
  the long-tail excessive-normalization problem.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "qnf_transform_data",
    "qnf_transform_query",
    "qnf_distance_to_ip",
    "simple_lsh_transform_data",
    "simple_lsh_transform_query",
]


def _augment_with_residual(data: np.ndarray, scale: float) -> np.ndarray:
    """Append ``sqrt(scale² − ‖o‖²)`` as an extra coordinate."""
    norms_sq = np.einsum("ij,ij->i", data, data)
    residual_sq = np.maximum(scale * scale - norms_sq, 0.0)
    return np.hstack([data, np.sqrt(residual_sq)[:, None]])


def qnf_transform_data(data: np.ndarray, max_norm: float | None = None) -> tuple[np.ndarray, float]:
    """QNF-transform a dataset; returns the ``(n, d+1)`` points and the M used."""
    data = np.asarray(data, dtype=np.float64)
    norms = np.linalg.norm(data, axis=1)
    if max_norm is None:
        max_norm = float(norms.max())
    elif norms.size and norms.max() > max_norm * (1 + 1e-12):
        raise ValueError(
            f"max_norm={max_norm} is smaller than the largest data norm {norms.max()}"
        )
    if max_norm <= 0:
        # An all-zero dataset: the residual coordinate carries everything.
        max_norm = 1.0
    return _augment_with_residual(data, max_norm), max_norm


def qnf_transform_query(query: np.ndarray, max_norm: float) -> np.ndarray:
    """QNF-transform a query: ``[M·q/‖q‖ ; 0]`` (zero queries stay zero)."""
    query = np.asarray(query, dtype=np.float64)
    q_norm = float(np.linalg.norm(query))
    scale = max_norm / q_norm if q_norm > 0 else 0.0
    return np.concatenate([scale * query, [0.0]])


def qnf_distance_to_ip(dist_sq: float, max_norm: float, q_norm: float) -> float:
    """Invert ``dis²(õ, q̃) = 2M² − 2(M/‖q‖)⟨o, q⟩`` back to ``⟨o, q⟩``."""
    if q_norm <= 0:
        return 0.0
    return (2.0 * max_norm * max_norm - dist_sq) * q_norm / (2.0 * max_norm)


def simple_lsh_transform_data(data: np.ndarray, scale: float | None = None) -> tuple[np.ndarray, float]:
    """Simple-LSH transform a dataset to unit-norm ``(n, d+1)`` points."""
    data = np.asarray(data, dtype=np.float64)
    norms = np.linalg.norm(data, axis=1)
    if scale is None:
        scale = float(norms.max())
    elif norms.size and norms.max() > scale * (1 + 1e-12):
        raise ValueError(f"scale={scale} is smaller than the largest data norm {norms.max()}")
    if scale <= 0:
        scale = 1.0
    return _augment_with_residual(data / scale, 1.0), scale


def simple_lsh_transform_query(query: np.ndarray) -> np.ndarray:
    """Simple-LSH transform a query: ``[q/‖q‖ ; 0]``."""
    query = np.asarray(query, dtype=np.float64)
    q_norm = float(np.linalg.norm(query))
    unit = query / q_norm if q_norm > 0 else query
    return np.concatenate([unit, [0.0]])
