"""SimHash — sign random projections for cosine similarity (Charikar, STOC 2002).

``h(x) = sign(a · x)`` with ``a ~ N(0, I)`` satisfies
``Pr[h(x) ≠ h(y)] = θ(x, y)/π``, so the Hamming distance between ``b``-bit
codes estimates the angle:  ``θ̂ = π · hamming / b`` and
``cos θ̂ ≈ cos(π · hamming / b)``.

Norm Ranging-LSH builds one shared SimHash over the Simple-LSH-transformed
points of all its norm-range subsets; the per-subset maximum norm then turns
the cosine estimate into an inner-product upper bound used to rank probes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimHash", "hamming_distance", "hamming_to_cosine"]


def hamming_distance(codes: np.ndarray, query_code: int) -> np.ndarray:
    """Hamming distances between packed codes and one packed query code."""
    codes = np.asarray(codes, dtype=np.uint64)
    return np.bitwise_count(codes ^ np.uint64(query_code)).astype(np.int64)


def hamming_to_cosine(hamming: np.ndarray | float, n_bits: int) -> np.ndarray | float:
    """SimHash cosine estimate ``cos(π · hamming / b)``."""
    return np.cos(np.pi * np.asarray(hamming, dtype=np.float64) / n_bits)


class SimHash:
    """``n_bits`` sign random projections with packed integer codes.

    Args:
        dim: input dimensionality.
        n_bits: code length (≤ 63 so codes pack into one uint64).
        rng: generator for the Gaussian hyperplanes.
    """

    def __init__(self, dim: int, n_bits: int, rng: np.random.Generator) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= n_bits <= 63:
            raise ValueError(f"n_bits must be in [1, 63], got {n_bits}")
        self.dim = int(dim)
        self.n_bits = int(n_bits)
        self._hyperplanes = rng.standard_normal((n_bits, dim))

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Packed codes for one point ``(d,)`` or a batch ``(n, d)``."""
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        if points.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {points.shape[1]}, SimHash expects {self.dim}"
            )
        bits = (points @ self._hyperplanes.T >= 0.0).astype(np.uint64)
        weights = np.uint64(1) << np.arange(self.n_bits, dtype=np.uint64)
        codes = (bits * weights[None, :]).sum(axis=1)
        return codes[0] if single else codes

    def size_bytes(self) -> int:
        """Footprint of the hyperplane matrix."""
        return self._hyperplanes.nbytes

    def __repr__(self) -> str:
        return f"SimHash(dim={self.dim}, n_bits={self.n_bits})"
