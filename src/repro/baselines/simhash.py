"""SimHash — sign random projections for cosine similarity (Charikar, STOC 2002).

``h(x) = sign(a · x)`` with ``a ~ N(0, I)`` satisfies
``Pr[h(x) ≠ h(y)] = θ(x, y)/π``, so the Hamming distance between ``b``-bit
codes estimates the angle:  ``θ̂ = π · hamming / b`` and
``cos θ̂ ≈ cos(π · hamming / b)``.

Norm Ranging-LSH builds one shared SimHash over the Simple-LSH-transformed
points of all its norm-range subsets; the per-subset maximum norm then turns
the cosine estimate into an inner-product upper bound used to rank probes.

:class:`SimHashMIPS` turns the codes into a standalone MIPS baseline
(Simple-LSH reduction → Hamming short-list → exact re-rank) with a natively
vectorized ``search_many``: one GEMM encodes the whole query batch and the
Hamming scan runs as blocked XOR/popcount matrix operations.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    BatchResult,
    SearchResult,
    SearchStats,
    validate_k,
    validate_queries,
)
from repro.baselines.transforms import (
    simple_lsh_transform_data,
    simple_lsh_transform_query,
)
from repro.core.binary_codes import pack_code
from repro.core.engine import batch_inner_products
from repro.core.rng import resolve_rng
from repro.spec import IndexSpec, register_method
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorStore

__all__ = ["SimHash", "SimHashMIPS", "hamming_distance", "hamming_to_cosine"]


def hamming_distance(codes: np.ndarray, query_code: int) -> np.ndarray:
    """Hamming distances between packed codes and one packed query code."""
    codes = np.asarray(codes, dtype=np.uint64)
    return np.bitwise_count(codes ^ np.uint64(query_code)).astype(np.int64)


def hamming_to_cosine(hamming: np.ndarray | float, n_bits: int) -> np.ndarray | float:
    """SimHash cosine estimate ``cos(π · hamming / b)``."""
    return np.cos(np.pi * np.asarray(hamming, dtype=np.float64) / n_bits)


class SimHash:
    """``n_bits`` sign random projections with packed integer codes.

    Args:
        dim: input dimensionality.
        n_bits: code length (≤ 63 so codes pack into one uint64).
        rng: generator or seed for the Gaussian hyperplanes.
        hyperplanes: pre-drawn ``(n_bits, dim)`` hyperplane matrix; when
            given, ``rng`` is unused (the persistence path restores codes
            bit-identically this way).
    """

    def __init__(
        self,
        dim: int,
        n_bits: int,
        rng: np.random.Generator | int | None = None,
        hyperplanes: np.ndarray | None = None,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= n_bits <= 63:
            raise ValueError(f"n_bits must be in [1, 63], got {n_bits}")
        self.dim = int(dim)
        self.n_bits = int(n_bits)
        if hyperplanes is None:
            self._hyperplanes = resolve_rng(rng).standard_normal((n_bits, dim))
        else:
            hyperplanes = np.asarray(hyperplanes, dtype=np.float64)
            if hyperplanes.shape != (self.n_bits, self.dim):
                raise ValueError(
                    f"hyperplanes must have shape ({self.n_bits}, {self.dim}), "
                    f"got {hyperplanes.shape}"
                )
            self._hyperplanes = hyperplanes

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Packed codes for one point ``(d,)`` or a batch ``(n, d)``."""
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        if points.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {points.shape[1]}, SimHash expects {self.dim}"
            )
        bits = (points @ self._hyperplanes.T >= 0.0).astype(np.uint64)
        weights = np.uint64(1) << np.arange(self.n_bits, dtype=np.uint64)
        codes = (bits * weights[None, :]).sum(axis=1)
        return codes[0] if single else codes

    @property
    def hyperplanes(self) -> np.ndarray:
        """The ``(n_bits, dim)`` Gaussian hyperplane matrix."""
        return self._hyperplanes

    def size_bytes(self) -> int:
        """Footprint of the hyperplane matrix."""
        return self._hyperplanes.nbytes

    def __repr__(self) -> str:
        return f"SimHash(dim={self.dim}, n_bits={self.n_bits})"


@register_method("simhash", aliases=("SimHash", "SimHashMIPS"))
class SimHashMIPS:
    """SimHash MIPS baseline: Simple-LSH codes, Hamming short-list, exact re-rank.

    The Simple-LSH transform appends ``√(1 − ‖x/U‖²)`` so that the angle
    between transformed vectors is monotone in the inner product; ``n_bits``
    sign projections then let a Hamming scan rank the whole dataset without
    touching the raw vectors.  The ``shortlist·k`` closest codes (ties by id)
    are re-ranked against the full vectors.  There is no accuracy guarantee —
    like PQ, it is a guarantee-free comparison point, but with a far lighter
    index (one packed integer per point).

    ``search_many`` is natively vectorized: one shape-stable GEMM signs all
    queries at once and the Hamming matrix is computed by blocked
    XOR/popcount.  Since Hamming distances are exact integers and re-ranking
    uses the same per-query multiply as ``search``, batch answers are
    bit-identical to the looped path.

    Args:
        data: ``(n, d)`` dataset.
        rng: generator or seed for the hyperplanes.
        n_bits: code length (≤ 63, packed into one uint64 per point).
        shortlist: re-ranked candidates as a multiple of ``k``.
        page_size: page size for the accounting.
        hyperplanes: pre-drawn hyperplane matrix (persistence path); when
            given, ``rng`` is unused.
    """

    def __init__(
        self,
        data: np.ndarray,
        rng: np.random.Generator | int | None = None,
        n_bits: int = 32,
        shortlist: int = 16,
        page_size: int = DEFAULT_PAGE_SIZE,
        hyperplanes: np.ndarray | None = None,
    ) -> None:
        if shortlist <= 0:
            raise ValueError(f"shortlist must be positive, got {shortlist}")
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self.shortlist = int(shortlist)
        self.page_size = int(page_size)

        transformed, self.max_norm = simple_lsh_transform_data(data)
        self.simhash = SimHash(
            self.dim + 1, n_bits, resolve_rng(rng), hyperplanes=hyperplanes
        )
        self._codes = self.simhash.encode(transformed)
        self._store = VectorStore(data, page_size, label="simhash")
        # Packed codes ship as one uint64 per point.
        self._code_pages = max(1, -(-self.n * 8 // int(page_size)))

    @property
    def n_bits(self) -> int:
        return self.simhash.n_bits

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "SimHashMIPS":
        """Build from a spec, e.g. ``simhash(n_bits=32, shortlist=16)``."""
        return cls(data, rng=resolve_rng(rng), **spec.params)

    def spec(self) -> IndexSpec:
        return IndexSpec(
            "simhash",
            {
                "n_bits": self.n_bits,
                "shortlist": self.shortlist,
                "page_size": self.page_size,
            },
        )

    def state(self) -> dict[str, np.ndarray]:
        """Data + hyperplanes; codes are re-derived deterministically."""
        return {"data": self._data, "hyperplanes": self.simhash.hyperplanes}

    @classmethod
    def from_state(cls, spec: IndexSpec, state: dict[str, np.ndarray]) -> "SimHashMIPS":
        return cls(
            np.asarray(state["data"], dtype=np.float64),
            hyperplanes=np.asarray(state["hyperplanes"], dtype=np.float64),
            **spec.params,
        )

    def index_size_bytes(self) -> int:
        """Packed codes + hyperplanes — the lightest index in the repo."""
        return self.n * 8 + self.simhash.size_bytes()

    def _encode_queries(self, queries: np.ndarray) -> np.ndarray:
        """Packed codes for a validated ``(n_q, d)`` batch.

        The sign projections go through the engine's shape-stable GEMM so a
        query's bits never depend on its batch size (the plain
        :meth:`SimHash.encode` row orientation is not batch-width invariant).
        """
        transformed = np.stack(
            [simple_lsh_transform_query(q) for q in queries]
        )
        projections = batch_inner_products(
            self.simhash.hyperplanes, transformed
        ).T  # (n_q, n_bits)
        return pack_code(projections >= 0.0)

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Hamming-ranked c-k-AMIP search with exact re-ranking."""
        return self.search_many(np.asarray(query, dtype=np.float64).reshape(1, -1), k=k)[0]

    def search_many(self, queries: np.ndarray, k: int = 1) -> BatchResult:
        """Batch search: one encode GEMM + blocked Hamming matrix scan."""
        k = validate_k(k)
        queries = validate_queries(queries, self.dim)
        if queries.shape[0] == 0:
            return BatchResult.empty()
        k = min(k, self.n)
        n_take = min(self.n, max(self.shortlist * k, self.shortlist))
        query_codes = self._encode_queries(queries)

        results: list[SearchResult] = []
        point_ids = np.arange(self.n, dtype=np.int64)
        # The Hamming matrix is integer-exact, so blocking over queries is
        # purely a memory bound: cap the (block, n) XOR temporary at ~2M
        # uint64 entries (~16MB) regardless of dataset size.
        block = max(1, min(queries.shape[0], 2_000_000 // self.n))
        for start in range(0, queries.shape[0], block):
            q_block = query_codes[start : start + block]
            hammings = np.bitwise_count(self._codes[None, :] ^ q_block[:, None])
            for row, i in enumerate(range(start, start + q_block.shape[0])):
                # Candidates by ascending Hamming distance, ties by id:
                # hamming ≤ 63, so `hamming·n + id` is a collision-free
                # int64 total order and an O(n) argpartition + O(L log L)
                # short-list sort replaces a full O(n log n) lexsort.
                key = hammings[row].astype(np.int64) * self.n + point_ids
                part = np.argpartition(key, n_take - 1)[:n_take]
                cand = part[np.argsort(key[part], kind="stable")]
                reader = self._store.reader()
                vecs = reader.get_many(cand)
                ips = vecs @ queries[i]
                order = np.lexsort((cand, -ips))[:k]
                stats = SearchStats(
                    pages=self._code_pages + reader.pages_touched,
                    candidates=int(n_take),
                    extras={"shortlist": int(n_take)},
                )
                results.append(
                    SearchResult(ids=cand[order], scores=ips[order], stats=stats)
                )
        return BatchResult.from_results(results)

    def __repr__(self) -> str:
        return (
            f"SimHashMIPS(n={self.n}, d={self.dim}, bits={self.n_bits}, "
            f"shortlist={self.shortlist})"
        )
