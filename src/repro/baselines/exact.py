"""Exact MIP search by linear scan.

Serves two purposes: the ground truth for overall-ratio and recall metrics,
and the trivially correct reference each approximate method is validated
against in the tests.  Page accounting reflects a full sequential scan of the
data file.
"""

from __future__ import annotations

import numpy as np

from repro.api import SearchResult, SearchStats, validate_query
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorStore

__all__ = ["ExactMIPS", "exact_topk"]


def exact_topk(data: np.ndarray, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-k ids and inner products by brute force (descending, ties by id)."""
    ips = data @ query
    k = min(k, data.shape[0])
    # argpartition + stable sort keeps this O(n + k log k).
    part = np.argpartition(-ips, k - 1)[:k]
    order = part[np.lexsort((part, -ips[part]))]
    return order.astype(np.int64), ips[order]


class ExactMIPS:
    """Brute-force MIP index with paged accounting.

    Args:
        data: ``(n, d)`` dataset.
        page_size: disk page size for the sequential-scan accounting.
    """

    def __init__(self, data: np.ndarray, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self._store = VectorStore(data, page_size, label="exact")

    def index_size_bytes(self) -> int:
        """An exact scan keeps no auxiliary structures."""
        return 0

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Exact top-k MIP by scanning every page of the data file."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query = validate_query(query, self.dim)
        reader = self._store.reader()
        data = reader.scan_all()
        ids, ips = exact_topk(data, query, k)
        stats = SearchStats(pages=reader.pages_touched, candidates=self.n)
        return SearchResult(ids=ids, scores=ips, stats=stats)
