"""Exact MIP search by linear scan.

Serves two purposes: the ground truth for overall-ratio and recall metrics,
and the trivially correct reference each approximate method is validated
against in the tests.  Page accounting reflects a full sequential scan of the
data file.

``search_many`` is natively vectorized: one ``data @ Qᵀ`` GEMM scores the
whole batch and top-k is taken per row via argpartition.  The single-query
``search`` routes through the same engine kernels, so batch answers are
bit-identical to looping ``search`` (see :mod:`repro.core.engine`).
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    BatchResult,
    SearchResult,
    SearchStats,
    validate_k,
    validate_query,
    validate_queries,
)
from repro.core.engine import batch_inner_products, batch_topk, topk_ids_scores
from repro.spec import IndexSpec, register_method
from repro.storage.pagefile import DEFAULT_PAGE_SIZE, VectorStore

__all__ = ["ExactMIPS", "exact_topk"]


def exact_topk(data: np.ndarray, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-k ids and inner products by brute force (descending, ties by id)."""
    return topk_ids_scores(data @ query, k)


@register_method("exact", aliases=("Exact", "ExactMIPS"))
class ExactMIPS:
    """Brute-force MIP index with paged accounting.

    Args:
        data: ``(n, d)`` dataset.
        page_size: disk page size for the sequential-scan accounting.
    """

    def __init__(self, data: np.ndarray, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self._data = data
        self.n, self.dim = data.shape
        self.page_size = int(page_size)
        self._store = VectorStore(data, page_size, label="exact")

    # ------------------------------------------------------- registry contract

    @classmethod
    def from_spec(
        cls,
        data: np.ndarray,
        spec: IndexSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "ExactMIPS":
        """Build from a spec, e.g. ``exact(page_size=4096)`` (rng unused)."""
        return cls(data, **spec.params)

    def spec(self) -> IndexSpec:
        return IndexSpec("exact", {"page_size": self.page_size})

    def state(self) -> dict[str, np.ndarray]:
        return {"data": self._data}

    @classmethod
    def from_state(cls, spec: IndexSpec, state: dict[str, np.ndarray]) -> "ExactMIPS":
        return cls(np.asarray(state["data"], dtype=np.float64), **spec.params)

    def index_size_bytes(self) -> int:
        """An exact scan keeps no auxiliary structures."""
        return 0

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Exact top-k MIP by scanning every page of the data file."""
        k = validate_k(k)
        query = validate_query(query, self.dim)
        reader = self._store.reader()
        data = reader.scan_all()
        ips = batch_inner_products(data, query[None, :])[:, 0]
        ids, scores = topk_ids_scores(ips, k)
        stats = SearchStats(pages=reader.pages_touched, candidates=self.n)
        return SearchResult(ids=ids, scores=scores, stats=stats)

    def search_many(self, queries: np.ndarray, k: int = 1) -> BatchResult:
        """Exact top-k for a whole batch with one GEMM over the data file.

        The scan itself is shared across the batch — that is the throughput
        win — but each query's :class:`SearchStats` still reports the full
        sequential scan it would cost standalone, keeping the paper's
        cold-query page accounting comparable between both paths.
        """
        k = validate_k(k)
        queries = validate_queries(queries, self.dim)
        if queries.shape[0] == 0:
            return BatchResult.empty()
        reader = self._store.reader()
        data = reader.scan_all()
        # The engine already scores in fixed-width panels; this outer block
        # only bounds the (n, block) score temporaries so they stay
        # cache-resident — measurably faster than one monolithic (n, n_q)
        # matrix, and irrelevant to bit-identity.
        block = 128
        id_blocks: list[np.ndarray] = []
        score_blocks: list[np.ndarray] = []
        for start in range(0, queries.shape[0], block):
            scores = batch_inner_products(data, queries[start : start + block])
            ids, out = batch_topk(scores.T, k)
            id_blocks.append(ids)
            score_blocks.append(out)
        pages = reader.pages_touched
        stats = [
            SearchStats(pages=pages, candidates=self.n) for _ in range(len(queries))
        ]
        return BatchResult(
            ids=np.vstack(id_blocks), scores=np.vstack(score_blocks), stats=stats
        )
