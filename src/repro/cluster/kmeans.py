"""k-means clustering built from scratch (k-means++ seeding + Lloyd iterations).

Used by three subsystems:

* iDistance partitions (``kp``-means) and ring sub-partitions (``ksp``-means);
* product-quantization codebooks (one k-means per subspace);
* the coarse quantizer of the IVF/LOPQ baseline.

The implementation is fully vectorized over numpy and deterministic given a
``numpy.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans", "assign_to_centers"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes:
        centers: ``(k, dim)`` cluster centroids.
        labels: ``(n,)`` index of the closest centroid per point.
        radii: ``(k,)`` max distance from a member point to its centroid
            (0 for empty clusters); iDistance uses these as partition radii.
        inertia: sum of squared distances of points to their centroids.
        n_iter: Lloyd iterations actually performed.
    """

    centers: np.ndarray
    labels: np.ndarray
    radii: np.ndarray
    inertia: float
    n_iter: int

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]

    def cluster_members(self, label: int) -> np.ndarray:
        """Indices of the points assigned to cluster ``label``."""
        return np.flatnonzero(self.labels == label)


def _squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(n, k)``.

    Uses the expansion ``‖x−c‖² = ‖x‖² − 2x·c + ‖c‖²`` and clips tiny
    negative values produced by floating-point cancellation.
    """
    sq = (
        np.sum(points * points, axis=1)[:, None]
        - 2.0 * points @ centers.T
        + np.sum(centers * centers, axis=1)[None, :]
    )
    return np.maximum(sq, 0.0)


def assign_to_centers(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Label each point with its nearest center (ties broken by lowest index)."""
    return np.argmin(_squared_distances(points, centers), axis=1)


def _kmeanspp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: each new seed is sampled ∝ squared distance to the
    nearest seed chosen so far."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = _squared_distances(points, centers[:1])[:, 0]
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with an existing seed; any choice works.
            idx = int(rng.integers(n))
        else:
            idx = int(rng.choice(n, p=closest_sq / total))
        centers[i] = points[idx]
        new_sq = _squared_distances(points, centers[i : i + 1])[:, 0]
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups with Lloyd's algorithm.

    Args:
        points: ``(n, dim)`` float array; ``n >= 1``.
        k: number of clusters requested; silently capped at ``n`` because a
            partition can never have more non-empty cells than points.
        rng: numpy random generator (determinism for index builds).
        max_iter: Lloyd iteration budget.
        tol: relative inertia improvement below which iteration stops.

    Returns:
        A :class:`KMeansResult`; empty clusters are repaired by re-seeding
        them at the points currently farthest from their centroid.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if n == 0:
        raise ValueError("kmeans requires at least one point")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, n)

    centers = _kmeanspp_init(points, k, rng)
    labels = assign_to_centers(points, centers)
    prev_inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        # Update step: mean of each cluster, with empty-cluster repair.
        sq = _squared_distances(points, centers)
        labels = np.argmin(sq, axis=1)
        point_cost = sq[np.arange(n), labels]
        for j in range(k):
            members = labels == j
            if members.any():
                centers[j] = points[members].mean(axis=0)
            else:
                # Re-seed the empty cluster at the worst-served point.
                worst = int(np.argmax(point_cost))
                centers[j] = points[worst]
                labels[worst] = j
                point_cost[worst] = 0.0
        inertia = float(point_cost.sum())
        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-12):
            break
        prev_inertia = inertia

    sq = _squared_distances(points, centers)
    labels = np.argmin(sq, axis=1)
    inertia = float(sq[np.arange(n), labels].sum())
    radii = np.zeros(k, dtype=np.float64)
    # Final radii use the direct norm, not the expansion formula: the
    # expansion cancels catastrophically for points ≈ their center, and the
    # indexes built on these radii test coverage with direct norms — the two
    # must agree or bounding spheres can miss their own members.
    dist = np.linalg.norm(points - centers[labels], axis=1)
    for j in range(k):
        members = labels == j
        if members.any():
            radii[j] = float(dist[members].max())
    return KMeansResult(
        centers=centers,
        labels=labels.astype(np.int64),
        radii=radii,
        inertia=inertia,
        n_iter=n_iter,
    )
