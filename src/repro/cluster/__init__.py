"""Clustering substrate: from-scratch k-means used by indexes and quantizers."""

from repro.cluster.kmeans import KMeansResult, assign_to_centers, kmeans

__all__ = ["KMeansResult", "assign_to_centers", "kmeans"]
