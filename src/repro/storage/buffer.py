"""LRU buffer pool for modelling cross-query page caching.

The paper relies on the operating system's buffer manager.  Benchmarks in this
repository default to *cold* per-query accounting (every query starts with an
empty cache) which is the conservative reading of the paper's numbers; this
pool is provided for experiments that want warm-cache behaviour instead.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU page cache keyed by ``(file_label, page_id)``.

    Attributes:
        hits: number of page requests served from the pool.
        misses: number of page requests that went to "disk".
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"capacity_pages must be positive, got {capacity_pages}")
        self.capacity = int(capacity_pages)
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, file_label: str, page_id: int) -> bool:
        """Request a page; returns True on a cache hit."""
        key = (file_label, page_id)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[key] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)
