"""Disk substrate: paged vector files, page-access accounting, buffer pool."""

from repro.storage.buffer import BufferPool
from repro.storage.pagefile import (
    BYTES_PER_COMPONENT,
    DEFAULT_PAGE_SIZE,
    AccessCounter,
    VectorReader,
    VectorStore,
)

__all__ = [
    "AccessCounter",
    "BufferPool",
    "BYTES_PER_COMPONENT",
    "DEFAULT_PAGE_SIZE",
    "VectorReader",
    "VectorStore",
]
