"""Paged disk simulator with page-access accounting.

The paper evaluates every method by *page accesses*: the number of disk pages
fetched while answering a query (Fig. 7) and the total time dominated by those
fetches (Fig. 9).  This module provides the substrate all indexes share:

* :class:`VectorStore` — an ``(n, d)`` collection of vectors laid out
  contiguously in a simulated paged file.  The layout order is an explicit
  permutation, so an index can co-locate the points of a sub-partition on
  neighbouring pages exactly as §VI of the paper prescribes.
* :class:`VectorReader` — a per-query view that records the *distinct* pages
  touched (the OS buffer caches a page for the duration of a query, matching
  the paper's "buffering management in the operating system").
* :class:`AccessCounter` — a plain page counter used by index structures
  (B+-tree node visits) where every visit is a page read.

Vectors are accounted as float32 (4 bytes/component), matching how the paper
sizes its datasets (e.g. 17770×300×4B ≈ 84.2MB for Netflix).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AccessCounter",
    "VectorStore",
    "VectorReader",
    "DEFAULT_PAGE_SIZE",
    "BYTES_PER_COMPONENT",
]

DEFAULT_PAGE_SIZE = 4096
BYTES_PER_COMPONENT = 4  # float32, as in the paper's dataset sizing


class AccessCounter:
    """Counts page reads for index structures (one visit = one page)."""

    __slots__ = ("pages",)

    def __init__(self) -> None:
        self.pages = 0

    def add(self, n: int = 1) -> None:
        self.pages += n

    def reset(self) -> None:
        self.pages = 0

    def __repr__(self) -> str:
        return f"AccessCounter(pages={self.pages})"


class VectorStore:
    """Simulated paged file of ``n`` fixed-size vectors.

    Args:
        vectors: ``(n, d)`` array; kept in memory, the "disk" is simulated.
        page_size: page size in bytes (4KB in the paper; 64KB for P53).
        layout_order: permutation of point ids giving their on-disk order;
            position ``s`` of the file stores point ``layout_order[s]``.
            Defaults to identity.  Indexes pass the sub-partition order here
            so that a sub-partition occupies a contiguous page run.
        label: diagnostic name used in ``repr``.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        page_size: int = DEFAULT_PAGE_SIZE,
        layout_order: np.ndarray | None = None,
        label: str = "vectors",
    ) -> None:
        vectors = np.ascontiguousarray(vectors)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self._vectors = vectors
        self.page_size = int(page_size)
        self.label = label
        self.n, self.dim = vectors.shape
        self.stride_bytes = self.dim * BYTES_PER_COMPONENT

        if layout_order is None:
            layout_order = np.arange(self.n, dtype=np.int64)
        layout_order = np.asarray(layout_order, dtype=np.int64)
        if layout_order.shape != (self.n,):
            raise ValueError(
                f"layout_order must have shape ({self.n},), got {layout_order.shape}"
            )
        if not np.array_equal(np.sort(layout_order), np.arange(self.n)):
            raise ValueError("layout_order must be a permutation of 0..n-1")
        self._slot_of_point = np.empty(self.n, dtype=np.int64)
        self._slot_of_point[layout_order] = np.arange(self.n, dtype=np.int64)
        self._layout_order = layout_order

        # Pre-compute the page span of every point: the file packs vectors
        # back to back, so point at slot s occupies bytes
        # [s·stride, (s+1)·stride).
        offsets = self._slot_of_point * self.stride_bytes
        self._first_page = offsets // self.page_size
        self._last_page = (offsets + self.stride_bytes - 1) // self.page_size

    @property
    def size_bytes(self) -> int:
        """Total file size in bytes."""
        return self.n * self.stride_bytes

    @property
    def total_pages(self) -> int:
        """Number of pages the file occupies."""
        return -(-self.size_bytes // self.page_size)

    def slot_of(self, point_id: int) -> int:
        """On-disk slot (position) of a point."""
        return int(self._slot_of_point[point_id])

    def pages_of(self, point_id: int) -> range:
        """Page ids occupied by a point (a point wider than a page spans several)."""
        return range(int(self._first_page[point_id]), int(self._last_page[point_id]) + 1)

    def reader(self, buffer=None) -> "VectorReader":
        """A fresh per-query reader with an empty page cache.

        Args:
            buffer: optional shared :class:`repro.storage.buffer.BufferPool`
                for warm-cache experiments; pages already resident there are
                not charged as disk reads.
        """
        return VectorReader(self, buffer=buffer)

    def __repr__(self) -> str:
        return (
            f"VectorStore(label={self.label!r}, n={self.n}, dim={self.dim}, "
            f"page_size={self.page_size}, pages={self.total_pages})"
        )


class VectorReader:
    """Per-query view of a :class:`VectorStore` that tracks distinct pages read.

    A page already fetched during the current query is assumed buffered and is
    not recounted — this mirrors OS buffering within a single query while
    keeping queries cold with respect to each other (the conservative setting
    the paper's page-access numbers imply).
    """

    def __init__(self, store: VectorStore, buffer=None) -> None:
        self._store = store
        self._touched: set[int] = set()
        self._buffer = buffer
        self._disk_reads = 0

    @property
    def pages_touched(self) -> int:
        """Number of distinct pages read so far."""
        return len(self._touched)

    @property
    def disk_reads(self) -> int:
        """Pages that actually went to disk.

        Equals :attr:`pages_touched` for cold queries; with a shared buffer
        pool, pages already resident in the pool are excluded.
        """
        return self._disk_reads

    def _charge(self, page_ids) -> None:
        buffer = self._buffer
        label = self._store.label
        for page in page_ids:
            if page in self._touched:
                continue
            self._touched.add(page)
            if buffer is None or not buffer.access(label, page):
                self._disk_reads += 1

    def get(self, point_id: int) -> np.ndarray:
        """Fetch one vector, charging its pages on first touch."""
        store = self._store
        self._charge(
            range(int(store._first_page[point_id]), int(store._last_page[point_id]) + 1)
        )
        return store._vectors[point_id]

    def get_many(self, point_ids: np.ndarray) -> np.ndarray:
        """Fetch a batch of vectors, charging all their pages on first touch."""
        point_ids = np.asarray(point_ids, dtype=np.int64)
        if point_ids.size:
            firsts = self._store._first_page[point_ids]
            lasts = self._store._last_page[point_ids]
            if np.array_equal(firsts, lasts):
                self._charge(firsts.tolist())
            else:
                for first, last in zip(firsts.tolist(), lasts.tolist()):
                    self._charge(range(first, last + 1))
        return self._store._vectors[point_ids]

    def scan_all(self) -> np.ndarray:
        """Full sequential scan: touches every page, returns the raw array."""
        self._charge(range(self._store.total_pages))
        return self._store._vectors

    def touch_pages(self, page_ids: range | list[int]) -> None:
        """Charge raw pages (used for auxiliary on-disk structures)."""
        self._charge(page_ids)
