"""Generation-aware LRU cache for served top-k results.

Real MIPS query streams are heavily repeated — the LEMP line of work
(Abuzaid et al.) attributes most exact/approximate serving cost to re-doing
identical per-query work — so the serving runtime answers a repeated
``(query, k)`` from memory instead of re-running the scan.

Two design points matter:

* **Keys are the exact query bytes.**  An entry is keyed on
  ``(query.tobytes(), k, sorted kwargs)`` — the float64 byte string, not a
  lossy hash of it — so two queries collide only when they are bit-identical,
  and a cache hit is *guaranteed* to be the same answer the index would
  produce.  (Python hashes the bytes internally for the dict lookup; storing
  the bytes alongside is what removes the collision risk a bare
  ``query_bytes_hash`` key would carry.)
* **Invalidation is one integer bump.**  Every entry records the cache
  *generation* at insertion time; ``insert``/``delete`` on a mutable index
  bumps the runtime's generation counter, and any entry from an older
  generation is treated as a miss (and dropped lazily on touch).  That makes
  invalidation O(1) per mutation — no scan over the table — while
  guaranteeing a stale result is never served.

The cache stores plain ``(ids, scores)`` arrays, not whole
:class:`repro.api.SearchResult` objects: per-query stats describe the work a
search *did*, which for a cache hit is none.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU map ``(query bytes, k, kwargs) → (ids, scores)``.

    Args:
        capacity: maximum number of entries; ``0`` disables the cache
            (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        # key -> (generation, ids, scores); move_to_end maintains recency.
        self._entries: OrderedDict[tuple, tuple[int, np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_puts = 0

    # ---------------------------------------------------------------- keying

    @staticmethod
    def make_key(query: np.ndarray, k: int, kwargs: dict | None = None) -> tuple:
        """The cache key of one request: exact bytes + k + sorted kwargs."""
        query = np.ascontiguousarray(query, dtype=np.float64)
        extra = tuple(sorted((kwargs or {}).items()))
        return (query.tobytes(), int(k), extra)

    # --------------------------------------------------------------- queries

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        """The cached ``(ids, scores)`` for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU position.  An entry written before
        the last :meth:`bump_generation` counts as a miss, is dropped, and
        is tallied under ``invalidations`` — the stale answer is never
        returned.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            generation, ids, scores = entry
            if generation != self._generation:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return ids, scores

    def put(
        self,
        key: tuple,
        ids: np.ndarray,
        scores: np.ndarray,
        generation: int | None = None,
    ) -> None:
        """Store an answer; evict LRU overflow.

        Args:
            generation: the generation the caller observed *before* computing
                the answer.  If a mutation bumped the counter in the window
                between compute and store, the write is dropped (tallied
                under ``stale_puts``) — otherwise a pre-mutation answer would
                be stamped with the post-mutation generation and served as
                fresh forever.  ``None`` stamps the current generation
                (only safe when the caller cannot race mutations).
        """
        if self.capacity == 0:
            return
        ids = np.array(ids, dtype=np.int64, copy=True)
        scores = np.array(scores, dtype=np.float64, copy=True)
        with self._lock:
            if generation is not None and generation != self._generation:
                self.stale_puts += 1
                return
            self._entries[key] = (self._generation, ids, scores)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def bump_generation(self) -> int:
        """Invalidate every current entry in O(1); returns the new generation.

        Entries are not scanned or freed here — they die lazily the next
        time they are touched (or fall off the LRU end).
        """
        with self._lock:
            self._generation += 1
            return self._generation

    def stats(self) -> dict:
        """JSON-ready counters for the telemetry snapshot."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "generation": self._generation,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_puts": self.stale_puts,
            }
