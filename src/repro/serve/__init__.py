"""Online serving runtime: HTTP front-end, micro-batching, caching, telemetry.

The network face of the repository: :class:`ServingRuntime` stacks a
generation-aware result cache and a micro-batching coalescer on top of any
registered index, and :func:`make_server` exposes it as a stdlib-only JSON
HTTP API (``repro serve`` on the command line).  See
:mod:`repro.serve.server` for the endpoint contract.
"""

from repro.serve.cache import ResultCache
from repro.serve.microbatch import MicroBatcher
from repro.serve.server import ServingRuntime, build_runtime, make_server
from repro.serve.telemetry import Telemetry

__all__ = [
    "ResultCache",
    "MicroBatcher",
    "ServingRuntime",
    "Telemetry",
    "build_runtime",
    "make_server",
]
