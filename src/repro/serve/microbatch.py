"""Micro-batching coalescer: N concurrent searches, one GEMM.

An online front-end receives *single* queries from many concurrent clients,
but every index in this repository answers a *batch* far faster than the
same queries looped — the whole point of the vectorized ``search_many``
paths (one GEMM panel instead of N GEMVs, one axis-wise top-k instead of N).
Quantization-serving systems (Guo et al.) assume exactly such a batched
online front-end.  The :class:`MicroBatcher` closes that gap: concurrent
``search`` calls park in a queue, a single dispatcher thread drains up to
``max_batch`` of them every tick (a tick ends when the batch is full or the
oldest request has waited ``max_wait_ms``), answers them with **one**
``search_many`` call, and delivers each caller its slice through a
:class:`concurrent.futures.Future`.

Per-request ``k`` is handled by batching at the tick's maximum ``k`` and
trimming each answer down — exact for exact inner methods (the top-k prefix
of a top-K list *is* the top-k), and a superset-trim for approximate ones
(a larger ``k`` can only widen ProMIPS' probe budget).  Requests whose
search kwargs differ (e.g. a per-request ``c`` override) never share a
GEMM: the tick groups by kwargs and dispatches one batch per group.

Queries are validated *at submit time*, so a malformed request fails fast
in its own thread and can never poison the batch it would have joined.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.api import SearchResult, validate_k, validate_query

__all__ = ["MicroBatcher"]


class _Request:
    __slots__ = ("query", "k", "kwargs", "group", "future")

    def __init__(self, query, k, kwargs):
        self.query = query
        self.k = k
        self.kwargs = kwargs
        self.group = tuple(sorted(kwargs.items()))
        self.future: Future = Future()


class MicroBatcher:
    """Coalesce concurrent single-query searches into batched dispatches.

    Args:
        index: any :class:`repro.api.MIPSIndex`.
        max_batch: most requests answered by one ``search_many`` call.
        max_wait_ms: longest a request waits for company before its batch
            dispatches anyway; ``0`` dispatches whatever is queued
            immediately (batches then form only under concurrent load).
        index_lock: optional lock held around every ``search_many`` call —
            the serving runtime shares one lock between the dispatcher and
            the mutation endpoints so inserts never interleave a scan.
        telemetry: optional :class:`repro.serve.telemetry.Telemetry`;
            receives the occupancy of every dispatched batch.
    """

    def __init__(
        self,
        index,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        index_lock: threading.Lock | None = None,
        telemetry=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._index = index
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        self._index_lock = index_lock if index_lock is not None else threading.Lock()
        self._telemetry = telemetry
        self._cond = threading.Condition()
        self._pending: list[_Request] = []
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._run, name="repro-microbatch", daemon=True
        )
        self._dispatcher.start()

    # ---------------------------------------------------------------- submit

    def submit(self, query: np.ndarray, k: int = 1, **kwargs) -> Future:
        """Enqueue one search; returns a future resolving to a
        :class:`repro.api.SearchResult`.

        Raises:
            ValueError: malformed query or ``k`` (checked here, in the
                caller's thread, so bad requests never reach a batch).
            RuntimeError: the batcher has been closed.
        """
        k = validate_k(k)
        query = validate_query(query, self._index.dim)
        request = _Request(query, k, kwargs)
        try:
            hash(request.group)  # the dispatcher groups by this key
        except TypeError as exc:
            raise ValueError(
                f"search kwargs must be hashable, got {kwargs!r}"
            ) from exc
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            self._pending.append(request)
            self._cond.notify()
        return request.future

    def search(self, query: np.ndarray, k: int = 1, **kwargs) -> SearchResult:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(query, k=k, **kwargs).result()

    # ------------------------------------------------------------ dispatcher

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                # Batch window: hold the tick open until the batch is full,
                # the batcher closes, or the oldest request has waited long
                # enough.  Waiting happens on the condition, so a burst of
                # submits fills the batch without spinning.
                deadline = time.monotonic() + self.max_wait
                while len(self._pending) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(timeout=remaining):
                        break
                take = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            try:
                self._dispatch(take)
            except BaseException as exc:
                # The dispatcher must never die: an unexpected failure fails
                # the affected futures (rather than hanging their callers
                # forever) and the loop keeps serving.
                for request in take:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _dispatch(self, requests: list[_Request]) -> None:
        # One search_many per distinct kwargs group; groups preserve arrival
        # order, so identical-kwargs ticks (the common case) are one batch.
        groups: dict[tuple, list[_Request]] = {}
        for request in requests:
            groups.setdefault(request.group, []).append(request)
        for members in groups.values():
            k_max = max(r.k for r in members)
            queries = np.stack([r.query for r in members])
            try:
                with self._index_lock:
                    batch = self._index.search_many(
                        queries, k=k_max, **members[0].kwargs
                    )
            except BaseException as exc:  # propagate to every waiter
                for request in members:
                    request.future.set_exception(exc)
                continue
            if self._telemetry is not None:
                self._telemetry.record_batch(len(members))
            for i, request in enumerate(members):
                row = batch[i]  # strips the padding of under-filled rows
                result = SearchResult(
                    ids=row.ids[: request.k],
                    scores=row.scores[: request.k],
                    stats=row.stats,
                )
                result.stats.extras = {
                    **result.stats.extras,
                    "coalesced": len(members),
                }
                request.future.set_result(result)

    # ----------------------------------------------------------------- close

    def close(self) -> None:
        """Stop the dispatcher; in-flight requests finish, queued ones fail.

        Idempotent.  Requests still queued when the dispatcher exits get a
        ``RuntimeError`` rather than hanging their clients forever.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()
        with self._cond:
            leftover, self._pending = self._pending, []
        for request in leftover:
            request.future.set_exception(RuntimeError("MicroBatcher closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
