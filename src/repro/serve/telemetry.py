"""Serving telemetry: lock-cheap counters behind ``GET /stats``.

The runtime records four things about itself: how many requests it has
answered per endpoint (and how fast, as QPS since start), how the result
cache is doing (hit rate), how full the coalesced batches run (an occupancy
histogram — the direct read-out of what micro-batching is buying), and the
end-to-end latency distribution (p50/p95/p99 through the shared
:func:`repro.eval.metrics.percentile` rule, so server numbers line up with
harness numbers).

Everything is guarded by one ``threading.Lock`` held only for appends and
integer bumps — no percentile math happens under the lock; :meth:`snapshot`
copies the raw samples out first and aggregates outside.  Latencies live in
a bounded ring (:data:`DEFAULT_WINDOW` most recent samples) so a long-lived
server reports *recent* tail latency instead of averaging over its lifetime.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

from repro.eval.metrics import latency_summary

__all__ = ["Telemetry", "DEFAULT_WINDOW"]

# Latency samples kept for the percentile window.  4096 single-request
# latencies bound both memory and the snapshot's sort cost while being wide
# enough that p99 rests on ~40 samples.
DEFAULT_WINDOW = 4096


class Telemetry:
    """Counters, batch-occupancy histogram, and a latency ring buffer.

    Args:
        window: number of most-recent latency samples retained per kind.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._lock = threading.Lock()
        self._window = int(window)
        self._started = time.monotonic()
        self._requests: Counter[str] = Counter()
        self._errors: Counter[str] = Counter()
        self._batch_occupancy: Counter[int] = Counter()
        self._latencies: list[float] = []
        self._latency_pos = 0  # ring cursor once the window is full

    # ------------------------------------------------------------- recording

    def record_request(self, endpoint: str, seconds: float | None = None) -> None:
        """Count one answered request; optionally record its latency."""
        with self._lock:
            self._requests[endpoint] += 1
            if seconds is not None:
                self._record_latency_locked(float(seconds))

    def record_error(self, endpoint: str) -> None:
        """Count one request that was answered with an error status."""
        with self._lock:
            self._errors[endpoint] += 1

    def record_batch(self, occupancy: int) -> None:
        """Count one coalesced dispatch of ``occupancy`` requests."""
        if occupancy <= 0:
            raise ValueError(f"occupancy must be positive, got {occupancy}")
        with self._lock:
            self._batch_occupancy[int(occupancy)] += 1

    def _record_latency_locked(self, seconds: float) -> None:
        if len(self._latencies) < self._window:
            self._latencies.append(seconds)
        else:
            self._latencies[self._latency_pos] = seconds
            self._latency_pos = (self._latency_pos + 1) % self._window

    # ------------------------------------------------------------- reporting

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(self._requests.values())

    def snapshot(
        self,
        cache_stats: dict | None = None,
        maintenance_stats: dict | None = None,
    ) -> dict:
        """One JSON-ready view of everything recorded so far.

        Args:
            cache_stats: the result cache's own counters (hits/misses/...),
                merged in so ``/stats`` is a single document; hit rate is
                derived here.
            maintenance_stats: the background maintenance engine's counters
                (rebuilds, reclaimed bytes, in-flight target), merged in
                under ``"maintenance"``.
        """
        with self._lock:
            requests = dict(self._requests)
            errors = dict(self._errors)
            occupancy = dict(self._batch_occupancy)
            latencies = list(self._latencies)
        elapsed = max(time.monotonic() - self._started, 1e-9)
        total = sum(requests.values())
        dispatches = sum(occupancy.values())
        coalesced = sum(size * count for size, count in occupancy.items())
        stats = {
            "uptime_seconds": elapsed,
            "requests_total": total,
            "requests_by_endpoint": requests,
            "errors_by_endpoint": errors,
            "qps": total / elapsed,
            "latency": latency_summary(latencies),
            "batch": {
                "dispatches": dispatches,
                "histogram": {str(size): occupancy[size] for size in sorted(occupancy)},
                "mean_occupancy": (coalesced / dispatches) if dispatches else 0.0,
            },
        }
        if cache_stats is not None:
            lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
            stats["cache"] = {
                **cache_stats,
                "hit_rate": (cache_stats.get("hits", 0) / lookups) if lookups else 0.0,
            }
        if maintenance_stats is not None:
            stats["maintenance"] = dict(maintenance_stats)
        return stats
