"""HTTP serving runtime: cache → coalescer → index behind a JSON API.

Two layers:

* :class:`ServingRuntime` — the in-process serving stack.  Every single
  query flows **cache → micro-batcher → index**: a repeated ``(query, k)``
  is answered from the generation-aware LRU cache
  (:class:`repro.serve.cache.ResultCache`), a cold one coalesces with its
  concurrent neighbours into one batched GEMM
  (:class:`repro.serve.microbatch.MicroBatcher`), and mutations
  (``insert``/``delete`` on a dynamic or sharded-dynamic index) bump the
  cache generation so a stale entry is never served.  The runtime is usable
  without HTTP — the serving-latency bench drives it directly.
* The stdlib ``ThreadingHTTPServer`` front-end — one handler thread per
  connection, JSON in/out, no third-party dependencies:

  ==================  =====================================================
  ``POST /search``        one query: ``{"query": [...], "k": 10}``
  ``POST /search_batch``  many queries: ``{"queries": [[...], ...], "k"}``
  ``POST /insert``        ``{"vector": [...]}`` → new global id
  ``POST /delete``        ``{"id": 7}``
  ``GET /stats``          telemetry + cache counters
  ``GET /healthz``        liveness + index identity
  ==================  =====================================================

The runtime boots from either face of the PR-2 factory/persistence API:
an inline :class:`repro.spec.IndexSpec` string builds fresh over a dataset,
a persisted ``.npz`` envelope reloads bit-identically via
:func:`repro.core.persist.load_index` — one server, every registered method.

Index access is serialised by one runtime lock (held by the coalescer's
dispatch and by mutations), so Python-level index state never tears; the
concurrency win comes from coalescing — the batched GEMM itself already
spreads over cores inside BLAS.

Maintenance never runs on the request path: for a dynamic (or
sharded-dynamic) index the runtime attaches a
:class:`repro.core.maintenance.MaintenanceEngine` that rebuilds generations
on a background thread — snapshot and swap each hold the runtime lock
briefly, the bulk load itself runs off-lock, and mutations that land during
a build are replayed into the new generation at swap time.  Every swap bumps
the result-cache generation (a new generation may rank differently), and
``GET /stats`` reports the engine's counters (rebuilds, reclaimed bytes,
in-flight target).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro.api import validate_k, validate_queries, validate_query
from repro.core.maintenance import MaintenanceEngine, maintenance_targets
from repro.core.persist import load_index
from repro.serve.cache import ResultCache
from repro.serve.microbatch import MicroBatcher
from repro.serve.telemetry import DEFAULT_WINDOW, Telemetry
from repro.spec import build_index

__all__ = ["ServingRuntime", "build_runtime", "make_server"]


class ServingRuntime:
    """The serving stack around one built index.

    Args:
        index: any built :class:`repro.api.MIPSIndex`.
        max_batch: coalescer batch ceiling (see :class:`MicroBatcher`).
        max_wait_ms: coalescer tick length.
        cache_size: LRU entries; ``0`` disables result caching.
        coalesce: route single queries through the micro-batcher; ``False``
            dispatches each request's own ``search`` call (the bench's
            baseline mode).
        telemetry_window: latency samples retained for percentiles.
        maintenance: attach a background :class:`MaintenanceEngine` when the
            index has rebuildable components; ``False`` keeps the index's
            own synchronous (stop-the-world) compaction inside the mutation
            endpoints.
        maintenance_poll_ms: idle re-check interval of the engine thread.
    """

    def __init__(
        self,
        index,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        coalesce: bool = True,
        telemetry_window: int = DEFAULT_WINDOW,
        maintenance: bool = True,
        maintenance_poll_ms: float = 50.0,
    ) -> None:
        self.index = index
        self.telemetry = Telemetry(window=telemetry_window)
        self.cache = ResultCache(cache_size)
        self._index_lock = threading.Lock()
        self.maintenance = (
            MaintenanceEngine(
                index,
                self._index_lock,
                poll_interval_ms=maintenance_poll_ms,
                on_swap=self.cache.bump_generation,
            )
            if maintenance and maintenance_targets(index)
            else None
        )
        try:
            self.batcher = (
                MicroBatcher(
                    index,
                    max_batch=max_batch,
                    max_wait_ms=max_wait_ms,
                    index_lock=self._index_lock,
                    telemetry=self.telemetry,
                )
                if coalesce
                else None
            )
        except BaseException:
            # A half-built runtime has no owner to close() it: release the
            # engine's claim on the index before the constructor raises.
            if self.maintenance is not None:
                self.maintenance.close()
            raise
        # Threads start only once the whole stack is wired, so a
        # constructor failure can never leak a live background rebuilder.
        if self.maintenance is not None:
            self.maintenance.start()

    # ---------------------------------------------------------------- search

    def search(self, query, k: int = 1, **kwargs) -> dict:
        """Answer one query through cache → coalescer → index.

        Returns a JSON-ready ``{"ids", "scores", "k", "cached"}`` dict.
        Cached answers are bit-identical to what the index would return:
        the key is the query's exact float64 bytes plus ``k`` and kwargs,
        and every mutation bumps the generation the entry is checked
        against.
        """
        start = time.monotonic()
        k = validate_k(k)
        query = validate_query(np.asarray(query, dtype=np.float64), self.index.dim)
        key = ResultCache.make_key(query, k, kwargs)
        hit = self.cache.get(key)
        if hit is not None:
            ids, scores = hit
            self.telemetry.record_request("search", time.monotonic() - start)
            return self._payload(ids, scores, k, cached=True)
        # Capture the generation *before* computing: if a mutation lands in
        # the window between the search and the put, the put is dropped
        # rather than stamping a pre-mutation answer as fresh.
        generation = self.cache.generation
        if self.batcher is not None:
            result = self.batcher.search(query, k=k, **kwargs)
        else:
            with self._index_lock:
                result = self.index.search(query, k=k, **kwargs)
        self.cache.put(key, result.ids, result.scores, generation=generation)
        self.telemetry.record_request("search", time.monotonic() - start)
        return self._payload(result.ids, result.scores, k, cached=False)

    def search_batch(self, queries, k: int = 1, **kwargs) -> dict:
        """Answer a client-assembled batch in one ``search_many`` call.

        Pre-batched requests bypass cache and coalescer — the client already
        did the batching, and a half-cached batch would still pay the full
        GEMM for its misses.
        """
        start = time.monotonic()
        k = validate_k(k)
        queries = validate_queries(
            np.asarray(queries, dtype=np.float64), self.index.dim
        )
        with self._index_lock:
            batch = self.index.search_many(queries, k=k, **kwargs)
        self.telemetry.record_request("search_batch", time.monotonic() - start)
        rows = [self._payload(r.ids, r.scores, k, cached=False) for r in batch]
        return {
            "n_queries": len(batch),
            "k": k,
            "ids": [row["ids"] for row in rows],
            "scores": [row["scores"] for row in rows],
        }

    @staticmethod
    def _payload(ids, scores, k, cached: bool) -> dict:
        return {
            "ids": np.asarray(ids).tolist(),
            "scores": np.asarray(scores).tolist(),
            "k": int(k),
            "cached": cached,
        }

    # ------------------------------------------------------------- mutations

    def _require_mutable(self, verb: str) -> None:
        if not (hasattr(self.index, "insert") and hasattr(self.index, "delete")):
            name = getattr(type(self.index), "method_name", type(self.index).__name__)
            raise ValueError(
                f"index method {name!r} does not support {verb}; serve a "
                "'dynamic(...)' or \"sharded(inner='dynamic(...)')\" spec"
            )

    def insert(self, vector) -> dict:
        """Insert one point; bumps the cache generation (O(1) invalidation)."""
        start = time.monotonic()
        self._require_mutable("insert")
        vector = validate_query(np.asarray(vector, dtype=np.float64), self.index.dim)
        with self._index_lock:
            new_id = int(self.index.insert(vector))
        generation = self.cache.bump_generation()
        self.telemetry.record_request("insert", time.monotonic() - start)
        return {"id": new_id, "generation": generation}

    def delete(self, point_id) -> dict:
        """Delete one point by id; bumps the cache generation."""
        start = time.monotonic()
        self._require_mutable("delete")
        if isinstance(point_id, bool) or not isinstance(point_id, int):
            raise ValueError(f"id must be an integer, got {point_id!r}")
        with self._index_lock:
            self.index.delete(point_id)
        generation = self.cache.bump_generation()
        self.telemetry.record_request("delete", time.monotonic() - start)
        return {"deleted": int(point_id), "generation": generation}

    # ------------------------------------------------------------ inspection

    def health(self) -> dict:
        info: dict = {"status": "ok", "dim": int(self.index.dim)}
        method = getattr(type(self.index), "method_name", None)
        if method is not None:
            info["method"] = method
            info["spec"] = str(self.index.spec())
        live = getattr(self.index, "n_live", None)
        info["n_live"] = int(live if live is not None else getattr(self.index, "n", 0))
        info["coalescing"] = self.batcher is not None
        info["maintenance"] = self.maintenance is not None
        return info

    def stats(self) -> dict:
        maintenance = (
            self.maintenance.stats()
            if self.maintenance is not None
            else {"enabled": False}
        )
        return {
            "index": self.health(),
            **self.telemetry.snapshot(
                cache_stats=self.cache.stats(), maintenance_stats=maintenance
            ),
        }

    def close(self) -> None:
        # Stop maintenance first so no swap races the draining coalescer.
        if self.maintenance is not None:
            self.maintenance.close()
        if self.batcher is not None:
            self.batcher.close()

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_runtime(
    spec: str | None = None,
    data: np.ndarray | None = None,
    index_path: str | Path | None = None,
    rng=None,
    **runtime_kwargs,
) -> ServingRuntime:
    """Boot a runtime from exactly one of the two index sources.

    Args:
        spec: inline :class:`repro.spec.IndexSpec` string (requires
            ``data`` to build over).
        data: ``(n, d)`` dataset for the ``spec`` path.
        index_path: persisted ``.npz`` envelope written by
            :func:`repro.core.persist.save_index` — reloads any registered
            method bit-identically, no dataset needed.
        rng: build seed/generator for the ``spec`` path.
        **runtime_kwargs: forwarded to :class:`ServingRuntime`.
    """
    if (spec is None) == (index_path is None):
        raise ValueError("pass exactly one of spec= or index_path=")
    if spec is not None:
        if data is None:
            raise ValueError("building from a spec requires data=")
        index = build_index(spec, data, rng=rng)
    else:
        index = load_index(index_path)
    return ServingRuntime(index, **runtime_kwargs)


# ------------------------------------------------------------------ HTTP layer


class _Handler(BaseHTTPRequestHandler):
    """JSON shim between HTTP and the :class:`ServingRuntime`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def runtime(self) -> ServingRuntime:
        return self.server.runtime  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging would swamp the bench; /stats carries counters

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, endpoint: str) -> None:
        self.runtime.telemetry.record_error(endpoint)
        self._reply(code, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._reply(200, self.runtime.health())
        elif self.path == "/stats":
            self._reply(200, self.runtime.stats())
        else:
            self._error(404, f"unknown path {self.path!r}", self.path)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        handler = {
            "/search": self._post_search,
            "/search_batch": self._post_search_batch,
            "/insert": self._post_insert,
            "/delete": self._post_delete,
        }.get(self.path)
        if handler is None:
            self._error(404, f"unknown path {self.path!r}", self.path)
            return
        endpoint = self.path.lstrip("/")
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
            self._reply(200, handler(body))
        except json.JSONDecodeError:
            self._error(400, "request body is not valid JSON", endpoint)
        except KeyError as exc:
            # Unknown/already-deleted ids surface as KeyError from the index.
            self._error(404, str(exc.args[0] if exc.args else exc), endpoint)
        except (ValueError, TypeError) as exc:
            self._error(400, str(exc), endpoint)

    @staticmethod
    def _field(body: dict, name: str):
        if name not in body:
            raise ValueError(f"missing required field {name!r}")
        return body[name]

    @staticmethod
    def _params(body: dict) -> dict:
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ValueError("'params' must be a JSON object")
        return params

    def _post_search(self, body: dict) -> dict:
        return self.runtime.search(
            self._field(body, "query"), k=body.get("k", 1), **self._params(body)
        )

    def _post_search_batch(self, body: dict) -> dict:
        return self.runtime.search_batch(
            self._field(body, "queries"), k=body.get("k", 1), **self._params(body)
        )

    def _post_insert(self, body: dict) -> dict:
        return self.runtime.insert(self._field(body, "vector"))

    def _post_delete(self, body: dict) -> dict:
        return self.runtime.delete(self._field(body, "id"))


class _Server(ThreadingHTTPServer):
    daemon_threads = True  # handler threads never block interpreter exit

    def __init__(self, address, runtime: ServingRuntime):
        super().__init__(address, _Handler)
        self.runtime = runtime


def make_server(
    runtime: ServingRuntime, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the JSON API to ``host:port`` (``port=0`` picks a free one).

    The caller owns the serve loop: ``server.serve_forever()`` blocks (run
    it in a thread for tests), ``server.shutdown()`` stops it, and
    ``runtime.close()`` then drains the coalescer.  The bound port is
    ``server.server_address[1]``.
    """
    return _Server((host, port), runtime)
