"""Side-by-side comparison of ProMIPS against the paper's three baselines
(H2-ALSH, Norm Ranging-LSH, PQ-Based) on one of the four evaluation
datasets — a miniature of the paper's §VIII figures.

Run:  python examples/method_comparison.py [netflix|yahoo|p53|sift]
"""

from __future__ import annotations

import sys

from repro.data import load_dataset
from repro.eval import (
    GroundTruth,
    build_method,
    default_registry,
    format_table,
    run_method,
)

SIM_OVERRIDES = {
    "netflix": dict(n=8000, dim=64),
    "yahoo": dict(n=15000, dim=64),
    "p53": dict(n=4000, dim=512),
    "sift": dict(n=15000, dim=64),
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "netflix"
    if name not in SIM_OVERRIDES:
        raise SystemExit(f"unknown dataset {name!r}; pick from {sorted(SIM_OVERRIDES)}")
    dataset = load_dataset(name, n_queries=25, **SIM_OVERRIDES[name])
    print(f"dataset {name}: n={dataset.n}, d={dataset.dim}, "
          f"page={dataset.page_size}B, {len(dataset.queries)} queries\n")

    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=10)
    registry = default_registry()
    # Every registry entry is a declarative spec — print what will be built.
    for method in registry.names():
        print(f"  {method:10s} -> {registry.spec_for(method, dataset)}")
    print()
    rows = []
    for method in registry.names():
        index, build = build_method(registry, method, dataset, seed=1)
        report = run_method(index, dataset, ground_truth, k=10, method=method)
        rows.append([
            method,
            build.build_seconds,
            build.index_mb,
            report.overall_ratio,
            report.recall,
            report.pages,
            report.cpu_ms,
            report.total_ms,
        ])
    print(format_table(
        ["method", "build_s", "index_MB", "ratio", "recall", "pages",
         "cpu_ms", "total_ms"],
        rows,
        title=f"c-10-AMIP on {name} (c=0.9, p=0.5)",
    ))


if __name__ == "__main__":
    main()
