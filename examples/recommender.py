"""Matrix-factorization recommendation — the paper's motivating scenario.

User and item vectors come from a PureSVD-style latent-factor model; for a
user ``u`` and item ``o``, the inner product ``<o, u>`` predicts the user's
interest, so recommending the top-k items is exactly a c-k-AMIP search over
the item vectors.

The script builds a catalogue of items, indexes them with ProMIPS, and
answers "recommend 10 items" for a batch of users, comparing quality and
I/O cost against an exact scan.

Run:  python examples/recommender.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ExactMIPS, ProMIPS, ProMIPSParams
from repro.data import make_latent_factor
from repro.eval import overall_ratio, recall

N_ITEMS = 20000
DIM = 64
N_USERS = 30
TOP_K = 10


def main() -> None:
    rng = np.random.default_rng(42)
    items, users = make_latent_factor(N_ITEMS, DIM, rng, n_queries=N_USERS)
    print(f"catalogue: {N_ITEMS} items x {DIM} latent factors, "
          f"{N_USERS} users to serve")

    t0 = time.perf_counter()
    index = ProMIPS.build(items, ProMIPSParams(c=0.9, p=0.5), rng=1)
    print(f"ProMIPS pre-process: {time.perf_counter() - t0:.2f}s "
          f"(m={index.m}, {index.ring.n_subpartitions} sub-partitions)")

    exact = ExactMIPS(items)
    ratios, recalls, pages, exact_pages, times = [], [], [], [], []
    for user in users:
        truth = exact.search(user, k=TOP_K)
        t0 = time.perf_counter()
        recs = index.search(user, k=TOP_K)
        times.append(time.perf_counter() - t0)
        ratios.append(overall_ratio(recs.scores, truth.scores))
        recalls.append(recall(recs.ids, truth.ids))
        pages.append(recs.stats.pages)
        exact_pages.append(truth.stats.pages)

    print(f"\nserved {N_USERS} users, top-{TOP_K} recommendations each:")
    print(f"  overall ratio : {np.mean(ratios):.4f}")
    print(f"  recall@{TOP_K}     : {np.mean(recalls):.3f}")
    print(f"  pages/query   : {np.mean(pages):.0f} "
          f"(exact scan: {np.mean(exact_pages):.0f})")
    print(f"  cpu/query     : {np.mean(times) * 1e3:.1f} ms")

    # Show one user's recommendations.
    sample = index.search(users[0], k=5)
    print("\nuser 0, top-5 item ids and predicted interest:")
    for pid, score in zip(sample.ids, sample.scores):
        print(f"  item {pid:6d}  score {score:6.3f}")


if __name__ == "__main__":
    main()
