"""Quickstart: build a ProMIPS index from a declarative spec, run a
probability-guaranteed c-k-AMIP search, and round-trip the index through
the universal persistence layer.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import ExactMIPS, build_index, load_index, save_index
from repro.data import make_latent_factor


def main() -> None:
    rng = np.random.default_rng(0)

    # A toy dataset: 5000 latent-factor vectors in 64 dimensions (the
    # recommendation-system shape the paper's introduction motivates).
    data, _ = make_latent_factor(5000, 64, rng)
    query = data[rng.integers(5000)]

    # Build the index from a spec string.  c = approximation ratio, p =
    # guarantee probability: each returned point satisfies
    # <o, q> >= c * <o*, q> with probability at least p.  m (projected
    # dims), kp/Nkey/ksp (iDistance layout) and epsilon (ring width) are
    # derived automatically.  The same call builds any registered method —
    # try "h2alsh(c=0.9)" or "simhash(n_bits=32)".
    index = build_index("promips(c=0.9, p=0.5)", data, rng=1)
    params = index.params
    print(f"built: {index}")
    print(f"spec:  {index.spec()}")
    print(f"index size: {index.index_size_bytes() / 1024:.1f} KiB "
          f"(data: {data.nbytes / 1024:.1f} KiB)")

    # Search.
    result = index.search(query, k=10)
    print("\ntop-10 approximate MIP points:")
    for pid, score in zip(result.ids, result.scores):
        print(f"  id={pid:5d}  <o,q>={score:8.4f}")

    # Compare against the exact answer.
    exact = ExactMIPS(data).search(query, k=10)
    ratio = float(np.mean(result.scores / exact.scores))
    hits = len(set(result.ids.tolist()) & set(exact.ids.tolist()))
    print(f"\noverall ratio vs exact: {ratio:.4f}  (guarantee: >= {params.c} "
          f"w.p. {params.p})")
    print(f"recall@10: {hits / 10:.2f}")
    print(f"pages read: {result.stats.pages} (exact scan: {exact.stats.pages})")
    print(f"candidates verified: {result.stats.candidates} / {len(data)}")
    print(f"stopped by: {result.stats.extras['stopped_by']}")

    # Persist the expensive pre-process and reload it (works for every
    # registered method, not just ProMIPS) — answers are bit-identical.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_index(index, Path(tmp) / "promips.npz")
        restored = load_index(path)
        again = restored.search(query, k=10)
        print(f"\nsaved to {path.name} ({path.stat().st_size / 1024:.0f} KiB) "
              f"and reloaded: identical={np.array_equal(result.ids, again.ids)}")


if __name__ == "__main__":
    main()
