"""Quickstart: build a ProMIPS index and run a probability-guaranteed
c-k-AMIP search.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactMIPS, ProMIPS, ProMIPSParams
from repro.data import make_latent_factor


def main() -> None:
    rng = np.random.default_rng(0)

    # A toy dataset: 5000 latent-factor vectors in 64 dimensions (the
    # recommendation-system shape the paper's introduction motivates).
    data, _ = make_latent_factor(5000, 64, rng)
    query = data[rng.integers(5000)]

    # Build the index.  c = approximation ratio, p = guarantee probability:
    # each returned point satisfies <o, q> >= c * <o*, q> with probability
    # at least p.  m (projected dims), kp/Nkey/ksp (iDistance layout) and
    # epsilon (ring width) are derived automatically.
    params = ProMIPSParams(c=0.9, p=0.5)
    index = ProMIPS.build(data, params, rng=1)
    print(f"built: {index}")
    print(f"index size: {index.index_size_bytes() / 1024:.1f} KiB "
          f"(data: {data.nbytes / 1024:.1f} KiB)")

    # Search.
    result = index.search(query, k=10)
    print("\ntop-10 approximate MIP points:")
    for pid, score in zip(result.ids, result.scores):
        print(f"  id={pid:5d}  <o,q>={score:8.4f}")

    # Compare against the exact answer.
    exact = ExactMIPS(data).search(query, k=10)
    ratio = float(np.mean(result.scores / exact.scores))
    hits = len(set(result.ids.tolist()) & set(exact.ids.tolist()))
    print(f"\noverall ratio vs exact: {ratio:.4f}  (guarantee: >= {params.c} "
          f"w.p. {params.p})")
    print(f"recall@10: {hits / 10:.2f}")
    print(f"pages read: {result.stats.pages} (exact scan: {exact.stats.pages})")
    print(f"candidates verified: {result.stats.candidates} / {len(data)}")
    print(f"stopped by: {result.stats.extras['stopped_by']}")


if __name__ == "__main__":
    main()
