"""Serving walkthrough: drive the HTTP JSON API end to end.

By default this example is fully self-contained: it builds a small dynamic
ProMIPS index, boots the serving runtime (coalescer + cache + telemetry)
on a free local port, and then talks to it exactly the way any HTTP client
would — ``/healthz``, a cold and a warm ``/search``, a ``/search_batch``,
an ``/insert`` that invalidates the cache, a ``/delete``, and ``/stats``.

Point it at an already-running ``repro serve`` process instead with::

    python -m repro serve --spec "dynamic(c=0.9)" --dataset netflix --n 5000 &
    python examples/serve_client.py --url http://127.0.0.1:8080

Every step asserts the status code and the response shape, so the script
doubles as the CI smoke client — it exits non-zero if the server misbehaves.

Run:  python examples/serve_client.py
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.error
import urllib.request

import numpy as np


def call(base: str, path: str, payload: dict | None = None):
    """One JSON request; returns ``(status, decoded body)``."""
    if payload is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def expect(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"  ok: {message}")


def start_local_server() -> tuple[str, object, object]:
    """Self-host a small dynamic index; returns (base URL, server, runtime)."""
    from repro.data import make_latent_factor
    from repro.serve import ServingRuntime, make_server
    from repro.spec import build_index

    rng = np.random.default_rng(0)
    items, _ = make_latent_factor(5_000, 32, rng, n_queries=1)
    index = build_index("dynamic(c=0.9)", items, rng=1)
    runtime = ServingRuntime(index, max_batch=32, max_wait_ms=2.0, cache_size=256)
    server = make_server(runtime)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return f"http://{host}:{port}", server, runtime


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None,
        help="base URL of a running `repro serve` (default: self-host)",
    )
    args = parser.parse_args()

    server = runtime = None
    if args.url is None:
        base, server, runtime = start_local_server()
        print(f"self-hosted a dynamic index at {base}")
    else:
        base = args.url.rstrip("/")
        print(f"targeting {base}")

    # --- liveness ----------------------------------------------------------
    code, health = call(base, "/healthz")
    expect(code == 200 and health["status"] == "ok",
           f"/healthz is live (method={health.get('method')}, "
           f"n_live={health.get('n_live')}, dim={health.get('dim')})")
    dim = int(health["dim"])

    # --- single search: cold, then served from cache -----------------------
    query = np.linspace(-1.0, 1.0, dim).tolist()
    code, cold = call(base, "/search", {"query": query, "k": 5})
    expect(code == 200 and len(cold["ids"]) == len(cold["scores"]) > 0,
           f"cold /search returned top-{len(cold['ids'])} "
           f"(best id={cold['ids'][0]}, score={cold['scores'][0]:.4f})")
    code, warm = call(base, "/search", {"query": query, "k": 5})
    expect(code == 200 and warm["cached"] and warm["ids"] == cold["ids"],
           "warm /search hit the cache with the identical answer")

    # --- client-side batch --------------------------------------------------
    batch_queries = np.random.default_rng(1).standard_normal((4, dim)).tolist()
    code, batch = call(base, "/search_batch", {"queries": batch_queries, "k": 3})
    expect(code == 200 and batch["n_queries"] == 4 and len(batch["ids"]) == 4,
           "/search_batch answered 4 queries in one dispatch")

    # --- mutations invalidate the cache ------------------------------------
    spike = (np.asarray(query) * 25.0).tolist()
    code, inserted = call(base, "/insert", {"vector": spike})
    if code == 200:
        code, after = call(base, "/search", {"query": query, "k": 5})
        expect(code == 200 and not after["cached"]
               and after["ids"][0] == inserted["id"],
               f"/insert id={inserted['id']} bumped generation to "
               f"{inserted['generation']} and took rank 1")
        code, deleted = call(base, "/delete", {"id": inserted["id"]})
        expect(code == 200 and deleted["deleted"] == inserted["id"],
               "/delete removed it again")
        code, final = call(base, "/search", {"query": query, "k": 5})
        expect(code == 200 and final["ids"] == cold["ids"],
               "post-delete /search matches the original answer")

        # --- churn round-trip: every insert is findable, every delete final
        churned = []
        for step in range(10):
            vec = (np.asarray(query) * (30.0 + step)).tolist()
            code, added = call(base, "/insert", {"vector": vec})
            expect(code == 200, f"churn insert #{step} accepted")
            churned.append(added["id"])
        code, topk = call(base, "/search", {"query": query, "k": 10})
        expect(code == 200 and set(churned) <= set(topk["ids"]),
               "all 10 churned inserts dominate the top-10")
        for cid in churned:
            code, _ = call(base, "/delete", {"id": cid})
            expect(code == 200, f"churn delete of id={cid} accepted")
        code, after_churn = call(base, "/search", {"query": query, "k": 10})
        expect(code == 200 and not set(churned) & set(after_churn["ids"]),
               "no deleted id survives the churn round-trip")

        # --- background maintenance is attached and reporting (enabled is
        # False only under the explicit --no-maintenance debug flag)
        code, stats = call(base, "/stats")
        maint = stats.get("maintenance", {})
        expect(code == 200 and "enabled" in maint,
               f"/stats reports maintenance "
               f"(enabled={maint.get('enabled')}, "
               f"rebuilds={maint.get('rebuilds')}, "
               f"reclaimed_bytes={maint.get('reclaimed_bytes')}, "
               f"in_flight={maint.get('in_flight')})")
    else:
        print(f"  note: served index is immutable ({inserted.get('error')}); "
              "skipping the mutation steps")

    # --- malformed requests get clean 400s ----------------------------------
    code, error = call(base, "/search", {"query": query, "k": 0})
    expect(code == 400 and "k must be a positive integer" in error["error"],
           "invalid k rejected with HTTP 400")

    # --- telemetry -----------------------------------------------------------
    code, stats = call(base, "/stats")
    expect(code == 200 and stats["requests_total"] >= 4
           and stats["cache"]["hits"] >= 1,
           f"/stats: {stats['requests_total']} requests, "
           f"cache hit rate {stats['cache']['hit_rate']:.2f}, "
           f"search p50 {stats['latency']['p50_ms']:.2f}ms")

    if server is not None:
        server.shutdown()
        server.server_close()
        runtime.close()
        print("self-hosted server shut down cleanly")
    print("serving walkthrough complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
