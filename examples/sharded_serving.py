"""Sharded serving: partition the catalogue, fan queries out, merge top-k.

A single index eventually becomes the bottleneck of a serving tier: builds
and rebuilds scale with the full catalogue, and every query pays for all of
``n``.  This example shards a 20k-item catalogue four ways, shows that the
exact-inner sharded answers are *bit-identical* to the unsharded scan,
reports the per-shard batch timings the throughput harness surfaces, routes
live inserts/deletes through dynamic shards, and round-trips the whole
composite through one ``save_index``/``load_index`` envelope.

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import ShardedIndex, build_index, load_index, save_index
from repro.data import make_latent_factor


def main() -> None:
    rng = np.random.default_rng(0)
    items, cohort = make_latent_factor(20_000, 64, rng, n_queries=256)

    # --- exact inner: sharding is invisible to the answers -----------------
    unsharded = build_index("exact()", items)
    reference = unsharded.search_many(cohort, k=10)
    for shards in (1, 2, 4, 8):
        index = ShardedIndex.build(items, inner="exact()", shards=shards, rng=1)
        start = time.perf_counter()
        batch = index.search_many(cohort, k=10)
        elapsed = time.perf_counter() - start
        identical = np.array_equal(batch.ids, reference.ids) and np.array_equal(
            batch.scores, reference.scores
        )
        shard_ms = ", ".join(
            f"{sec * 1e3:.1f}" for sec in index.last_shard_seconds
        )
        print(
            f"shards={shards}  batch {len(cohort) / elapsed:8.0f} q/s   "
            f"bit-identical={identical}   per-shard ms [{shard_ms}]"
        )

    # --- the spec form: any registered inner method works ------------------
    sharded_promips = build_index(
        "sharded(inner='promips(c=0.9, p=0.5)', shards=4)", items, rng=1
    )
    result = sharded_promips.search(cohort[0], k=10)
    print(
        f"\nsharded ProMIPS: top-10 from {result.stats.extras['shards']} shards, "
        f"{result.stats.candidates} candidates verified "
        f"(per shard {result.stats.extras['per_shard_candidates']})"
    )

    # --- mutable serving: dynamic shards route add/delete by id ------------
    live = ShardedIndex.build(
        items[:5_000], inner="dynamic(c=0.9, p=0.5)", shards=4, rng=1
    )
    new_item = rng.standard_normal(64) * 3.0
    new_id = live.insert(new_item)
    top = live.search(new_item, k=1)
    print(
        f"\ninserted item got global id {new_id}; "
        f"top-1 for its own vector: {top.ids[0]} (live points: {live.n_live})"
    )
    live.delete(new_id)
    assert new_id not in live.search(new_item, k=10).ids
    print(f"deleted {new_id}; live points: {live.n_live}")

    # --- one envelope persists the whole composite -------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = save_index(sharded_promips, Path(tmp) / "sharded")
        restored = load_index(path)
        again = restored.search(cohort[0], k=10)
        print(
            f"\nreloaded from {path.name}: identical answers = "
            f"{np.array_equal(again.ids, result.ids)}"
        )


if __name__ == "__main__":
    main()
