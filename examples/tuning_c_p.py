"""Effect of the approximation ratio c and the guarantee probability p on
ProMIPS accuracy and I/O — a miniature of the paper's Figs. 10 and 11.

One index serves every (c, p) combination: the guarantees are enforced at
query time, so tuning them needs no re-indexing.

Run:  python examples/tuning_c_p.py
"""

from __future__ import annotations

import numpy as np

from repro import ProMIPS, ProMIPSParams
from repro.data import load_dataset
from repro.eval import GroundTruth, format_table, overall_ratio


def main() -> None:
    dataset = load_dataset("netflix", n=10000, dim=64, n_queries=25)
    ground_truth = GroundTruth(dataset.data, dataset.queries, k_max=10)
    index = ProMIPS.build(
        dataset.data, ProMIPSParams(page_size=dataset.page_size), rng=1
    )
    print(f"index: {index}\n")

    def sweep(cs, ps):
        rows = []
        for c in cs:
            for p in ps:
                ratios, pages, cands = [], [], []
                for qi, q in enumerate(dataset.queries):
                    _, exact_ips = ground_truth.topk(qi, 10)
                    res = index.search(q, k=10, c=c, p=p)
                    ratios.append(overall_ratio(res.scores, exact_ips))
                    pages.append(res.stats.pages)
                    cands.append(res.stats.candidates)
                rows.append([c, p, float(np.mean(ratios)), float(np.mean(pages)),
                             float(np.mean(cands))])
        return rows

    print(format_table(
        ["c", "p", "overall_ratio", "pages", "candidates"],
        sweep(cs=(0.7, 0.8, 0.9), ps=(0.5,)),
        title="impact of c (p=0.5, k=10) — cf. paper Fig. 10",
    ))
    print()
    print(format_table(
        ["c", "p", "overall_ratio", "pages", "candidates"],
        sweep(cs=(0.9,), ps=(0.3, 0.5, 0.7, 0.9)),
        title="impact of p (c=0.9, k=10) — cf. paper Fig. 11",
    ))
    print("\nreading: the measured ratio stays above c in every row, and "
          "raising p buys accuracy with more page accesses — the paper's "
          "accuracy/efficiency trade-off.")


if __name__ == "__main__":
    main()
