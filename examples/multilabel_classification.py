"""Multi-class label prediction with MIPS (Dean et al., CVPR 2013 scenario).

A linear multi-class model scores class ``j`` for a feature vector ``x`` as
``<w_j, x>``; predicting the top class over tens of thousands of classes is
a MIP search over the weight vectors.  The paper cites exactly this use case
(§I).  The script trains a synthetic prototype-based "model", indexes the
class weight vectors with ProMIPS, and measures how often the approximate
search recovers the same predicted label as the exact argmax.

Run:  python examples/multilabel_classification.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactMIPS, ProMIPS, ProMIPSParams

N_CLASSES = 15000
DIM = 96
N_SAMPLES = 40


def make_model(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Class weights plus test features drawn around a subset of classes."""
    weights = rng.standard_normal((N_CLASSES, DIM))
    weights /= np.linalg.norm(weights, axis=1, keepdims=True)
    weights *= rng.lognormal(0.0, 0.08, size=(N_CLASSES, 1))
    true_labels = rng.integers(N_CLASSES, size=N_SAMPLES)
    features = weights[true_labels] * 3.0 + 0.8 * rng.standard_normal((N_SAMPLES, DIM))
    return weights, features, true_labels


def main() -> None:
    rng = np.random.default_rng(3)
    weights, features, true_labels = make_model(rng)
    print(f"model: {N_CLASSES} classes x {DIM} features")

    index = ProMIPS.build(weights, ProMIPSParams(c=0.9, p=0.7), rng=1)
    exact = ExactMIPS(weights)

    agree_top1 = 0
    agree_top5 = 0
    pages = []
    for x in features:
        truth = exact.search(x, k=5)
        pred = index.search(x, k=5)
        agree_top1 += int(pred.ids[0] == truth.ids[0])
        agree_top5 += len(set(pred.ids.tolist()) & set(truth.ids.tolist())) / 5
        pages.append(pred.stats.pages)

    print(f"\npredictions over {N_SAMPLES} samples:")
    print(f"  top-1 agreement with exact argmax: {agree_top1 / N_SAMPLES:.2f}")
    print(f"  top-5 overlap with exact top-5   : {agree_top5 / N_SAMPLES:.2f}")
    print(f"  pages/prediction                 : {np.mean(pages):.0f} "
          f"(exact: {exact.search(features[0], k=1).stats.pages})")
    print("\n(with c=0.9, p=0.7 each returned class clears 90% of the exact "
          "top score w.p. >= 0.7 — ties between near-identical classes may "
          "still swap ranks)")


if __name__ == "__main__":
    main()
