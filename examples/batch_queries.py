"""Batch queries: answer a whole user cohort through ``search_many``.

A recommendation back-end rarely answers one user at a time — a refresh job
scores thousands of user vectors against the item catalogue at once.  This
example builds ProMIPS and the exact scan, answers a 512-user cohort through
the native batch paths, verifies the batch answers are bit-identical to the
looped single-query path, and times both.

Run:  python examples/batch_queries.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ExactMIPS, ProMIPS, ProMIPSParams, search_batch
from repro.data import make_latent_factor


def main() -> None:
    rng = np.random.default_rng(0)
    items, cohort = make_latent_factor(10_000, 64, rng, n_queries=512)

    promips = ProMIPS.build(items, ProMIPSParams(c=0.9, p=0.5), rng=1)
    exact = ExactMIPS(items)

    for name, index in [("ProMIPS", promips), ("Exact", exact)]:
        start = time.perf_counter()
        batch = index.search_many(cohort, k=10)
        batch_s = time.perf_counter() - start

        start = time.perf_counter()
        singles = [index.search(q, k=10) for q in cohort]
        loop_s = time.perf_counter() - start

        identical = all(
            np.array_equal(s.ids, batch[i].ids)
            and np.array_equal(s.scores, batch[i].scores)
            for i, s in enumerate(singles)
        )
        print(
            f"{name:8s} batch {len(cohort)/batch_s:8.0f} q/s   "
            f"loop {len(cohort)/loop_s:8.0f} q/s   "
            f"speedup {loop_s/batch_s:4.1f}x   bit-identical={identical}"
        )

    # Aggregate accounting for capacity planning.
    _, stats = search_batch(promips, cohort, k=10)
    print(
        f"\ncohort of {stats.n_queries}: mean {stats.mean_pages:.0f} pages/query, "
        f"p95 {stats.p95_pages:.0f}, {stats.total_candidates} candidates verified"
    )


if __name__ == "__main__":
    main()
